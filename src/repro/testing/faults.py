"""Deterministic, seedable fault injection.

The fault-tolerance layer (failure policies, broken-worker recovery,
cache quarantine, client retries, WAL replay) is only trustworthy if its
recovery paths run in CI on every change — and real faults are rare and
flaky.  This module injects them on demand, deterministically:

* a :class:`FaultPlan` describes *which* faults to fire (by work-item
  key, by seeded hash rate, or "first N requests");
* the plan travels in the ``REPRO_FAULTS`` environment variable as one
  JSON document, so it crosses process boundaries into campaign pool
  workers and ``repro serve`` subprocesses without any plumbing;
* one-shot budgets ("crash this worker at most twice", "drop the first
  HTTP response") are counted through ``O_CREAT|O_EXCL`` marker files in
  ``state_dir``, which is the only cross-process atomic counter the
  stdlib offers.

Production code calls the ``maybe_*``/``check_*`` hooks below at its
injection sites; with ``REPRO_FAULTS`` unset every hook is a cheap
no-op (one ``os.environ`` lookup), so the harness costs nothing when
idle.  Hash-rate checks reuse the campaign's ``crc32(seed/key)`` idiom
so a given (seed, key) either always faults or never does — reruns are
bit-stable, never flaky.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterator, Mapping, Optional, Tuple

from contextlib import contextmanager

from ..circuit.dc import ConvergenceError

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultPlanError",
    "InjectedSolverFault",
    "active_plan",
    "injected",
]

#: Environment variable carrying the active plan as JSON.
FAULTS_ENV = "REPRO_FAULTS"


class FaultPlanError(ValueError):
    """An invalid fault plan (bad field, missing state_dir, bad JSON)."""


class InjectedSolverFault(ConvergenceError):
    """A synthetic solver failure raised by :func:`check_solver`.

    Subclasses :class:`ConvergenceError` so it flows through exactly the
    error-handling path a real non-convergence takes; the marker
    attribute makes ``classify_error`` label it ``injected`` so partial
    results clearly say the failure was synthetic.
    """

    failure_classification = "injected"


@dataclass(frozen=True)
class FaultPlan:
    """What to break, deterministically.

    ``solver_fail_attempts`` bounds how many attempts of an item the
    solver fault fires on (1 = transient fault, a retry succeeds; a large
    value = persistent fault).  ``worker_crash_limit`` bounds how many
    times a worker dies while holding a given key — 2 exercises poison
    quarantine, 1 exercises lost-chunk re-execution.  ``state_dir`` is
    required by any fault with a cross-process budget.
    """

    seed: int = 0
    state_dir: Optional[str] = None
    solver_fail_keys: Tuple[str, ...] = ()
    solver_fail_rate: float = 0.0
    solver_fail_attempts: int = 1
    worker_crash_keys: Tuple[str, ...] = ()
    worker_crash_limit: int = 1
    cache_truncate_fingerprints: Tuple[str, ...] = ()
    cache_truncate_rate: float = 0.0
    http_drop_first: int = 0
    http_delay_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("solver_fail_rate", "cache_truncate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= float(rate) <= 1.0:
                raise FaultPlanError(f"{name} must be within [0, 1], got {rate!r}")
        if self.solver_fail_attempts < 1:
            raise FaultPlanError("solver_fail_attempts must be at least 1")
        if self.worker_crash_limit < 1:
            raise FaultPlanError("worker_crash_limit must be at least 1")
        if self.http_drop_first < 0:
            raise FaultPlanError("http_drop_first must be non-negative")
        if self.http_delay_s < 0:
            raise FaultPlanError("http_delay_s must be non-negative")
        needs_state = self.worker_crash_keys or self.http_drop_first
        if needs_state and not self.state_dir:
            raise FaultPlanError(
                "worker_crash_keys and http_drop_first need a state_dir "
                "(their budgets are counted through marker files)"
            )

    # -- serialisation (the env-var wire format) ----------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultPlan":
        names = {field.name for field in fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise FaultPlanError(f"unknown fault plan fields: {sorted(unknown)}")
        data = dict(payload)
        for name in ("solver_fail_keys", "worker_crash_keys", "cache_truncate_fingerprints"):
            if name in data:
                data[name] = tuple(str(item) for item in data[name])  # type: ignore[union-attr]
        return cls(**data)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    # -- pure predicates (usable by benches to predict hits) ----------------------------

    def hits_solver(self, key: str, attempt: int = 0) -> bool:
        """Whether the solver fault fires for ``key`` on 0-based ``attempt``."""
        if attempt >= self.solver_fail_attempts:
            return False
        return key in self.solver_fail_keys or _hash_hit(
            self.seed, f"solver/{key}", self.solver_fail_rate
        )

    def hits_cache(self, fingerprint: str) -> bool:
        return fingerprint in self.cache_truncate_fingerprints or _hash_hit(
            self.seed, f"cache/{fingerprint}", self.cache_truncate_rate
        )


def _hash_hit(seed: int, token: str, rate: float) -> bool:
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(f"{seed}/{token}".encode("utf-8")) % 1_000_000
    return bucket < rate * 1_000_000


# -- plan discovery ---------------------------------------------------------------------

_plan_cache: Optional[Tuple[str, FaultPlan]] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan from ``REPRO_FAULTS``, or ``None`` (the common case).

    A malformed plan raises :class:`FaultPlanError` instead of silently
    disabling injection — a chaos test that thinks it is injecting
    faults but is not would pass vacuously.
    """
    global _plan_cache
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    if _plan_cache is not None and _plan_cache[0] == raw:
        return _plan_cache[1]
    plan = FaultPlan.from_json(raw)
    _plan_cache = (raw, plan)
    return plan


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` (via the environment) for the body's duration."""
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = plan.to_json()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous


# -- cross-process one-shot budgets -----------------------------------------------------


def _claim(state_dir: str, name: str, limit: int) -> bool:
    """Atomically claim one of ``limit`` slots for ``name``; False when spent.

    ``O_CREAT|O_EXCL`` makes each slot a single-winner race across
    processes, so "crash at most N times" holds even when several pool
    workers hold the same key concurrently.
    """
    os.makedirs(state_dir, exist_ok=True)
    safe = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in name)
    for slot in range(limit):
        path = os.path.join(state_dir, f"{safe}.{slot}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


# -- injection hooks (called from production code) --------------------------------------


def check_solver(key: str, attempt: int = 0) -> None:
    """Raise :class:`InjectedSolverFault` if the plan targets this attempt."""
    plan = active_plan()
    if plan is None:
        return
    if plan.hits_solver(key, attempt):
        raise InjectedSolverFault(
            f"injected solver failure on item {key!r} (attempt {attempt + 1})"
        )


def maybe_crash_worker(key: str, in_pool_worker: bool) -> None:
    """Kill the current process (as a crashed pool worker would die).

    Only fires inside a campaign pool worker: crashing the serial path
    would take down the caller (pytest, the CLI, the server) instead of
    simulating a lost worker.  ``os._exit`` skips ``atexit``/finalisers,
    which is exactly how a segfaulted or OOM-killed worker disappears.
    """
    plan = active_plan()
    if plan is None or not in_pool_worker:
        return
    if key in plan.worker_crash_keys and plan.state_dir:
        if _claim(plan.state_dir, f"crash-{key}", plan.worker_crash_limit):
            os._exit(43)


def maybe_truncate_cache(fingerprint: str, text: str) -> str:
    """Return a torn prefix of ``text`` when the plan targets this entry."""
    plan = active_plan()
    if plan is None or not plan.hits_cache(fingerprint):
        return text
    return text[: max(1, len(text) // 2)]


def http_fault() -> Optional[str]:
    """``"drop"`` when the handler should sever the connection, else None.

    Also applies the plan's fixed response delay (for client-timeout
    tests) before answering.
    """
    plan = active_plan()
    if plan is None:
        return None
    if plan.http_delay_s > 0.0:
        time.sleep(plan.http_delay_s)
    if plan.http_drop_first > 0 and plan.state_dir:
        if _claim(plan.state_dir, "http-drop", plan.http_drop_first):
            return "drop"
    return None
