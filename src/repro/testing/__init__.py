"""Deterministic fault injection for tests and chaos benchmarks."""

from .faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultPlanError,
    InjectedSolverFault,
    active_plan,
    injected,
)

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultPlanError",
    "InjectedSolverFault",
    "active_plan",
    "injected",
]
