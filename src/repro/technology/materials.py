"""Material models for BEOL interconnect stacks.

The parasitic extraction flow needs, per metal layer, the effective
conductor resistivity (including size effects and the barrier/liner) and
the dielectric permittivities of the surrounding inter-layer and
intra-layer dielectrics.  This module provides small, explicit material
descriptions that the :mod:`repro.extraction` package consumes.

All dimensions are expressed in **nanometres** and resistivities in
**ohm·nm** unless stated otherwise; converting at the boundaries keeps
the geometric code free of unit juggling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Vacuum permittivity in farad per nanometre.
EPSILON_0_F_PER_NM = 8.8541878128e-21

#: Bulk resistivity of copper at room temperature, in ohm·nm
#: (1.68 µΩ·cm = 16.8 Ω·nm).
COPPER_BULK_RESISTIVITY_OHM_NM = 16.8

#: Electron mean free path in copper, in nm.  Used by the size-effect
#: (Fuchs-Sondheimer / Mayadas-Shatzkes style) resistivity correction.
COPPER_MEAN_FREE_PATH_NM = 39.0


class MaterialError(ValueError):
    """Raised when a material description is physically inconsistent."""


@dataclass(frozen=True)
class Conductor:
    """A BEOL conductor material.

    Parameters
    ----------
    name:
        Human readable identifier (``"Cu"``, ``"W"``, ``"Ru"``...).
    bulk_resistivity_ohm_nm:
        Bulk (large-dimension) resistivity in ohm·nm.
    mean_free_path_nm:
        Electron mean free path; drives the thin-wire resistivity
        increase.  ``0`` disables the size-effect correction.
    specularity:
        Fuchs-Sondheimer surface-specularity parameter ``p`` in
        ``[0, 1]``; ``1`` means perfectly specular surfaces (no size
        effect from surface scattering).
    reflection_coefficient:
        Mayadas-Shatzkes grain-boundary reflection coefficient ``R`` in
        ``[0, 1)``.
    """

    name: str
    bulk_resistivity_ohm_nm: float
    mean_free_path_nm: float = 0.0
    specularity: float = 0.5
    reflection_coefficient: float = 0.3

    def __post_init__(self) -> None:
        if self.bulk_resistivity_ohm_nm <= 0.0:
            raise MaterialError(
                f"conductor {self.name!r}: bulk resistivity must be positive, "
                f"got {self.bulk_resistivity_ohm_nm}"
            )
        if self.mean_free_path_nm < 0.0:
            raise MaterialError(
                f"conductor {self.name!r}: mean free path cannot be negative"
            )
        if not 0.0 <= self.specularity <= 1.0:
            raise MaterialError(
                f"conductor {self.name!r}: specularity must be within [0, 1]"
            )
        if not 0.0 <= self.reflection_coefficient < 1.0:
            raise MaterialError(
                f"conductor {self.name!r}: reflection coefficient must be within [0, 1)"
            )

    def effective_resistivity(self, width_nm: float, thickness_nm: float) -> float:
        """Return the size-effect corrected resistivity in ohm·nm.

        A compact combination of the Fuchs-Sondheimer surface term and the
        Mayadas-Shatzkes grain-boundary term is used.  The model is
        intentionally simple — the study needs the correct *direction* and
        a realistic magnitude of the resistivity increase for ~20 nm wide
        copper lines, not a fitted nanowire model.

        Parameters
        ----------
        width_nm, thickness_nm:
            The conducting cross-section dimensions (excluding barrier).
        """
        if width_nm <= 0.0 or thickness_nm <= 0.0:
            raise MaterialError(
                f"conductor {self.name!r}: cross-section dimensions must be "
                f"positive (width={width_nm}, thickness={thickness_nm})"
            )
        rho = self.bulk_resistivity_ohm_nm
        if self.mean_free_path_nm <= 0.0:
            return rho

        # Surface scattering: thin-limit Fuchs-Sondheimer approximation,
        # applied to the smaller confining dimension.
        critical = min(width_nm, thickness_nm)
        k = critical / self.mean_free_path_nm
        surface_factor = 1.0 + 0.375 * (1.0 - self.specularity) / k

        # Grain-boundary scattering: damascene grains grow during anneal to
        # a size set by the trench depth (film thickness), so the thickness
        # is the critical dimension here — this keeps the wire resistance
        # close to inversely proportional to the drawn width, which is the
        # sensitivity the SRAM bit lines actually show.
        grain_size = thickness_nm
        r = self.reflection_coefficient
        if r > 0.0:
            alpha = (self.mean_free_path_nm / grain_size) * r / (1.0 - r)
            gb_factor = 1.0 / max(
                1e-9,
                1.0 - 1.5 * alpha + 3.0 * alpha**2 - 3.0 * alpha**3 * math.log(1.0 + 1.0 / alpha),
            )
        else:
            gb_factor = 1.0
        return rho * surface_factor * gb_factor

    def effective_resistivity_batch(
        self, width_nm: np.ndarray, thickness_nm: np.ndarray
    ) -> np.ndarray:
        """Array-valued twin of :meth:`effective_resistivity`.

        Same formula, element-wise over equally shaped arrays; used by the
        batched Monte-Carlo extraction path.
        """
        width = np.asarray(width_nm, dtype=float)
        thickness = np.asarray(thickness_nm, dtype=float)
        if np.any(width <= 0.0) or np.any(thickness <= 0.0):
            raise MaterialError(
                f"conductor {self.name!r}: cross-section dimensions must be positive"
            )
        rho = self.bulk_resistivity_ohm_nm
        if self.mean_free_path_nm <= 0.0:
            return np.full(np.broadcast(width, thickness).shape, rho)

        critical = np.minimum(width, thickness)
        k = critical / self.mean_free_path_nm
        surface_factor = 1.0 + 0.375 * (1.0 - self.specularity) / k

        grain_size = thickness
        r = self.reflection_coefficient
        if r > 0.0:
            alpha = (self.mean_free_path_nm / grain_size) * r / (1.0 - r)
            gb_factor = 1.0 / np.maximum(
                1e-9,
                1.0 - 1.5 * alpha + 3.0 * alpha**2 - 3.0 * alpha**3 * np.log(1.0 + 1.0 / alpha),
            )
        else:
            gb_factor = 1.0
        return rho * surface_factor * gb_factor


@dataclass(frozen=True)
class Dielectric:
    """A BEOL dielectric material.

    Parameters
    ----------
    name:
        Identifier (``"low-k"``, ``"SiO2"``, ``"air-gap"``...).
    relative_permittivity:
        Relative permittivity ``k``.
    """

    name: str
    relative_permittivity: float

    def __post_init__(self) -> None:
        if self.relative_permittivity < 1.0:
            raise MaterialError(
                f"dielectric {self.name!r}: relative permittivity must be >= 1, "
                f"got {self.relative_permittivity}"
            )

    @property
    def permittivity_f_per_nm(self) -> float:
        """Absolute permittivity in F/nm."""
        return self.relative_permittivity * EPSILON_0_F_PER_NM


@dataclass(frozen=True)
class BarrierLiner:
    """Diffusion-barrier / liner stack on the sidewalls and bottom of a wire.

    The barrier consumes part of the damascene trench without contributing
    meaningfully to conduction, so it reduces the effective copper
    cross-section.

    Parameters
    ----------
    thickness_nm:
        Barrier thickness per side.
    resistivity_ohm_nm:
        Barrier resistivity; used only when ``conductive`` is true.
    conductive:
        Whether the barrier is treated as a (poor) parallel conductor.
    """

    thickness_nm: float = 1.5
    resistivity_ohm_nm: float = 2000.0
    conductive: bool = False

    def __post_init__(self) -> None:
        if self.thickness_nm < 0.0:
            raise MaterialError("barrier thickness cannot be negative")
        if self.resistivity_ohm_nm <= 0.0:
            raise MaterialError("barrier resistivity must be positive")


@dataclass(frozen=True)
class MaterialSystem:
    """The full material selection for one metal layer.

    Combines the conductor, the barrier and the intra-/inter-layer
    dielectrics.  This is the object the extraction engine receives.
    """

    conductor: Conductor = field(default_factory=lambda: COPPER)
    barrier: BarrierLiner = field(default_factory=BarrierLiner)
    intra_layer_dielectric: Dielectric = field(default_factory=lambda: LOW_K)
    inter_layer_dielectric: Dielectric = field(default_factory=lambda: LOW_K)

    def line_to_line_permittivity(self) -> float:
        """Permittivity (F/nm) between two neighbouring lines on the layer."""
        return self.intra_layer_dielectric.permittivity_f_per_nm

    def layer_to_layer_permittivity(self) -> float:
        """Permittivity (F/nm) between this layer and the planes above/below."""
        return self.inter_layer_dielectric.permittivity_f_per_nm


# --- Canonical materials -------------------------------------------------

COPPER = Conductor(
    name="Cu",
    bulk_resistivity_ohm_nm=COPPER_BULK_RESISTIVITY_OHM_NM,
    mean_free_path_nm=COPPER_MEAN_FREE_PATH_NM,
    specularity=0.5,
    reflection_coefficient=0.3,
)

TUNGSTEN = Conductor(
    name="W",
    bulk_resistivity_ohm_nm=52.8,
    mean_free_path_nm=15.5,
    specularity=0.2,
    reflection_coefficient=0.4,
)

SIO2 = Dielectric(name="SiO2", relative_permittivity=3.9)
LOW_K = Dielectric(name="low-k", relative_permittivity=2.55)
ULTRA_LOW_K = Dielectric(name="ultra-low-k", relative_permittivity=2.2)
AIR_GAP = Dielectric(name="air-gap", relative_permittivity=1.0)

#: Default N10-class BEOL material system (copper damascene in low-k).
N10_MATERIALS = MaterialSystem(
    conductor=COPPER,
    barrier=BarrierLiner(thickness_nm=1.5),
    intra_layer_dielectric=LOW_K,
    inter_layer_dielectric=LOW_K,
)
