"""Top-level technology-node description.

A :class:`TechnologyNode` bundles everything the rest of the library needs
to know about the process: the BEOL metal stack, the FinFET device set, the
operating conditions (supply voltage, sense-amplifier sensitivity) and the
patterning-variation assumptions.  :func:`n10` returns the imec-N10-class
node used throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .corners import VariationAssumptions, paper_assumptions
from .metal_stack import MetalStack, default_n10_metal_stack
from .transistors import SRAMTransistorSet, default_sram_transistors


class NodeError(ValueError):
    """Raised for inconsistent node descriptions."""


@dataclass(frozen=True)
class OperatingConditions:
    """Electrical operating conditions of the SRAM read experiment.

    The paper's simulation assumptions (Section II.C): 0.7 V supply,
    precharge and word-line enable at Vdd, and a sense amplifier that
    fires once the differential bit-line voltage reaches 70 mV.
    """

    vdd_v: float = 0.7
    temperature_c: float = 25.0
    sense_amp_sensitivity_v: float = 0.07
    wordline_voltage_v: Optional[float] = None
    precharge_voltage_v: Optional[float] = None

    def __post_init__(self) -> None:
        if self.vdd_v <= 0.0:
            raise NodeError("Vdd must be positive")
        if self.sense_amp_sensitivity_v <= 0.0:
            raise NodeError("sense-amplifier sensitivity must be positive")
        if self.sense_amp_sensitivity_v >= self.vdd_v:
            raise NodeError(
                "sense-amplifier sensitivity must be below Vdd "
                f"({self.sense_amp_sensitivity_v} >= {self.vdd_v})"
            )

    @property
    def effective_wordline_voltage_v(self) -> float:
        return self.wordline_voltage_v if self.wordline_voltage_v is not None else self.vdd_v

    @property
    def effective_precharge_voltage_v(self) -> float:
        return (
            self.precharge_voltage_v
            if self.precharge_voltage_v is not None
            else self.vdd_v
        )

    @property
    def discharge_fraction(self) -> float:
        """Fraction of the precharge level the bit line must lose before sensing.

        For a 0.7 V precharge and 70 mV sensitivity this is 10%, matching
        the discharge level used to derive the constant ``a ≈ 0.105`` of
        eq. (3).
        """
        return self.sense_amp_sensitivity_v / self.effective_precharge_voltage_v


@dataclass(frozen=True)
class TechnologyNode:
    """Complete description of a technology node for the SRAM study."""

    name: str
    metal_stack: MetalStack = field(default_factory=default_n10_metal_stack)
    sram_devices: SRAMTransistorSet = field(default_factory=default_sram_transistors)
    operating_conditions: OperatingConditions = field(default_factory=OperatingConditions)
    variations: VariationAssumptions = field(default_factory=paper_assumptions)
    #: Layer carrying the bit lines (and power rails) in the target layout.
    bitline_layer: str = "metal1"
    #: Layer carrying the word lines.
    wordline_layer: str = "metal2"
    #: Height of the 6T SRAM cell (bit-line direction pitch per cell), nm.
    sram_cell_width_nm: float = 240.0
    #: Width of the 6T SRAM cell along the word-line direction, nm.
    sram_cell_height_nm: float = 192.0

    def __post_init__(self) -> None:
        stack_names = set(self.metal_stack.names)
        if self.bitline_layer not in stack_names:
            raise NodeError(
                f"bit-line layer {self.bitline_layer!r} not in stack {sorted(stack_names)}"
            )
        if self.wordline_layer not in stack_names:
            raise NodeError(
                f"word-line layer {self.wordline_layer!r} not in stack {sorted(stack_names)}"
            )
        if self.sram_cell_width_nm <= 0.0 or self.sram_cell_height_nm <= 0.0:
            raise NodeError("SRAM cell dimensions must be positive")

    def with_variations(self, variations: VariationAssumptions) -> "TechnologyNode":
        """Return a copy of the node with different variation assumptions."""
        return replace(self, variations=variations)

    def with_operating_conditions(
        self, conditions: OperatingConditions
    ) -> "TechnologyNode":
        return replace(self, operating_conditions=conditions)

    @property
    def bitline_metal(self):
        """The :class:`~repro.technology.metal_stack.MetalLayer` of the bit lines."""
        return self.metal_stack.layer(self.bitline_layer)

    @property
    def wordline_metal(self):
        return self.metal_stack.layer(self.wordline_layer)


def n10(overlay_three_sigma_nm: float = 8.0) -> TechnologyNode:
    """The imec-N10-class node used by the paper.

    Parameters
    ----------
    overlay_three_sigma_nm:
        LE3 3σ overlay budget; the paper's worst-case study uses 8 nm and
        the Monte-Carlo sweep uses 3/5/7/8 nm.
    """
    variations = paper_assumptions().for_overlay(overlay_three_sigma_nm)
    return TechnologyNode(
        name="imec-N10",
        metal_stack=default_n10_metal_stack(),
        sram_devices=default_sram_transistors(),
        operating_conditions=OperatingConditions(),
        variations=variations,
    )
