"""Technology description: materials, metal stack, devices, variation assumptions.

The package exposes the building blocks for describing a technology node
(:class:`~repro.technology.node.TechnologyNode`) and the canonical
imec-N10-class node (:func:`~repro.technology.node.n10`) used by the
DATE 2015 study.
"""

from .corners import (
    CornerError,
    CornerPoint,
    EUVAssumptions,
    GaussianSpec,
    LithoEtchAssumptions,
    SADPAssumptions,
    VariationAssumptions,
    VariationKind,
    enumerate_corner_points,
    paper_assumptions,
)
from .materials import (
    AIR_GAP,
    COPPER,
    LOW_K,
    N10_MATERIALS,
    SIO2,
    TUNGSTEN,
    ULTRA_LOW_K,
    BarrierLiner,
    Conductor,
    Dielectric,
    MaterialError,
    MaterialSystem,
)
from .metal_stack import (
    MetalLayer,
    MetalStack,
    Orientation,
    PatterningClass,
    StackError,
    default_n10_metal_stack,
)
from .node import NodeError, OperatingConditions, TechnologyNode, n10
from .transistors import (
    DeviceError,
    DeviceType,
    FinFETParameters,
    SRAMTransistorSet,
    default_n10_nmos,
    default_n10_pmos,
    default_sram_transistors,
)

__all__ = [
    "AIR_GAP",
    "BarrierLiner",
    "COPPER",
    "Conductor",
    "CornerError",
    "CornerPoint",
    "DeviceError",
    "DeviceType",
    "Dielectric",
    "EUVAssumptions",
    "FinFETParameters",
    "GaussianSpec",
    "LOW_K",
    "LithoEtchAssumptions",
    "MaterialError",
    "MaterialSystem",
    "MetalLayer",
    "MetalStack",
    "N10_MATERIALS",
    "NodeError",
    "OperatingConditions",
    "Orientation",
    "PatterningClass",
    "SADPAssumptions",
    "SIO2",
    "SRAMTransistorSet",
    "StackError",
    "TUNGSTEN",
    "TechnologyNode",
    "ULTRA_LOW_K",
    "VariationAssumptions",
    "VariationKind",
    "default_n10_metal_stack",
    "default_n10_nmos",
    "default_n10_pmos",
    "default_sram_transistors",
    "enumerate_corner_points",
    "n10",
    "paper_assumptions",
]
