"""FinFET compact-model parameters for the N10-class devices.

The paper uses imec's proprietary N10 transistor compact models inside a
commercial SPICE.  We substitute an alpha-power-law FinFET description
whose headline figures (drive current per fin, threshold voltage, gate and
junction capacitances) are tuned to public 10 nm-class numbers.  The
actual current equations live in :mod:`repro.circuit.mosfet`; this module
only holds the parameter containers and the named device flavours used by
the 6T SRAM cell (pull-down, pass-gate, pull-up).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict


class DeviceError(ValueError):
    """Raised for inconsistent device descriptions."""


class DeviceType(str, Enum):
    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True)
class FinFETParameters:
    """Alpha-power-law FinFET parameters.

    The model implemented in :class:`repro.circuit.mosfet.MOSFET` is

    ``Id_sat = k * nfins * (Vgs - Vth)**alpha``

    with a linear-region interpolation below ``Vdsat`` and a simple
    channel-length-modulation term.  Capacitances are lumped per fin.

    Parameters
    ----------
    name:
        Flavour name, e.g. ``"n10_nmos_rvt"``.
    device_type:
        NMOS or PMOS.
    vth_v:
        Saturation threshold voltage (positive number for both types; the
        sign convention is handled by the circuit model).
    alpha:
        Velocity-saturation exponent (≈1.2–1.4 for short-channel devices).
    k_a_per_valpha:
        Transconductance-like coefficient: drain current per fin at
        ``(Vgs - Vth) = 1 V`` in amperes.
    lambda_per_v:
        Channel-length modulation coefficient (1/V).
    cgate_f_per_fin:
        Total gate capacitance per fin (F).
    cdrain_f_per_fin:
        Drain junction + fringe capacitance per fin (F).
    csource_f_per_fin:
        Source junction + fringe capacitance per fin (F).
    subthreshold_swing_mv_dec:
        Subthreshold swing; used for leakage estimation.
    ioff_a_per_fin:
        Off-state leakage per fin at nominal Vdd.
    """

    name: str
    device_type: DeviceType
    vth_v: float
    alpha: float
    k_a_per_valpha: float
    lambda_per_v: float = 0.05
    cgate_f_per_fin: float = 0.045e-15
    cdrain_f_per_fin: float = 0.030e-15
    csource_f_per_fin: float = 0.030e-15
    subthreshold_swing_mv_dec: float = 72.0
    ioff_a_per_fin: float = 1.0e-9

    def __post_init__(self) -> None:
        if self.vth_v <= 0.0:
            raise DeviceError(f"device {self.name!r}: Vth must be positive")
        if not 1.0 <= self.alpha <= 2.0:
            raise DeviceError(
                f"device {self.name!r}: alpha must be within [1, 2], got {self.alpha}"
            )
        if self.k_a_per_valpha <= 0.0:
            raise DeviceError(f"device {self.name!r}: k must be positive")
        if self.lambda_per_v < 0.0:
            raise DeviceError(f"device {self.name!r}: lambda cannot be negative")
        for attr in ("cgate_f_per_fin", "cdrain_f_per_fin", "csource_f_per_fin"):
            if getattr(self, attr) < 0.0:
                raise DeviceError(f"device {self.name!r}: {attr} cannot be negative")
        if self.subthreshold_swing_mv_dec <= 0.0:
            raise DeviceError(
                f"device {self.name!r}: subthreshold swing must be positive"
            )
        if self.ioff_a_per_fin < 0.0:
            raise DeviceError(f"device {self.name!r}: Ioff cannot be negative")

    def scaled(self, **changes: object) -> "FinFETParameters":
        """Return a copy with selected parameters replaced."""
        return replace(self, **changes)

    def on_current_a(self, vdd_v: float, nfins: int = 1) -> float:
        """Saturation drive current at ``Vgs = Vds = vdd_v`` (per ``nfins``)."""
        if vdd_v <= self.vth_v:
            return 0.0
        overdrive = vdd_v - self.vth_v
        return self.k_a_per_valpha * nfins * overdrive**self.alpha * (
            1.0 + self.lambda_per_v * vdd_v
        )

    def effective_resistance_ohm(self, vdd_v: float, nfins: int = 1) -> float:
        """Crude switch-resistance estimate ``Vdd / Ion`` used for sanity checks."""
        ion = self.on_current_a(vdd_v, nfins)
        if ion <= 0.0:
            raise DeviceError(
                f"device {self.name!r} does not conduct at Vdd={vdd_v} V"
            )
        return vdd_v / ion


@dataclass(frozen=True)
class SRAMTransistorSet:
    """The three device flavours of a 6T SRAM cell and their fin counts.

    High-density 6T cells at N10 use a 1-1-1 fin configuration
    (pull-up : pass-gate : pull-down); performance-oriented cells use
    1-1-2 or 1-2-2.  The beta ratio (pull-down vs pass-gate strength) is
    what guarantees read stability, and the pass-gate + pull-down series
    path is the discharge path whose resistance enters the paper's
    analytical formula as ``R_FE``.
    """

    pull_down: FinFETParameters
    pass_gate: FinFETParameters
    pull_up: FinFETParameters
    pull_down_fins: int = 1
    pass_gate_fins: int = 1
    pull_up_fins: int = 1

    def __post_init__(self) -> None:
        if self.pull_down.device_type is not DeviceType.NMOS:
            raise DeviceError("pull-down device must be NMOS")
        if self.pass_gate.device_type is not DeviceType.NMOS:
            raise DeviceError("pass-gate device must be NMOS")
        if self.pull_up.device_type is not DeviceType.PMOS:
            raise DeviceError("pull-up device must be PMOS")
        for attr in ("pull_down_fins", "pass_gate_fins", "pull_up_fins"):
            if getattr(self, attr) < 1:
                raise DeviceError(f"{attr} must be at least 1")

    def beta_ratio(self, vdd_v: float) -> float:
        """Pull-down to pass-gate drive-strength ratio at ``vdd_v``."""
        pd = self.pull_down.on_current_a(vdd_v, self.pull_down_fins)
        pg = self.pass_gate.on_current_a(vdd_v, self.pass_gate_fins)
        return pd / pg

    def discharge_path_resistance_ohm(self, vdd_v: float) -> float:
        """Series resistance of pass-gate + pull-down (the R_FE of eq. 4)."""
        return self.pass_gate.effective_resistance_ohm(
            vdd_v, self.pass_gate_fins
        ) + self.pull_down.effective_resistance_ohm(vdd_v, self.pull_down_fins)

    def bitline_loading_capacitance_f(self) -> float:
        """Per-cell front-end load on the bit line (the C_FE of eq. 4).

        Dominated by the pass-gate drain junction capacitance; the off
        pass-gates of unselected rows still load the bit line.
        """
        return self.pass_gate.cdrain_f_per_fin * self.pass_gate_fins

    def as_dict(self) -> Dict[str, FinFETParameters]:
        return {
            "pull_down": self.pull_down,
            "pass_gate": self.pass_gate,
            "pull_up": self.pull_up,
        }


def default_n10_nmos() -> FinFETParameters:
    """N10-class regular-Vt NMOS (per-fin numbers)."""
    return FinFETParameters(
        name="n10_nmos_rvt",
        device_type=DeviceType.NMOS,
        vth_v=0.30,
        alpha=1.3,
        k_a_per_valpha=1.15e-4,
        lambda_per_v=0.06,
        cgate_f_per_fin=0.050e-15,
        cdrain_f_per_fin=0.032e-15,
        csource_f_per_fin=0.032e-15,
        subthreshold_swing_mv_dec=70.0,
        ioff_a_per_fin=1.0e-9,
    )


def default_n10_pmos() -> FinFETParameters:
    """N10-class regular-Vt PMOS (per-fin numbers)."""
    return FinFETParameters(
        name="n10_pmos_rvt",
        device_type=DeviceType.PMOS,
        vth_v=0.32,
        alpha=1.35,
        k_a_per_valpha=0.85e-4,
        lambda_per_v=0.07,
        cgate_f_per_fin=0.052e-15,
        cdrain_f_per_fin=0.034e-15,
        csource_f_per_fin=0.034e-15,
        subthreshold_swing_mv_dec=74.0,
        ioff_a_per_fin=0.8e-9,
    )


def default_sram_transistors() -> SRAMTransistorSet:
    """Device set of the high-density (1-1-1 fin) N10 6T cell."""
    nmos = default_n10_nmos()
    pmos = default_n10_pmos()
    # The pass-gate is drawn slightly weaker (higher Vt flavour) than the
    # pull-down to preserve read stability in a 1-1-1 cell.
    pass_gate = nmos.scaled(name="n10_nmos_pg", vth_v=0.34, k_a_per_valpha=1.05e-4)
    return SRAMTransistorSet(
        pull_down=nmos,
        pass_gate=pass_gate,
        pull_up=pmos,
        pull_down_fins=1,
        pass_gate_fins=1,
        pull_up_fins=1,
    )
