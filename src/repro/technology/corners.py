"""Process-variation assumption containers.

The paper states its multiple-patterning variation assumptions explicitly
(Section II.A); this module turns them into typed objects consumed by the
patterning models, the worst-case corner enumeration and the Monte-Carlo
samplers:

* 3σ CD variation of 3 nm for LE3, the SADP core layer and EUV;
* 3σ SADP spacer-thickness variation of 1.5 nm;
* 3σ LE3 overlay error swept from 3 nm to 8 nm;
* LE3 masks B and C are aligned to mask A (so A carries no overlay error
  relative to itself);
* SADP bit lines are spacer defined.

A *3σ value* here always means the half-width of the ±3σ interval of a
zero-mean normal distribution; ``sigma = three_sigma / 3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Iterable, List, Tuple


class CornerError(ValueError):
    """Raised for inconsistent variation assumptions."""


class VariationKind(str, Enum):
    """The physical variation mechanisms considered by the study."""

    CD = "cd"                    # critical-dimension (line width) error
    OVERLAY = "overlay"          # mask-to-mask placement error
    SPACER = "spacer"            # SADP spacer-thickness error
    THICKNESS = "thickness"      # metal-thickness (etch/CMP) error


@dataclass(frozen=True)
class GaussianSpec:
    """A zero-mean normal variation described by its 3σ half width."""

    three_sigma_nm: float

    def __post_init__(self) -> None:
        if self.three_sigma_nm < 0.0:
            raise CornerError("3-sigma value cannot be negative")

    @property
    def sigma_nm(self) -> float:
        return self.three_sigma_nm / 3.0

    def corner_values(self) -> Tuple[float, float, float]:
        """The (−3σ, 0, +3σ) values used in worst-case corner enumeration."""
        return (-self.three_sigma_nm, 0.0, self.three_sigma_nm)


@dataclass(frozen=True)
class LithoEtchAssumptions:
    """Variation assumptions for an ``n``-mask litho-etch (LE, LE2, LE3...) flow.

    Parameters
    ----------
    cd: 3σ CD error applied independently per mask.
    overlay: 3σ overlay error of the non-reference masks.
    masks_aligned_to_first:
        If true (paper assumption for LE3) every non-reference mask is
        aligned to mask A, so overlay errors of B and C are independent of
        each other and A itself carries no overlay error.  If false the
        masks are chained (B aligned to A, C aligned to B) and overlay
        errors accumulate — exposed for the alignment-strategy ablation.
    """

    cd: GaussianSpec = field(default_factory=lambda: GaussianSpec(3.0))
    overlay: GaussianSpec = field(default_factory=lambda: GaussianSpec(8.0))
    masks_aligned_to_first: bool = True

    def with_overlay(self, three_sigma_nm: float) -> "LithoEtchAssumptions":
        return replace(self, overlay=GaussianSpec(three_sigma_nm))


@dataclass(frozen=True)
class SADPAssumptions:
    """Variation assumptions for self-aligned double patterning.

    Parameters
    ----------
    core_cd: 3σ CD error of the mandrel (core) print.
    spacer: 3σ spacer-thickness error.
    spacer_defined_lines:
        If true (paper assumption) the bit lines are the spacer-defined
        (non-mandrel) lines, so their width is set by
        ``2*pitch − core_cd − 2*spacer`` and much of the variability
        self-compensates.
    """

    core_cd: GaussianSpec = field(default_factory=lambda: GaussianSpec(3.0))
    spacer: GaussianSpec = field(default_factory=lambda: GaussianSpec(1.5))
    spacer_defined_lines: bool = True


@dataclass(frozen=True)
class EUVAssumptions:
    """Variation assumptions for single-patterning EUV.

    The paper notes the 3 nm 3σ CD budget may be pessimistic for EUV; the
    value is a parameter so the sensitivity can be explored.
    """

    cd: GaussianSpec = field(default_factory=lambda: GaussianSpec(3.0))


@dataclass(frozen=True)
class VariationAssumptions:
    """Bundle of all patterning-variation assumptions used by the study."""

    litho_etch: LithoEtchAssumptions = field(default_factory=LithoEtchAssumptions)
    sadp: SADPAssumptions = field(default_factory=SADPAssumptions)
    euv: EUVAssumptions = field(default_factory=EUVAssumptions)
    #: Overlay budgets (3σ, nm) swept for the LE3 Monte-Carlo study (Table IV).
    le3_overlay_sweep_nm: Tuple[float, ...] = (3.0, 5.0, 7.0, 8.0)
    #: Metal-thickness 3σ variation (etch + CMP), applied to all options.
    thickness: GaussianSpec = field(default_factory=lambda: GaussianSpec(0.0))

    def __post_init__(self) -> None:
        if not self.le3_overlay_sweep_nm:
            raise CornerError("the LE3 overlay sweep needs at least one value")
        if any(value < 0.0 for value in self.le3_overlay_sweep_nm):
            raise CornerError("overlay budgets cannot be negative")

    def for_overlay(self, three_sigma_nm: float) -> "VariationAssumptions":
        """Return a copy with the LE3 overlay budget replaced."""
        return replace(
            self, litho_etch=self.litho_etch.with_overlay(three_sigma_nm)
        )


def paper_assumptions() -> VariationAssumptions:
    """The exact assumption set of Section II.A (worst-case OL of 8 nm)."""
    return VariationAssumptions(
        litho_etch=LithoEtchAssumptions(
            cd=GaussianSpec(3.0),
            overlay=GaussianSpec(8.0),
            masks_aligned_to_first=True,
        ),
        sadp=SADPAssumptions(
            core_cd=GaussianSpec(3.0),
            spacer=GaussianSpec(1.5),
            spacer_defined_lines=True,
        ),
        euv=EUVAssumptions(cd=GaussianSpec(3.0)),
        le3_overlay_sweep_nm=(3.0, 5.0, 7.0, 8.0),
    )


@dataclass(frozen=True)
class CornerPoint:
    """A named corner assignment: variation kind / target → signed value (nm).

    Used by the worst-case enumeration: each patterning parameter of each
    mask (or of the core/spacer) is set to one of its (−3σ, 0, +3σ) values.
    """

    label: str
    assignments: Tuple[Tuple[str, float], ...]

    def as_dict(self) -> Dict[str, float]:
        return dict(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)


def enumerate_corner_points(
    parameter_specs: Dict[str, GaussianSpec],
    include_nominal: bool = False,
) -> List[CornerPoint]:
    """Enumerate all ±3σ corner combinations of a parameter set.

    Parameters
    ----------
    parameter_specs:
        Mapping from parameter name (e.g. ``"cd:metal1_A"``) to its
        Gaussian spec.
    include_nominal:
        If true, the 0 value is included per parameter, giving 3**n
        combinations instead of 2**n.

    Returns
    -------
    list of :class:`CornerPoint`
        One entry per combination; labels encode the signs, e.g.
        ``"cd:metal1_A=+3s|ol:metal1_B=-3s"``.
    """
    if not parameter_specs:
        raise CornerError("cannot enumerate corners of an empty parameter set")

    names = sorted(parameter_specs)
    per_parameter: List[List[Tuple[str, float, str]]] = []
    for name in names:
        spec = parameter_specs[name]
        choices = [(name, spec.three_sigma_nm, "+3s"), (name, -spec.three_sigma_nm, "-3s")]
        if include_nominal:
            choices.append((name, 0.0, "0"))
        per_parameter.append(choices)

    points: List[CornerPoint] = []

    def _recurse(depth: int, chosen: List[Tuple[str, float, str]]) -> None:
        if depth == len(per_parameter):
            label = "|".join(f"{name}={tag}" for name, _value, tag in chosen)
            assignments = tuple((name, value) for name, value, _tag in chosen)
            points.append(CornerPoint(label=label, assignments=assignments))
            return
        for choice in per_parameter[depth]:
            _recurse(depth + 1, chosen + [choice])

    _recurse(0, [])
    return points
