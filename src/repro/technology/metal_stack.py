"""Metal-stack description for the interconnect layers used by the study.

The paper's SRAM cell uses unidirectional horizontal metal1 (bit lines and
power rails, minimum spacing) and unidirectional vertical metal2 (word
lines).  Each :class:`MetalLayer` carries the nominal drawn dimensions and
the physical cross-section parameters (thickness, tapering angle, barrier,
dielectric heights) that the extraction engine needs, plus which
patterning options are allowed on the layer.

Dimensions are nanometres throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional

from .materials import MaterialSystem, N10_MATERIALS


class StackError(ValueError):
    """Raised when a metal-stack description is inconsistent."""


class Orientation(str, Enum):
    """Preferred routing direction of a unidirectional metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


class PatterningClass(str, Enum):
    """Which family of patterning options a layer can be printed with."""

    SINGLE = "single"          # single exposure (EUV or relaxed-pitch 193i)
    DOUBLE = "double"          # LE2 / SADP
    TRIPLE = "triple"          # LE3 (LELELE)
    ANY = "any"


@dataclass(frozen=True)
class MetalLayer:
    """One metal layer of the BEOL stack.

    Parameters
    ----------
    name:
        Layer name (``"metal1"``, ``"metal2"``...).
    pitch_nm:
        Minimum line pitch (width + minimum space).
    min_width_nm:
        Minimum drawn line width.
    min_space_nm:
        Minimum drawn space between lines.
    thickness_nm:
        Metal thickness after CMP.
    tapering_angle_deg:
        Sidewall angle measured from the vertical; damascene trenches are
        narrower at the bottom, so the physical cross-section is a
        trapezoid.  ``0`` means perfectly vertical sidewalls.
    ild_below_nm / ild_above_nm:
        Dielectric distance to the conducting plane below / above
        (substrate or neighbouring metal layer), used for area and fringe
        capacitance.
    orientation:
        Preferred routing direction.
    materials:
        Conductor / barrier / dielectric selection.
    patterning_class:
        Which patterning family is required to print the minimum pitch.
    cmp_dishing_nm:
        Mean thickness loss from CMP dishing on wide lines (applied by the
        extraction engine proportionally to the line width).
    """

    name: str
    pitch_nm: float
    min_width_nm: float
    min_space_nm: float
    thickness_nm: float
    tapering_angle_deg: float = 3.0
    ild_below_nm: float = 40.0
    ild_above_nm: float = 40.0
    orientation: Orientation = Orientation.HORIZONTAL
    materials: MaterialSystem = field(default_factory=lambda: N10_MATERIALS)
    patterning_class: PatterningClass = PatterningClass.ANY
    cmp_dishing_nm: float = 0.0

    def __post_init__(self) -> None:
        if self.pitch_nm <= 0.0:
            raise StackError(f"layer {self.name!r}: pitch must be positive")
        if self.min_width_nm <= 0.0 or self.min_space_nm <= 0.0:
            raise StackError(
                f"layer {self.name!r}: min width/space must be positive"
            )
        if abs((self.min_width_nm + self.min_space_nm) - self.pitch_nm) > 1e-6:
            raise StackError(
                f"layer {self.name!r}: pitch ({self.pitch_nm}) must equal "
                f"min_width + min_space "
                f"({self.min_width_nm} + {self.min_space_nm})"
            )
        if self.thickness_nm <= 0.0:
            raise StackError(f"layer {self.name!r}: thickness must be positive")
        if not 0.0 <= self.tapering_angle_deg < 45.0:
            raise StackError(
                f"layer {self.name!r}: tapering angle must be in [0, 45) degrees"
            )
        if self.ild_below_nm <= 0.0 or self.ild_above_nm <= 0.0:
            raise StackError(f"layer {self.name!r}: ILD thicknesses must be positive")
        if self.cmp_dishing_nm < 0.0:
            raise StackError(f"layer {self.name!r}: CMP dishing cannot be negative")

    @property
    def aspect_ratio(self) -> float:
        """Thickness over minimum width."""
        return self.thickness_nm / self.min_width_nm

    @property
    def half_pitch_nm(self) -> float:
        return self.pitch_nm / 2.0

    def with_updates(self, **changes: object) -> "MetalLayer":
        """Return a copy of the layer with selected fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MetalStack:
    """An ordered collection of metal layers (bottom-up)."""

    layers: tuple

    def __post_init__(self) -> None:
        if not self.layers:
            raise StackError("a metal stack needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise StackError(f"duplicate layer names in stack: {names}")

    @classmethod
    def from_layers(cls, layers: Iterable[MetalLayer]) -> "MetalStack":
        return cls(layers=tuple(layers))

    def __iter__(self) -> Iterator[MetalLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def names(self) -> List[str]:
        return [layer.name for layer in self.layers]

    def layer(self, name: str) -> MetalLayer:
        """Return the layer called ``name``.

        Raises
        ------
        KeyError
            If the layer does not exist in the stack.
        """
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r}; available: {self.names}")

    def index(self, name: str) -> int:
        for position, candidate in enumerate(self.layers):
            if candidate.name == name:
                return position
        raise KeyError(f"no layer named {name!r}; available: {self.names}")

    def below(self, name: str) -> Optional[MetalLayer]:
        """Layer immediately below ``name`` or ``None`` if it is the lowest."""
        position = self.index(name)
        if position == 0:
            return None
        return self.layers[position - 1]

    def above(self, name: str) -> Optional[MetalLayer]:
        """Layer immediately above ``name`` or ``None`` if it is the highest."""
        position = self.index(name)
        if position == len(self.layers) - 1:
            return None
        return self.layers[position + 1]

    def replace_layer(self, name: str, new_layer: MetalLayer) -> "MetalStack":
        """Return a new stack with the named layer replaced."""
        position = self.index(name)
        layers = list(self.layers)
        layers[position] = new_layer
        return MetalStack(layers=tuple(layers))

    def as_dict(self) -> Dict[str, MetalLayer]:
        return {layer.name: layer for layer in self.layers}


def default_n10_metal_stack() -> MetalStack:
    """The N10-class metal stack used throughout the reproduction.

    The numbers follow public imec N10 descriptions: a 48 nm metal1/metal2
    pitch (24 nm lines / 24 nm spaces at minimum), an aspect ratio around
    1.8, and low-k intra-layer dielectric.  metal1 is horizontal (bit lines
    and power rails), metal2 vertical (word lines).
    """
    metal1 = MetalLayer(
        name="metal1",
        pitch_nm=48.0,
        min_width_nm=24.0,
        min_space_nm=24.0,
        thickness_nm=42.0,
        tapering_angle_deg=4.0,
        ild_below_nm=38.0,
        ild_above_nm=42.0,
        orientation=Orientation.HORIZONTAL,
        materials=N10_MATERIALS,
        patterning_class=PatterningClass.ANY,
        cmp_dishing_nm=0.5,
    )
    metal2 = MetalLayer(
        name="metal2",
        pitch_nm=48.0,
        min_width_nm=24.0,
        min_space_nm=24.0,
        thickness_nm=46.0,
        tapering_angle_deg=4.0,
        ild_below_nm=42.0,
        ild_above_nm=46.0,
        orientation=Orientation.VERTICAL,
        materials=N10_MATERIALS,
        patterning_class=PatterningClass.ANY,
        cmp_dishing_nm=0.5,
    )
    metal3 = MetalLayer(
        name="metal3",
        pitch_nm=64.0,
        min_width_nm=32.0,
        min_space_nm=32.0,
        thickness_nm=60.0,
        tapering_angle_deg=3.0,
        ild_below_nm=46.0,
        ild_above_nm=60.0,
        orientation=Orientation.HORIZONTAL,
        materials=N10_MATERIALS,
        patterning_class=PatterningClass.DOUBLE,
        cmp_dishing_nm=0.5,
    )
    return MetalStack.from_layers([metal1, metal2, metal3])
