"""Patterning substrate: LE/LE2/LE3 litho-etch, SADP, EUV, decomposition, sampling.

The module also populates :data:`~repro.patterning.base.default_registry`
with the standard options so studies can refer to them by name
(``"LELELE"``, ``"LELE"``, ``"SADP"``, ``"EUV"``).
"""

from .base import (
    BatchPrintedGeometry,
    ParameterValues,
    PatternedResult,
    PatterningError,
    PatterningOption,
    PatterningRegistry,
    default_registry,
    geometry_from_patterns,
)
from .decomposition import (
    DEFAULT_MASK_LABELS,
    DecompositionReport,
    apply_assignment,
    build_conflict_graph,
    cyclic_assignment,
    graph_coloring_assignment,
    mask_labels,
    verify_assignment,
)
from .euv import EUV_MASK, EUVSinglePatterning, euv
from .litho_etch import LithoEtch, le2, le3
from .sadp import CORE_MASK, SADP, SPACER_MASK, sadp
from .sampler import (
    ParameterSampleBatch,
    ParameterSampler,
    SampledParameters,
    enumerate_worst_case_corners,
)

#: The three options compared by the paper, in the order used by its tables.
PAPER_OPTIONS = ("LELELE", "SADP", "EUV")


def _populate_default_registry() -> None:
    if "LELELE" not in default_registry:
        default_registry.register("LELELE", le3)
    if "LE3" not in default_registry:
        default_registry.register("LE3", le3)
    if "LELE" not in default_registry:
        default_registry.register("LELE", le2)
    if "SADP" not in default_registry:
        default_registry.register("SADP", sadp)
    if "EUV" not in default_registry:
        default_registry.register("EUV", euv)


_populate_default_registry()


def create_option(name: str, **kwargs) -> PatterningOption:
    """Create a patterning option by name from the default registry."""
    return default_registry.create(name, **kwargs)


def paper_options() -> list:
    """Instantiate the three options compared by the paper (LE3, SADP, EUV)."""
    return [create_option(name) for name in PAPER_OPTIONS]


__all__ = [
    "BatchPrintedGeometry",
    "CORE_MASK",
    "DEFAULT_MASK_LABELS",
    "DecompositionReport",
    "EUVSinglePatterning",
    "EUV_MASK",
    "LithoEtch",
    "PAPER_OPTIONS",
    "ParameterSampleBatch",
    "ParameterSampler",
    "ParameterValues",
    "PatternedResult",
    "PatterningError",
    "PatterningOption",
    "PatterningRegistry",
    "SADP",
    "SPACER_MASK",
    "SampledParameters",
    "apply_assignment",
    "build_conflict_graph",
    "create_option",
    "cyclic_assignment",
    "default_registry",
    "enumerate_worst_case_corners",
    "euv",
    "geometry_from_patterns",
    "graph_coloring_assignment",
    "le2",
    "le3",
    "mask_labels",
    "paper_options",
    "sadp",
    "verify_assignment",
]
