"""Monte-Carlo sampling and worst-case enumeration of patterning parameters.

Two ways of exercising a patterning option's variation space:

* :class:`ParameterSampler` draws random parameter vectors from the
  per-parameter normal distributions (σ = 3σ budget / 3), optionally
  truncated at ±3σ — this feeds the Monte-Carlo tdp study (Fig. 5,
  Table IV);
* :func:`enumerate_worst_case_corners` enumerates all ±3σ corner
  combinations — this feeds the worst-case study (Table I, Fig. 4).

:meth:`ParameterSampler.draw_batch` draws all N samples as one ``(N, k)``
array.  It consumes the underlying random stream in exactly the order the
scalar :meth:`ParameterSampler.draw` loop does (sample-major, parameter
names in sorted order, zero-σ parameters skipped), so a batched study is
bit-identical to the scalar one for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..technology.corners import (
    CornerPoint,
    GaussianSpec,
    VariationAssumptions,
    enumerate_corner_points,
)
from .base import PatterningError, PatterningOption


@dataclass(frozen=True)
class SampledParameters:
    """One Monte-Carlo draw: parameter values plus the draw index."""

    index: int
    values: Dict[str, float]


@dataclass(frozen=True)
class ParameterSampleBatch:
    """All Monte-Carlo draws of a study point as one ``(N, k)`` matrix.

    Columns follow :attr:`parameter_names`; row ``i`` is draw ``i``.
    """

    parameter_names: Tuple[str, ...]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2 or self.matrix.shape[1] != len(self.parameter_names):
            raise PatterningError(
                f"sample matrix shape {self.matrix.shape} does not match "
                f"{len(self.parameter_names)} parameter names"
            )

    def __len__(self) -> int:
        return int(self.matrix.shape[0])

    def column(self, name: str) -> np.ndarray:
        """All draws of one parameter (a length-N view)."""
        try:
            index = self.parameter_names.index(name)
        except ValueError:
            raise PatterningError(
                f"unknown parameter {name!r}; known: {list(self.parameter_names)}"
            ) from None
        return self.matrix[:, index]

    def values_at(self, index: int) -> Dict[str, float]:
        """The ``index``-th draw as the scalar-path parameter dictionary."""
        row = self.matrix[index]
        return {name: float(row[k]) for k, name in enumerate(self.parameter_names)}

    def __iter__(self) -> Iterator[SampledParameters]:
        for index in range(len(self)):
            yield SampledParameters(index=index, values=self.values_at(index))


class ParameterSampler:
    """Draws patterning-parameter vectors for a given option.

    Parameters
    ----------
    option:
        The patterning option whose parameters are sampled.
    assumptions:
        The variation assumptions providing the 3σ budgets.
    seed:
        Seed for the underlying :class:`numpy.random.Generator`; pass a
        fixed value for reproducible studies.
    truncate_at_three_sigma:
        When true, draws are clipped to the ±3σ interval (the budgets are
        *specification* limits); when false the full normal is used.
    """

    def __init__(
        self,
        option: PatterningOption,
        assumptions: VariationAssumptions,
        seed: Optional[int] = None,
        truncate_at_three_sigma: bool = False,
    ) -> None:
        self.option = option
        self.assumptions = assumptions
        self.specs: Dict[str, GaussianSpec] = option.parameter_specs(assumptions)
        if not self.specs:
            raise PatterningError(
                f"option {option.name!r} exposes no variation parameters"
            )
        self.truncate_at_three_sigma = truncate_at_three_sigma
        self._rng = np.random.default_rng(seed)
        self._names: List[str] = sorted(self.specs)

    @property
    def parameter_names(self) -> List[str]:
        return list(self._names)

    def draw(self, index: int = 0) -> SampledParameters:
        """Draw a single parameter vector."""
        values: Dict[str, float] = {}
        for name in self._names:
            spec = self.specs[name]
            sigma = spec.sigma_nm
            if sigma == 0.0:
                values[name] = 0.0
                continue
            sample = float(self._rng.normal(0.0, sigma))
            if self.truncate_at_three_sigma:
                bound = spec.three_sigma_nm
                sample = float(np.clip(sample, -bound, bound))
            values[name] = sample
        return SampledParameters(index=index, values=values)

    def draw_many(self, count: int) -> List[SampledParameters]:
        """Draw ``count`` parameter vectors."""
        if count < 1:
            raise PatterningError("the number of Monte-Carlo samples must be positive")
        return [self.draw(index) for index in range(count)]

    def __iter__(self) -> Iterator[SampledParameters]:
        index = 0
        while True:
            yield self.draw(index)
            index += 1

    def draw_batch(self, count: int) -> ParameterSampleBatch:
        """Draw ``count`` parameter vectors as one ``(count, k)`` array.

        The random stream is consumed in the same order as ``count``
        successive :meth:`draw` calls (rows are samples, columns are the
        sorted parameter names; zero-σ parameters do not consume draws), so
        for a fixed seed the batch is bit-identical to the scalar loop.
        """
        if count < 1:
            raise PatterningError("the number of Monte-Carlo samples must be positive")
        sigmas = np.array([self.specs[name].sigma_nm for name in self._names])
        active = sigmas > 0.0
        matrix = np.zeros((count, len(self._names)))
        if np.any(active):
            standard = self._rng.standard_normal((count, int(np.count_nonzero(active))))
            matrix[:, active] = standard * sigmas[active]
            if self.truncate_at_three_sigma:
                bounds = np.array(
                    [self.specs[name].three_sigma_nm for name in self._names]
                )
                np.clip(matrix, -bounds, bounds, out=matrix)
        return ParameterSampleBatch(
            parameter_names=tuple(self._names), matrix=matrix
        )

    def draw_matrix(self, count: int) -> np.ndarray:
        """Draw ``count`` vectors as a ``(count, n_parameters)`` array.

        Column order follows :attr:`parameter_names`.  Useful for vectorised
        surrogate evaluations.
        """
        return self.draw_batch(count).matrix


def enumerate_worst_case_corners(
    option: PatterningOption,
    assumptions: VariationAssumptions,
    include_nominal: bool = False,
) -> List[CornerPoint]:
    """All ±3σ corner combinations of an option's parameters.

    The number of corners is ``2**n`` (or ``3**n`` with
    ``include_nominal``); LE3 has 5 parameters (3 CDs + 2 overlays) → 32
    corners, SADP and EUV have 2 and 1 → 4 and 2 corners.
    """
    specs = option.parameter_specs(assumptions)
    if not specs:
        raise PatterningError(f"option {option.name!r} exposes no variation parameters")
    return enumerate_corner_points(specs, include_nominal=include_nominal)
