"""Monte-Carlo sampling and worst-case enumeration of patterning parameters.

Two ways of exercising a patterning option's variation space:

* :class:`ParameterSampler` draws random parameter vectors from the
  per-parameter normal distributions (σ = 3σ budget / 3), optionally
  truncated at ±3σ — this feeds the Monte-Carlo tdp study (Fig. 5,
  Table IV);
* :func:`enumerate_worst_case_corners` enumerates all ±3σ corner
  combinations — this feeds the worst-case study (Table I, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..technology.corners import (
    CornerPoint,
    GaussianSpec,
    VariationAssumptions,
    enumerate_corner_points,
)
from .base import PatterningError, PatterningOption


@dataclass(frozen=True)
class SampledParameters:
    """One Monte-Carlo draw: parameter values plus the draw index."""

    index: int
    values: Dict[str, float]


class ParameterSampler:
    """Draws patterning-parameter vectors for a given option.

    Parameters
    ----------
    option:
        The patterning option whose parameters are sampled.
    assumptions:
        The variation assumptions providing the 3σ budgets.
    seed:
        Seed for the underlying :class:`numpy.random.Generator`; pass a
        fixed value for reproducible studies.
    truncate_at_three_sigma:
        When true, draws are clipped to the ±3σ interval (the budgets are
        *specification* limits); when false the full normal is used.
    """

    def __init__(
        self,
        option: PatterningOption,
        assumptions: VariationAssumptions,
        seed: Optional[int] = None,
        truncate_at_three_sigma: bool = False,
    ) -> None:
        self.option = option
        self.assumptions = assumptions
        self.specs: Dict[str, GaussianSpec] = option.parameter_specs(assumptions)
        if not self.specs:
            raise PatterningError(
                f"option {option.name!r} exposes no variation parameters"
            )
        self.truncate_at_three_sigma = truncate_at_three_sigma
        self._rng = np.random.default_rng(seed)
        self._names: List[str] = sorted(self.specs)

    @property
    def parameter_names(self) -> List[str]:
        return list(self._names)

    def draw(self, index: int = 0) -> SampledParameters:
        """Draw a single parameter vector."""
        values: Dict[str, float] = {}
        for name in self._names:
            spec = self.specs[name]
            sigma = spec.sigma_nm
            if sigma == 0.0:
                values[name] = 0.0
                continue
            sample = float(self._rng.normal(0.0, sigma))
            if self.truncate_at_three_sigma:
                bound = spec.three_sigma_nm
                sample = float(np.clip(sample, -bound, bound))
            values[name] = sample
        return SampledParameters(index=index, values=values)

    def draw_many(self, count: int) -> List[SampledParameters]:
        """Draw ``count`` parameter vectors."""
        if count < 1:
            raise PatterningError("the number of Monte-Carlo samples must be positive")
        return [self.draw(index) for index in range(count)]

    def __iter__(self) -> Iterator[SampledParameters]:
        index = 0
        while True:
            yield self.draw(index)
            index += 1

    def draw_matrix(self, count: int) -> np.ndarray:
        """Draw ``count`` vectors as a ``(count, n_parameters)`` array.

        Column order follows :attr:`parameter_names`.  Useful for vectorised
        surrogate evaluations.
        """
        samples = self.draw_many(count)
        return np.array(
            [[sample.values[name] for name in self._names] for sample in samples]
        )


def enumerate_worst_case_corners(
    option: PatterningOption,
    assumptions: VariationAssumptions,
    include_nominal: bool = False,
) -> List[CornerPoint]:
    """All ±3σ corner combinations of an option's parameters.

    The number of corners is ``2**n`` (or ``3**n`` with
    ``include_nominal``); LE3 has 5 parameters (3 CDs + 2 overlays) → 32
    corners, SADP and EUV have 2 and 1 → 4 and 2 corners.
    """
    specs = option.parameter_specs(assumptions)
    if not specs:
        raise PatterningError(f"option {option.name!r} exposes no variation parameters")
    return enumerate_corner_points(specs, include_nominal=include_nominal)
