"""Self-aligned double patterning (SADP).

In SADP a relaxed-pitch mandrel (core) pattern is printed first; spacers of
a controlled thickness are deposited on the mandrel sidewalls; after
mandrel removal the spacers define the *gaps* of the final metal pattern
(spacer-is-dielectric flavour used for BEOL).  Consequences:

* mandrel-defined lines inherit the core print's CD error;
* the gaps between lines equal the spacer thickness, so their variation is
  the (small) spacer-deposition error, **not** an overlay error — the
  process is self-aligned and there is no mask-to-mask overlay between
  neighbouring lines;
* spacer-defined (non-mandrel) lines get their width from what is left
  between the spacers of the two adjacent mandrels, so the core CD error
  and spacer error *anti-correlate* with their width.

The paper's SRAM layout draws the **bit lines as spacer-defined lines**
(the power rails are the mandrels), which is why SADP shows a large
bit-line *resistance* swing (−18%) but only a tiny capacitance swing
(+4%): the gaps barely move.

Parameter names:

* ``"cd:core"`` — CD error of the mandrel print (full width change, nm);
* ``"spacer"``  — spacer-thickness error (per spacer, nm).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..layout.wire import Track, TrackPattern
from ..technology.corners import GaussianSpec, SADPAssumptions, VariationAssumptions
from .base import (
    BatchPrintedGeometry,
    ParameterValues,
    PatternedResult,
    PatterningError,
    PatterningOption,
)

#: Mask label of mandrel-defined tracks.
CORE_MASK = "core"
#: Mask label of spacer-defined tracks.
SPACER_MASK = "spacer"


class SADP(PatterningOption):
    """Self-aligned double patterning of a parallel track pattern.

    Parameters
    ----------
    bitlines_spacer_defined:
        When true (paper assumption) tracks at odd positions — which are
        the bit lines in the ``VSS | BL | VDD | BLB`` stack — are
        spacer-defined and the even positions are mandrels.  When false the
        assignment is swapped (used by the mandrel-bit-line ablation).
    """

    name = "SADP"

    def __init__(self, bitlines_spacer_defined: bool = True) -> None:
        self.bitlines_spacer_defined = bitlines_spacer_defined

    # -- decomposition --------------------------------------------------------

    def decompose(self, pattern: TrackPattern) -> TrackPattern:
        """Alternately label tracks as mandrel (core) or spacer-defined."""
        mandrel_parity = 0 if self.bitlines_spacer_defined else 1
        tracks = []
        for index, track in enumerate(pattern):
            mask = CORE_MASK if index % 2 == mandrel_parity else SPACER_MASK
            tracks.append(track.with_mask(mask))
        return pattern.with_tracks(tracks)

    # -- parameters -----------------------------------------------------------

    def parameter_specs(
        self, assumptions: VariationAssumptions
    ) -> Dict[str, GaussianSpec]:
        sadp: SADPAssumptions = assumptions.sadp
        return {"cd:core": sadp.core_cd, "spacer": sadp.spacer}

    # -- printing -------------------------------------------------------------

    def apply(
        self, pattern: TrackPattern, parameters: ParameterValues
    ) -> PatternedResult:
        decomposed = self.decompose(pattern)
        values = self._check_parameters(parameters, ["cd:core", "spacer"])
        cd_core = values["cd:core"]
        spacer_delta = values["spacer"]

        tracks = list(decomposed)
        spaces = decomposed.spaces()

        # Pass 1: print the mandrel-defined tracks (core CD error only).
        printed: List[Optional[Track]] = [None] * len(tracks)
        for index, track in enumerate(tracks):
            if track.mask == CORE_MASK:
                printed[index] = track.widened(cd_core)

        # Pass 2: derive the spacer-defined tracks from the printed mandrel
        # edges and the (varied) spacer thicknesses.  The nominal spacer
        # thickness on each side is the drawn space on that side.
        for index, track in enumerate(tracks):
            if track.mask != SPACER_MASK:
                continue
            left_neighbor = printed[index - 1] if index > 0 else None
            right_neighbor = printed[index + 1] if index < len(tracks) - 1 else None

            if left_neighbor is not None and left_neighbor.mask == CORE_MASK:
                nominal_left_space = spaces[index - 1]
                left_edge = left_neighbor.right_edge_nm + nominal_left_space + spacer_delta
            else:
                left_edge = track.left_edge_nm
            if right_neighbor is not None and right_neighbor.mask == CORE_MASK:
                nominal_right_space = spaces[index]
                right_edge = right_neighbor.left_edge_nm - nominal_right_space - spacer_delta
            else:
                right_edge = track.right_edge_nm

            if right_edge - left_edge <= 0.0:
                raise PatterningError(
                    f"SADP variation (cd:core={cd_core}, spacer={spacer_delta}) "
                    f"pinches off spacer-defined track {track.net!r}"
                )
            printed[index] = track.with_edges(left_edge, right_edge)

        printed_tracks = [entry for entry in printed if entry is not None]
        if len(printed_tracks) != len(tracks):  # pragma: no cover - defensive
            raise PatterningError("SADP printing lost tracks")
        printed_pattern = decomposed.with_tracks(printed_tracks)
        return PatternedResult(
            option_name=self.name,
            nominal=pattern,
            printed=printed_pattern,
            parameters=dict(values),
        )

    def apply_batch(
        self,
        pattern: TrackPattern,
        parameter_matrix: np.ndarray,
        parameter_names: Sequence[str],
    ) -> BatchPrintedGeometry:
        """Vectorised printing: mandrels take the core CD, spacer-defined
        tracks inherit their edges from the printed mandrels ± the spacer
        error — the same two passes as :meth:`apply`, over ``(N,)`` arrays.
        """
        matrix = self._check_batch_matrix(parameter_matrix, parameter_names)
        columns = self._parameter_columns(parameter_names, ["cd:core", "spacer"])
        n_samples = matrix.shape[0]

        def column_values(name: str) -> np.ndarray:
            index = columns.get(name)
            return matrix[:, index] if index is not None else np.zeros(n_samples)

        cd_core = column_values("cd:core")
        spacer_delta = column_values("spacer")

        decomposed = self.decompose(pattern)
        tracks = list(decomposed)
        spaces = decomposed.spaces()

        # NaN-filled so a track missed by both passes is caught below, like
        # the scalar path's "SADP printing lost tracks" guard.
        left = np.full((n_samples, len(tracks)), np.nan)
        right = np.full_like(left, np.nan)

        # Pass 1: mandrel-defined tracks widen symmetrically by the core CD.
        for index, track in enumerate(tracks):
            if track.mask == CORE_MASK:
                half_width = 0.5 * (track.width_nm + cd_core)
                left[:, index] = track.center_nm - half_width
                right[:, index] = track.center_nm + half_width

        # Pass 2: spacer-defined tracks between the printed mandrel edges.
        for index, track in enumerate(tracks):
            if track.mask != SPACER_MASK:
                continue
            left_neighbor = tracks[index - 1] if index > 0 else None
            right_neighbor = tracks[index + 1] if index < len(tracks) - 1 else None

            if left_neighbor is not None and left_neighbor.mask == CORE_MASK:
                left[:, index] = right[:, index - 1] + spaces[index - 1] + spacer_delta
            else:
                left[:, index] = track.left_edge_nm
            if right_neighbor is not None and right_neighbor.mask == CORE_MASK:
                right[:, index] = left[:, index + 1] - spaces[index] - spacer_delta
            else:
                right[:, index] = track.right_edge_nm

            pinched = right[:, index] - left[:, index] <= 0.0
            if np.any(pinched):
                sample = int(np.argmax(pinched))
                raise PatterningError(
                    f"SADP variation (cd:core={cd_core[sample]}, "
                    f"spacer={spacer_delta[sample]}) pinches off spacer-defined "
                    f"track {track.net!r} (sample {sample})"
                )

        if not (np.all(np.isfinite(left)) and np.all(np.isfinite(right))):
            raise PatterningError("SADP printing lost tracks")  # pragma: no cover - defensive
        return self._printed_geometry(pattern, decomposed, left, right)


def sadp(bitlines_spacer_defined: bool = True) -> SADP:
    """Construct the SADP option with the paper's spacer-defined bit lines."""
    return SADP(bitlines_spacer_defined=bitlines_spacer_defined)
