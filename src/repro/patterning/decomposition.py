"""Mask decomposition (colouring) of track patterns.

Litho-etch multiple patterning splits a dense layer onto ``k`` masks such
that no two features closer than the single-exposure resolution share a
mask.  For the regular, parallel track patterns of an SRAM metal1 layer a
cyclic assignment is optimal; for irregular patterns the conflict graph is
coloured with networkx.  Both strategies are provided, plus a checker that
verifies a colouring is legal for a given same-mask spacing limit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..layout.wire import Track, TrackPattern
from .base import PatterningError

#: Default mask labels, in exposure order.
DEFAULT_MASK_LABELS: Tuple[str, ...] = ("A", "B", "C", "D")


def mask_labels(n_masks: int) -> Tuple[str, ...]:
    """The labels of an ``n_masks``-exposure litho-etch flow."""
    if n_masks < 1:
        raise PatterningError("a litho-etch flow needs at least one mask")
    if n_masks <= len(DEFAULT_MASK_LABELS):
        return DEFAULT_MASK_LABELS[:n_masks]
    return tuple(f"M{index}" for index in range(n_masks))


def cyclic_assignment(pattern: TrackPattern, n_masks: int) -> Dict[str, str]:
    """Assign tracks to masks cyclically, left to right.

    For equally pitched parallel lines this maximises the same-mask pitch
    (``n_masks ×`` the line pitch), which is exactly how a gridded SRAM
    metal1 layer is decomposed in practice.

    Returns
    -------
    dict
        Mapping net name → mask label.
    """
    labels = mask_labels(n_masks)
    assignment: Dict[str, str] = {}
    for index, track in enumerate(pattern):
        assignment[track.net] = labels[index % n_masks]
    return assignment


def build_conflict_graph(
    pattern: TrackPattern, same_mask_min_space_nm: float
) -> nx.Graph:
    """Build the colouring conflict graph of a track pattern.

    Two tracks conflict (cannot share a mask) when their edge-to-edge space
    is below ``same_mask_min_space_nm`` — the single-exposure spacing
    limit.

    The graph nodes are net names; each node stores its track index.
    """
    if same_mask_min_space_nm <= 0.0:
        raise PatterningError("the same-mask spacing limit must be positive")
    graph = nx.Graph()
    for index, track in enumerate(pattern):
        graph.add_node(track.net, index=index)
    tracks = list(pattern)
    for (index_a, track_a), (index_b, track_b) in itertools.combinations(
        enumerate(tracks), 2
    ):
        space = abs(track_b.left_edge_nm - track_a.right_edge_nm)
        if track_a.center_nm > track_b.center_nm:
            space = abs(track_a.left_edge_nm - track_b.right_edge_nm)
        if pattern.space_between(index_a, index_b) < same_mask_min_space_nm:
            graph.add_edge(track_a.net, track_b.net)
    return graph


def graph_coloring_assignment(
    pattern: TrackPattern,
    n_masks: int,
    same_mask_min_space_nm: float,
    strategy: str = "DSATUR",
) -> Dict[str, str]:
    """Colour the conflict graph with at most ``n_masks`` colours.

    Raises
    ------
    PatterningError
        If the greedy colouring needs more colours than masks are
        available (the pattern is not ``n_masks``-decomposable with the
        chosen strategy).
    """
    graph = build_conflict_graph(pattern, same_mask_min_space_nm)
    coloring = nx.greedy_color(graph, strategy=strategy)
    used_colors = set(coloring.values())
    if len(used_colors) > n_masks:
        raise PatterningError(
            f"pattern needs {len(used_colors)} masks but only {n_masks} are "
            f"available (same-mask space limit {same_mask_min_space_nm} nm)"
        )
    labels = mask_labels(n_masks)
    # Make the colour → label mapping deterministic: order colours by the
    # leftmost track that uses them.
    color_first_index: Dict[int, int] = {}
    for net, color in coloring.items():
        index = graph.nodes[net]["index"]
        color_first_index[color] = min(color_first_index.get(color, index), index)
    ordered_colors = sorted(color_first_index, key=lambda color: color_first_index[color])
    color_to_label = {color: labels[rank] for rank, color in enumerate(ordered_colors)}
    return {net: color_to_label[color] for net, color in coloring.items()}


def verify_assignment(
    pattern: TrackPattern,
    assignment: Dict[str, str],
    same_mask_min_space_nm: float,
) -> List[Tuple[str, str, float]]:
    """Return the list of same-mask spacing violations of an assignment.

    Each violation is ``(net_a, net_b, space_nm)``.  An empty list means
    the assignment is legal.
    """
    violations: List[Tuple[str, str, float]] = []
    tracks = list(pattern)
    for (index_a, track_a), (index_b, track_b) in itertools.combinations(
        enumerate(tracks), 2
    ):
        if assignment.get(track_a.net) != assignment.get(track_b.net):
            continue
        space = pattern.space_between(index_a, index_b)
        if space < same_mask_min_space_nm:
            violations.append((track_a.net, track_b.net, space))
    return violations


def apply_assignment(pattern: TrackPattern, assignment: Dict[str, str]) -> TrackPattern:
    """Return a copy of ``pattern`` whose tracks carry the assigned masks."""
    missing = [track.net for track in pattern if track.net not in assignment]
    if missing:
        raise PatterningError(f"assignment misses nets: {missing}")
    return pattern.with_tracks(
        [track.with_mask(assignment[track.net]) for track in pattern]
    )


@dataclass(frozen=True)
class DecompositionReport:
    """Summary of a decomposition: assignment plus per-mask statistics."""

    n_masks: int
    assignment: Dict[str, str]
    tracks_per_mask: Dict[str, int]
    min_same_mask_space_nm: Optional[float]

    @classmethod
    def from_pattern(
        cls, pattern: TrackPattern, assignment: Dict[str, str], n_masks: int
    ) -> "DecompositionReport":
        tracks_per_mask: Dict[str, int] = {}
        for net, mask in assignment.items():
            tracks_per_mask[mask] = tracks_per_mask.get(mask, 0) + 1
        min_space: Optional[float] = None
        tracks = list(pattern)
        for (index_a, track_a), (index_b, track_b) in itertools.combinations(
            enumerate(tracks), 2
        ):
            if assignment[track_a.net] != assignment[track_b.net]:
                continue
            space = pattern.space_between(index_a, index_b)
            min_space = space if min_space is None else min(min_space, space)
        return cls(
            n_masks=n_masks,
            assignment=dict(assignment),
            tracks_per_mask=tracks_per_mask,
            min_same_mask_space_nm=min_space,
        )
