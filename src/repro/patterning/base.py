"""Abstract interface of a patterning option.

A *patterning option* (LE3, SADP, EUV...) knows three things:

1. how a nominal :class:`~repro.layout.wire.TrackPattern` is decomposed
   onto its masks / process steps (:meth:`PatterningOption.decompose`);
2. which variation parameters it introduces and their 3σ budgets
   (:meth:`PatterningOption.parameter_specs`);
3. how a concrete assignment of those parameters distorts the printed
   pattern (:meth:`PatterningOption.apply`).

The worst-case enumeration, Monte-Carlo sampling and parasitic extraction
all operate on this interface only, so adding a new patterning option
(for example LE2, or SAQP) does not touch the analysis code.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..layout.wire import Track, TrackPattern
from ..technology.corners import GaussianSpec, VariationAssumptions


class PatterningError(ValueError):
    """Raised for invalid patterning configurations or parameter sets."""


#: A concrete assignment of variation-parameter values in nanometres,
#: keyed by the names returned by :meth:`PatterningOption.parameter_specs`
#: (for example ``{"cd:A": +3.0, "ol:B": -8.0}``).
ParameterValues = Mapping[str, float]


@dataclass(frozen=True)
class PatternedResult:
    """The outcome of printing a track pattern with a patterning option.

    Attributes
    ----------
    option_name:
        Name of the patterning option that produced the result.
    nominal:
        The drawn (input) pattern.
    printed:
        The printed pattern, with distorted widths/positions and with each
        track's ``mask`` attribute filled in.
    parameters:
        The parameter values that were applied.
    """

    option_name: str
    nominal: TrackPattern
    printed: TrackPattern
    parameters: Dict[str, float] = field(default_factory=dict)

    def width_change_nm(self, net: str) -> float:
        """Printed-minus-drawn width of the track carrying ``net``."""
        return self.printed.track_for(net).width_nm - self.nominal.track_for(net).width_nm

    def center_shift_nm(self, net: str) -> float:
        """Printed-minus-drawn centre position of the track carrying ``net``."""
        return self.printed.track_for(net).center_nm - self.nominal.track_for(net).center_nm

    def space_changes_nm(self) -> List[float]:
        """Per-gap change of the neighbour spaces (printed minus drawn)."""
        return [
            printed - drawn
            for printed, drawn in zip(self.printed.spaces(), self.nominal.spaces())
        ]


class PatterningOption(abc.ABC):
    """Base class for all patterning options."""

    #: Short machine-readable name (``"LELELE"``, ``"SADP"``, ``"EUV"``).
    name: str = "abstract"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"

    # -- mandatory interface -------------------------------------------------

    @abc.abstractmethod
    def decompose(self, pattern: TrackPattern) -> TrackPattern:
        """Assign every track of ``pattern`` to a mask / process step.

        Returns a copy of the pattern whose tracks carry a ``mask`` label;
        geometry is unchanged.
        """

    @abc.abstractmethod
    def parameter_specs(
        self, assumptions: VariationAssumptions
    ) -> Dict[str, GaussianSpec]:
        """The variation parameters this option introduces and their budgets."""

    @abc.abstractmethod
    def apply(
        self, pattern: TrackPattern, parameters: ParameterValues
    ) -> PatternedResult:
        """Print ``pattern`` with the given parameter values.

        Unknown parameter names raise :class:`PatterningError`; missing
        parameters default to zero (nominal).
        """

    # -- shared helpers -------------------------------------------------------

    def nominal_result(self, pattern: TrackPattern) -> PatternedResult:
        """Print the pattern with all variation parameters at zero."""
        return self.apply(pattern, {})

    def _check_parameters(
        self, parameters: ParameterValues, known: Iterable[str]
    ) -> Dict[str, float]:
        known_set = set(known)
        unknown = [name for name in parameters if name not in known_set]
        if unknown:
            raise PatterningError(
                f"{self.name}: unknown parameter(s) {sorted(unknown)}; "
                f"known parameters: {sorted(known_set)}"
            )
        values = {name: 0.0 for name in known_set}
        values.update({name: float(value) for name, value in parameters.items()})
        return values


class PatterningRegistry:
    """A name → option factory registry.

    Studies are configured with option *names* (strings); the registry maps
    them to constructed option objects.  The default registry is populated
    by :mod:`repro.patterning` at import time with LE2, LE3 (LELELE), SADP
    and EUV.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, object] = {}

    def register(self, name: str, factory) -> None:
        key = name.upper()
        if key in self._factories:
            raise PatterningError(f"patterning option {name!r} already registered")
        self._factories[key] = factory

    def create(self, name: str, **kwargs) -> PatterningOption:
        key = name.upper()
        try:
            factory = self._factories[key]
        except KeyError:
            raise PatterningError(
                f"unknown patterning option {name!r}; known: {sorted(self._factories)}"
            ) from None
        return factory(**kwargs)

    @property
    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._factories


#: The module-level default registry used by the studies.
default_registry = PatterningRegistry()
