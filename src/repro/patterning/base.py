"""Abstract interface of a patterning option.

A *patterning option* (LE3, SADP, EUV...) knows three things:

1. how a nominal :class:`~repro.layout.wire.TrackPattern` is decomposed
   onto its masks / process steps (:meth:`PatterningOption.decompose`);
2. which variation parameters it introduces and their 3σ budgets
   (:meth:`PatterningOption.parameter_specs`);
3. how a concrete assignment of those parameters distorts the printed
   pattern (:meth:`PatterningOption.apply`).

The worst-case enumeration, Monte-Carlo sampling and parasitic extraction
all operate on this interface only, so adding a new patterning option
(for example LE2, or SAQP) does not touch the analysis code.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..layout.wire import NetRole, Track, TrackPattern
from ..technology.corners import GaussianSpec, VariationAssumptions


class PatterningError(ValueError):
    """Raised for invalid patterning configurations or parameter sets."""


#: A concrete assignment of variation-parameter values in nanometres,
#: keyed by the names returned by :meth:`PatterningOption.parameter_specs`
#: (for example ``{"cd:A": +3.0, "ol:B": -8.0}``).
ParameterValues = Mapping[str, float]


@dataclass(frozen=True)
class PatternedResult:
    """The outcome of printing a track pattern with a patterning option.

    Attributes
    ----------
    option_name:
        Name of the patterning option that produced the result.
    nominal:
        The drawn (input) pattern.
    printed:
        The printed pattern, with distorted widths/positions and with each
        track's ``mask`` attribute filled in.
    parameters:
        The parameter values that were applied.
    """

    option_name: str
    nominal: TrackPattern
    printed: TrackPattern
    parameters: Dict[str, float] = field(default_factory=dict)

    def width_change_nm(self, net: str) -> float:
        """Printed-minus-drawn width of the track carrying ``net``."""
        return self.printed.track_for(net).width_nm - self.nominal.track_for(net).width_nm

    def center_shift_nm(self, net: str) -> float:
        """Printed-minus-drawn centre position of the track carrying ``net``."""
        return self.printed.track_for(net).center_nm - self.nominal.track_for(net).center_nm

    def space_changes_nm(self) -> List[float]:
        """Per-gap change of the neighbour spaces (printed minus drawn)."""
        return [
            printed - drawn
            for printed, drawn in zip(self.printed.spaces(), self.nominal.spaces())
        ]


@dataclass(frozen=True)
class BatchPrintedGeometry:
    """Printed geometry of one pattern under N parameter assignments.

    The column order matches the decomposed pattern's track order (sorted
    by nominal centre position); ``left_edges_nm`` and ``right_edges_nm``
    are ``(N, T)`` arrays of printed track edges.  This is the interface
    between the vectorised patterning step and the vectorised extraction.
    """

    option_name: str
    nominal: TrackPattern
    nets: Tuple[str, ...]
    roles: Tuple[NetRole, ...]
    masks: Tuple[Optional[str], ...]
    left_edges_nm: np.ndarray
    right_edges_nm: np.ndarray

    def __post_init__(self) -> None:
        left = self.left_edges_nm
        right = self.right_edges_nm
        if left.shape != right.shape or left.ndim != 2:
            raise PatterningError(
                f"edge arrays must share one (N, T) shape, got "
                f"{left.shape} and {right.shape}"
            )
        if left.shape[1] != len(self.nets):
            raise PatterningError(
                f"edge arrays cover {left.shape[1]} tracks but {len(self.nets)} "
                "nets were named"
            )

    @property
    def n_samples(self) -> int:
        return int(self.left_edges_nm.shape[0])

    @property
    def n_tracks(self) -> int:
        return int(self.left_edges_nm.shape[1])

    @property
    def wire_length_nm(self) -> float:
        return self.nominal.wire_length_nm

    @property
    def widths_nm(self) -> np.ndarray:
        """Printed widths, shape ``(N, T)``."""
        return self.right_edges_nm - self.left_edges_nm

    def index_of(self, net: str) -> int:
        try:
            return self.nets.index(net)
        except ValueError:
            raise PatterningError(
                f"no printed track carries net {net!r}; nets: {list(self.nets)}"
            ) from None

    def spaces_nm(self, left_index: int, right_index: int) -> np.ndarray:
        """Edge-to-edge spaces between two track columns, shape ``(N,)``."""
        return self.left_edges_nm[:, right_index] - self.right_edges_nm[:, left_index]

    def validate(self) -> None:
        """Reject samples that pinch off a track or overlap neighbours.

        The scalar path raises for such samples one at a time; the batch
        path rejects the whole batch with the offending sample index so the
        caller can tighten the budgets (matching scalar-path strictness).
        """
        widths = self.widths_nm
        if np.any(widths <= 0.0):
            sample, track = np.argwhere(widths <= 0.0)[0]
            raise PatterningError(
                f"{self.option_name}: sample {int(sample)} gives track "
                f"{self.nets[int(track)]!r} a non-positive printed width"
            )
        if self.n_tracks > 1:
            overlap = (
                self.left_edges_nm[:, 1:] < self.right_edges_nm[:, :-1] - 1e-9
            )
            if np.any(overlap):
                sample, gap = np.argwhere(overlap)[0]
                raise PatterningError(
                    f"{self.option_name}: sample {int(sample)} makes tracks "
                    f"{self.nets[int(gap)]!r} and {self.nets[int(gap) + 1]!r} overlap"
                )

    def printed_pattern_at(self, index: int) -> TrackPattern:
        """Materialise one sample as a scalar :class:`TrackPattern`."""
        tracks = []
        for column, net in enumerate(self.nets):
            left = float(self.left_edges_nm[index, column])
            right = float(self.right_edges_nm[index, column])
            tracks.append(
                Track(
                    net=net,
                    center_nm=0.5 * (left + right),
                    width_nm=right - left,
                    role=self.roles[column],
                    mask=self.masks[column],
                )
            )
        return self.nominal.with_tracks(tracks)


def geometry_from_patterns(
    option_name: str,
    nominal: TrackPattern,
    printed_patterns: Sequence[TrackPattern],
) -> BatchPrintedGeometry:
    """Stack scalar printed patterns into a :class:`BatchPrintedGeometry`."""
    if not printed_patterns:
        raise PatterningError("at least one printed pattern is required")
    first = printed_patterns[0]
    left = np.empty((len(printed_patterns), len(first)))
    right = np.empty_like(left)
    for row, printed in enumerate(printed_patterns):
        for column, track in enumerate(printed):
            left[row, column] = track.left_edge_nm
            right[row, column] = track.right_edge_nm
    return BatchPrintedGeometry(
        option_name=option_name,
        nominal=nominal,
        nets=tuple(track.net for track in first),
        roles=tuple(track.role for track in first),
        masks=tuple(track.mask for track in first),
        left_edges_nm=left,
        right_edges_nm=right,
    )


class PatterningOption(abc.ABC):
    """Base class for all patterning options."""

    #: Short machine-readable name (``"LELELE"``, ``"SADP"``, ``"EUV"``).
    name: str = "abstract"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"

    # -- mandatory interface -------------------------------------------------

    @abc.abstractmethod
    def decompose(self, pattern: TrackPattern) -> TrackPattern:
        """Assign every track of ``pattern`` to a mask / process step.

        Returns a copy of the pattern whose tracks carry a ``mask`` label;
        geometry is unchanged.
        """

    @abc.abstractmethod
    def parameter_specs(
        self, assumptions: VariationAssumptions
    ) -> Dict[str, GaussianSpec]:
        """The variation parameters this option introduces and their budgets."""

    @abc.abstractmethod
    def apply(
        self, pattern: TrackPattern, parameters: ParameterValues
    ) -> PatternedResult:
        """Print ``pattern`` with the given parameter values.

        Unknown parameter names raise :class:`PatterningError`; missing
        parameters default to zero (nominal).
        """

    # -- batched printing ------------------------------------------------------

    def apply_batch(
        self,
        pattern: TrackPattern,
        parameter_matrix: np.ndarray,
        parameter_names: Sequence[str],
    ) -> BatchPrintedGeometry:
        """Print ``pattern`` under every row of an ``(N, k)`` parameter matrix.

        The base implementation loops the scalar :meth:`apply` per sample —
        always correct, never fast; the standard options override it with a
        fully vectorised implementation.  Column ``j`` of the matrix holds
        parameter ``parameter_names[j]``.
        """
        matrix = self._check_batch_matrix(parameter_matrix, parameter_names)
        printed = [
            self.apply(
                pattern,
                {name: float(row[j]) for j, name in enumerate(parameter_names)},
            ).printed
            for row in matrix
        ]
        geometry = geometry_from_patterns(self.name, pattern, printed)
        geometry.validate()
        return geometry

    def _printed_geometry(
        self,
        nominal: TrackPattern,
        decomposed: TrackPattern,
        left_edges_nm: np.ndarray,
        right_edges_nm: np.ndarray,
    ) -> BatchPrintedGeometry:
        """Assemble and validate the batch geometry of a printed pattern."""
        geometry = BatchPrintedGeometry(
            option_name=self.name,
            nominal=nominal,
            nets=tuple(track.net for track in decomposed),
            roles=tuple(track.role for track in decomposed),
            masks=tuple(track.mask for track in decomposed),
            left_edges_nm=left_edges_nm,
            right_edges_nm=right_edges_nm,
        )
        geometry.validate()
        return geometry

    def _check_batch_matrix(
        self, parameter_matrix: np.ndarray, parameter_names: Sequence[str]
    ) -> np.ndarray:
        """Validate an ``(N, k)`` parameter matrix against its column names."""
        matrix = np.asarray(parameter_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(parameter_names):
            raise PatterningError(
                f"{self.name}: parameter matrix shape {matrix.shape} does not "
                f"match {len(parameter_names)} parameter names"
            )
        return matrix

    def _parameter_columns(
        self, parameter_names: Sequence[str], known: Iterable[str]
    ) -> Dict[str, int]:
        """Map known parameter names to matrix columns, rejecting unknowns."""
        known_set = set(known)
        unknown = [name for name in parameter_names if name not in known_set]
        if unknown:
            raise PatterningError(
                f"{self.name}: unknown parameter(s) {sorted(unknown)}; "
                f"known parameters: {sorted(known_set)}"
            )
        return {name: index for index, name in enumerate(parameter_names)}

    # -- shared helpers -------------------------------------------------------

    def nominal_result(self, pattern: TrackPattern) -> PatternedResult:
        """Print the pattern with all variation parameters at zero."""
        return self.apply(pattern, {})

    def _check_parameters(
        self, parameters: ParameterValues, known: Iterable[str]
    ) -> Dict[str, float]:
        known_set = set(known)
        unknown = [name for name in parameters if name not in known_set]
        if unknown:
            raise PatterningError(
                f"{self.name}: unknown parameter(s) {sorted(unknown)}; "
                f"known parameters: {sorted(known_set)}"
            )
        values = {name: 0.0 for name in known_set}
        values.update({name: float(value) for name, value in parameters.items()})
        return values


class PatterningRegistry:
    """A name → option factory registry.

    Studies are configured with option *names* (strings); the registry maps
    them to constructed option objects.  The default registry is populated
    by :mod:`repro.patterning` at import time with LE2, LE3 (LELELE), SADP
    and EUV.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, object] = {}

    def register(self, name: str, factory) -> None:
        key = name.upper()
        if key in self._factories:
            raise PatterningError(f"patterning option {name!r} already registered")
        self._factories[key] = factory

    def create(self, name: str, **kwargs) -> PatterningOption:
        key = name.upper()
        try:
            factory = self._factories[key]
        except KeyError:
            raise PatterningError(
                f"unknown patterning option {name!r}; known: {sorted(self._factories)}"
            ) from None
        return factory(**kwargs)

    @property
    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._factories


#: The module-level default registry used by the studies.
default_registry = PatterningRegistry()
