"""Single-patterning extreme-UV (EUV).

With a single EUV exposure the whole layer is printed at once: every line
shares the same mask, so there is no line-to-line overlay error and the
only variability knob is the CD error of the (single) exposure.  The paper
uses the same 3 nm 3σ CD budget as for the litho-etch masks while noting
this may be pessimistic for EUV — the budget is a parameter here so the
sensitivity can be explored (see the EUV CD-budget ablation bench).

Parameter names:

* ``"cd:euv"`` — CD error of the single exposure (full width change, nm).
  A uniform CD error widens every line and therefore shrinks every space
  by the same amount.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..layout.wire import TrackPattern
from ..technology.corners import EUVAssumptions, GaussianSpec, VariationAssumptions
from .base import (
    BatchPrintedGeometry,
    ParameterValues,
    PatternedResult,
    PatterningOption,
)

#: Mask label used for all tracks of a single EUV exposure.
EUV_MASK = "euv"


class EUVSinglePatterning(PatterningOption):
    """Single-exposure EUV patterning of a parallel track pattern."""

    name = "EUV"

    def decompose(self, pattern: TrackPattern) -> TrackPattern:
        return pattern.with_tracks([track.with_mask(EUV_MASK) for track in pattern])

    def parameter_specs(
        self, assumptions: VariationAssumptions
    ) -> Dict[str, GaussianSpec]:
        euv: EUVAssumptions = assumptions.euv
        return {"cd:euv": euv.cd}

    def apply(
        self, pattern: TrackPattern, parameters: ParameterValues
    ) -> PatternedResult:
        decomposed = self.decompose(pattern)
        values = self._check_parameters(parameters, ["cd:euv"])
        cd_delta = values["cd:euv"]
        printed_tracks = [track.widened(cd_delta) for track in decomposed]
        printed_pattern = decomposed.with_tracks(printed_tracks)
        return PatternedResult(
            option_name=self.name,
            nominal=pattern,
            printed=printed_pattern,
            parameters=dict(values),
        )

    def apply_batch(
        self,
        pattern: TrackPattern,
        parameter_matrix: np.ndarray,
        parameter_names: Sequence[str],
    ) -> BatchPrintedGeometry:
        """Vectorised printing: one CD error widens every line symmetrically."""
        matrix = self._check_batch_matrix(parameter_matrix, parameter_names)
        columns = self._parameter_columns(parameter_names, ["cd:euv"])
        n_samples = matrix.shape[0]
        cd_index = columns.get("cd:euv")
        cd_delta = matrix[:, cd_index] if cd_index is not None else np.zeros(n_samples)

        decomposed = self.decompose(pattern)
        left = np.empty((n_samples, len(decomposed)))
        right = np.empty_like(left)
        for index, track in enumerate(decomposed):
            half_width = 0.5 * (track.width_nm + cd_delta)
            left[:, index] = track.center_nm - half_width
            right[:, index] = track.center_nm + half_width

        return self._printed_geometry(pattern, decomposed, left, right)


def euv() -> EUVSinglePatterning:
    """Construct the single-patterning EUV option."""
    return EUVSinglePatterning()
