"""Litho-etch multiple patterning (LE, LELE, LELELE ...).

In a ``k``-mask litho-etch flow every line belongs to exactly one mask;
each mask is exposed and etched separately, so every mask carries its own
critical-dimension (CD) error and — for the non-reference masks — its own
overlay (OL) error relative to the reference mask.

Per the paper's assumptions (Section II.A):

* masks B and C are aligned to mask A, so the reference mask A has no
  overlay error and the overlay errors of B and C are independent;
* the CD error of a mask widens (or narrows) *every* line on that mask
  symmetrically about its drawn centre;
* the overlay error of a mask rigidly shifts *every* line on that mask
  perpendicular to the wires (this is the "vertical" overlay of Table I,
  since the wires run horizontally).

Parameter names produced by :meth:`LithoEtch.parameter_specs`:

* ``"cd:<mask>"`` — CD error of the mask, in nm (full width change);
* ``"ol:<mask>"`` — overlay error of the mask, in nm (signed shift), only
  for non-reference masks (or for every mask after the first when the
  chained-alignment ablation is enabled).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..layout.wire import Track, TrackPattern
from ..technology.corners import GaussianSpec, LithoEtchAssumptions, VariationAssumptions
from .base import (
    BatchPrintedGeometry,
    ParameterValues,
    PatternedResult,
    PatterningError,
    PatterningOption,
)
from .decomposition import (
    apply_assignment,
    cyclic_assignment,
    graph_coloring_assignment,
    mask_labels,
)


class LithoEtch(PatterningOption):
    """A ``k``-exposure litho-etch patterning option.

    Parameters
    ----------
    n_masks:
        Number of exposures (2 → LELE, 3 → LELELE / LE3).
    use_graph_coloring:
        When true the decomposition colours the conflict graph instead of
        using the cyclic assignment; requires ``same_mask_min_space_nm``.
    same_mask_min_space_nm:
        Single-exposure spacing limit used by the graph colouring.
    """

    def __init__(
        self,
        n_masks: int = 3,
        use_graph_coloring: bool = False,
        same_mask_min_space_nm: Optional[float] = None,
    ) -> None:
        if n_masks < 1:
            raise PatterningError("a litho-etch option needs at least one mask")
        self.n_masks = n_masks
        self.use_graph_coloring = use_graph_coloring
        self.same_mask_min_space_nm = same_mask_min_space_nm
        self.masks = mask_labels(n_masks)
        self.name = "LE" * n_masks if n_masks <= 3 else f"LE{n_masks}"
        if n_masks == 3:
            self.name = "LELELE"
        elif n_masks == 2:
            self.name = "LELE"
        elif n_masks == 1:
            self.name = "LE"

    # -- decomposition --------------------------------------------------------

    def decompose(self, pattern: TrackPattern) -> TrackPattern:
        if self.use_graph_coloring:
            if self.same_mask_min_space_nm is None:
                raise PatterningError(
                    f"{self.name}: graph colouring requires same_mask_min_space_nm"
                )
            assignment = graph_coloring_assignment(
                pattern, self.n_masks, self.same_mask_min_space_nm
            )
        else:
            assignment = cyclic_assignment(pattern, self.n_masks)
        return apply_assignment(pattern, assignment)

    # -- parameters -----------------------------------------------------------

    def parameter_specs(
        self, assumptions: VariationAssumptions
    ) -> Dict[str, GaussianSpec]:
        litho: LithoEtchAssumptions = assumptions.litho_etch
        specs: Dict[str, GaussianSpec] = {}
        for mask in self.masks:
            specs[f"cd:{mask}"] = litho.cd
        non_reference = self.masks[1:]
        for mask in non_reference:
            specs[f"ol:{mask}"] = litho.overlay
        return specs

    def _overlay_shift(self, mask: str, values: Dict[str, float], aligned_to_first: bool) -> float:
        """Net overlay shift of a mask.

        With the paper's alignment strategy (B, C aligned to A) the shift of
        a mask is simply its own overlay parameter.  With chained alignment
        (ablation) the shifts accumulate along the exposure order.
        """
        if mask == self.masks[0]:
            return 0.0
        if aligned_to_first:
            return values.get(f"ol:{mask}", 0.0)
        total = 0.0
        for candidate in self.masks[1:]:
            total += values.get(f"ol:{candidate}", 0.0)
            if candidate == mask:
                break
        return total

    # -- printing -------------------------------------------------------------

    def apply(
        self,
        pattern: TrackPattern,
        parameters: ParameterValues,
        aligned_to_first: bool = True,
    ) -> PatternedResult:
        decomposed = self.decompose(pattern)
        known = [f"cd:{mask}" for mask in self.masks] + [
            f"ol:{mask}" for mask in self.masks[1:]
        ]
        values = self._check_parameters(parameters, known)

        printed_tracks: List[Track] = []
        for track in decomposed:
            mask = track.mask
            if mask is None:  # pragma: no cover - decompose always assigns
                raise PatterningError(f"track {track.net!r} has no mask after decompose")
            cd_delta = values.get(f"cd:{mask}", 0.0)
            overlay = self._overlay_shift(mask, values, aligned_to_first)
            printed = track.widened(cd_delta).shifted(overlay)
            printed_tracks.append(printed)

        printed_pattern = decomposed.with_tracks(printed_tracks)
        return PatternedResult(
            option_name=self.name,
            nominal=pattern,
            printed=printed_pattern,
            parameters=dict(values),
        )

    def apply_batch(
        self,
        pattern: TrackPattern,
        parameter_matrix: np.ndarray,
        parameter_names: Sequence[str],
        aligned_to_first: bool = True,
    ) -> BatchPrintedGeometry:
        """Vectorised printing: every line's edges are affine in (CD, OL)."""
        matrix = self._check_batch_matrix(parameter_matrix, parameter_names)
        known = [f"cd:{mask}" for mask in self.masks] + [
            f"ol:{mask}" for mask in self.masks[1:]
        ]
        columns = self._parameter_columns(parameter_names, known)
        n_samples = matrix.shape[0]

        def column_values(name: str) -> np.ndarray:
            index = columns.get(name)
            if index is None:
                return np.zeros(n_samples)
            return matrix[:, index]

        decomposed = self.decompose(pattern)
        shifts: Dict[str, np.ndarray] = {self.masks[0]: np.zeros(n_samples)}
        running = np.zeros(n_samples)
        for mask in self.masks[1:]:
            overlay = column_values(f"ol:{mask}")
            if aligned_to_first:
                shifts[mask] = overlay
            else:
                running = running + overlay
                shifts[mask] = running

        left = np.empty((n_samples, len(decomposed)))
        right = np.empty_like(left)
        for index, track in enumerate(decomposed):
            cd_delta = column_values(f"cd:{track.mask}")
            center = track.center_nm + shifts[track.mask]
            half_width = 0.5 * (track.width_nm + cd_delta)
            left[:, index] = center - half_width
            right[:, index] = center + half_width

        return self._printed_geometry(pattern, decomposed, left, right)


def le3(use_graph_coloring: bool = False, same_mask_min_space_nm: Optional[float] = None) -> LithoEtch:
    """The triple litho-etch (LELELE) option of the paper."""
    return LithoEtch(
        n_masks=3,
        use_graph_coloring=use_graph_coloring,
        same_mask_min_space_nm=same_mask_min_space_nm,
    )


def le2(use_graph_coloring: bool = False, same_mask_min_space_nm: Optional[float] = None) -> LithoEtch:
    """Double litho-etch (LELE), provided for completeness and ablations."""
    return LithoEtch(
        n_masks=2,
        use_graph_coloring=use_graph_coloring,
        same_mask_min_space_nm=same_mask_min_space_nm,
    )
