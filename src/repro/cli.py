"""Command-line interface.

Exposes the paper's experiments as sub-commands so the study can be run
without writing Python::

    python -m repro table1                      # worst-case dCbl/dRbl
    python -m repro fig4 --sizes 16 64          # simulated worst-case penalties
    python -m repro fig4 --workers 4            # ... on four cores
    python -m repro table4 --samples 500        # Monte-Carlo tdp sigma
    python -m repro verdict                     # the Section-IV recommendation
    python -m repro yield --budget 10 --ppm 100 # spec-compliance analysis
    python -m repro campaign --workers 4 --format json --store runs/paper
    python -m repro all --output report.txt     # every table, to a file

Global options select the overlay budget, the array sizes, the Monte-Carlo
sample count, the random seed and the worker count, so parameter studies
are one shell loop away.  The ``campaign`` sub-command exposes the batched
simulation engine directly: scenario axes (overlay sweep, stored value,
VSS strap interval, integration method) cross with the DOE, results can be
persisted to a resumable store, and the report comes out as text, JSON or
CSV.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .core.campaign import CAMPAIGN_METHODS, SimulationCampaign, scenario_grid
from .core.operations import OPERATION_NAMES
from .core.comparison import OptionComparison
from .core.study import MultiPatterningSRAMStudy
from .core.yield_analysis import ReadTimeYieldAnalysis
from .reporting.figures import figure2_ascii, figure3_csv, figure5_ascii
from .reporting.tables import (
    format_campaign_csv,
    format_campaign_text,
    format_csv,
    format_figure4,
    format_operation_sigma,
    format_operation_table,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from .technology.node import n10
from .variability.doe import StudyDOE

#: Sub-command names in the order they appear in ``--help`` and in ``all``.
EXPERIMENT_COMMANDS = (
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "table2",
    "table3",
    "fig5",
    "table4",
)


def _common_options() -> argparse.ArgumentParser:
    """Options shared by every sub-command (attached per sub-command so they
    can be given after the command name, the way users expect)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--overlay-nm",
        type=float,
        default=8.0,
        help="LE3 3-sigma overlay budget in nm (default: 8, the paper's worst case)",
    )
    common.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="array sizes (word lines) to simulate; default: the paper's 16 64 256 1024",
    )
    common.add_argument(
        "--samples",
        type=int,
        default=500,
        help="Monte-Carlo samples per study point (default: 500)",
    )
    common.add_argument("--seed", type=int, default=2015, help="random seed (default: 2015)")
    common.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the simulated experiments "
            "(fig4/table2/table3/campaign; default: 1)"
        ),
    )
    common.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Impact of Interconnect Multiple-Patterning "
            "Variability on SRAMs' (DATE 2015): regenerate any table or "
            "figure of the paper from the command line."
        ),
    )
    common = _common_options()
    subparsers = parser.add_subparsers(dest="command", required=True)
    descriptions = {
        "table1": "worst-case bit-line RC variability per patterning option",
        "fig2": "worst-case layout distortion per patterning option",
        "fig3": "the design-of-experiments arrays",
        "fig4": "simulated worst-case read-time penalty versus array size",
        "table2": "analytical formula versus simulation: nominal read time",
        "table3": "analytical formula versus simulation: worst-case penalty",
        "fig5": "Monte-Carlo tdp distributions",
        "table4": "Monte-Carlo tdp sigma per option and overlay budget",
    }
    for name in EXPERIMENT_COMMANDS:
        subparsers.add_parser(name, help=descriptions[name], parents=[common])

    subparsers.add_parser("all", help="run every table and figure", parents=[common])
    subparsers.add_parser(
        "verdict", help="recompute the Section-IV recommendation", parents=[common]
    )

    write_parser = subparsers.add_parser(
        "write",
        help="operation suite: worst-case write-delay impact per option and size",
        parents=[common],
    )
    write_parser.add_argument(
        "--mc-sigma",
        action="store_true",
        help="also report the Monte-Carlo sigma of the write-delay impact",
    )
    margins_parser = subparsers.add_parser(
        "margins",
        help="operation suite: hold/read static noise margins under patterning",
        parents=[common],
    )
    margins_parser.add_argument(
        "--mc-sigma",
        action="store_true",
        help="also report the Monte-Carlo sigma of the SNM impact",
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="batched multi-scenario simulation campaign (the fig4/table2/table3 engine)",
        parents=[common],
    )
    campaign_parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="report format (default: text)",
    )
    campaign_parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="persist records to DIR and resume by skipping completed items",
    )
    campaign_parser.add_argument(
        "--overlay-sweep",
        type=float,
        nargs="+",
        default=None,
        metavar="NM",
        help="scenario axis: LE overlay budgets in nm (default: the node's budget)",
    )
    campaign_parser.add_argument(
        "--stored-values",
        type=int,
        nargs="+",
        choices=(0, 1),
        default=[0],
        metavar="BIT",
        help="scenario axis: stored cell values to simulate (default: 0)",
    )
    campaign_parser.add_argument(
        "--strap-intervals",
        type=int,
        nargs="+",
        default=[256],
        metavar="CELLS",
        help="scenario axis: VSS strap intervals in cells (default: 256)",
    )
    campaign_parser.add_argument(
        "--methods",
        nargs="+",
        choices=CAMPAIGN_METHODS,
        default=["backward-euler"],
        metavar="METHOD",
        help="scenario axis: transient integration methods (default: backward-euler)",
    )
    campaign_parser.add_argument(
        "--operations",
        nargs="+",
        choices=OPERATION_NAMES,
        default=["read"],
        metavar="OP",
        help="scenario axis: SRAM operations to measure (default: read)",
    )

    yield_parser = subparsers.add_parser(
        "yield", help="read-time spec-compliance (yield) analysis", parents=[common]
    )
    yield_parser.add_argument(
        "--budget",
        type=float,
        default=10.0,
        help="allowed read-time penalty in percent (default: 10)",
    )
    yield_parser.add_argument(
        "--ppm",
        type=float,
        default=100.0,
        help="target violation rate in parts per million (default: 100)",
    )
    return parser


def _build_study(args: argparse.Namespace) -> MultiPatterningSRAMStudy:
    sizes = tuple(args.sizes) if args.sizes else (16, 64, 256, 1024)
    doe = StudyDOE(array_sizes=sizes)
    node = n10(overlay_three_sigma_nm=args.overlay_nm)
    return MultiPatterningSRAMStudy(
        node, doe=doe, monte_carlo_samples=args.samples, seed=args.seed
    )


def _run_experiment(
    study: MultiPatterningSRAMStudy, command: str, workers: int = 1
) -> str:
    if command == "table1":
        return format_table1(study.run_table1())
    if command == "fig2":
        return "\n\n".join(figure2_ascii(record) for record in study.run_figure2())
    if command == "fig3":
        from .layout.array import paper_doe_layouts

        layouts = paper_doe_layouts(node=study.node, sizes=study.doe.array_sizes)
        return figure3_csv([layout.summary() for layout in layouts.values()])
    if command == "fig4":
        return format_figure4(study.run_figure4(workers=workers))
    if command == "table2":
        return format_table2(study.run_table2(workers=workers))
    if command == "table3":
        return format_table3(study.run_table3(workers=workers))
    if command == "fig5":
        return "\n\n".join(figure5_ascii(record) for record in study.run_figure5())
    if command == "table4":
        return format_table4(study.run_table4())
    raise ValueError(f"unknown experiment {command!r}")


def _run_campaign(study: MultiPatterningSRAMStudy, args: argparse.Namespace) -> str:
    """Run the simulation campaign and format its report."""
    overlays = (
        [None]
        if args.overlay_sweep is None
        else [float(value) for value in args.overlay_sweep]
    )
    scenarios = scenario_grid(
        overlay_budgets_nm=overlays,
        stored_values=args.stored_values,
        strap_intervals=args.strap_intervals,
        methods=args.methods,
        operations=args.operations,
    )
    campaign = study.campaign(
        scenarios=scenarios,
        store_dir=Path(args.store) if args.store else None,
    )
    results = campaign.run(workers=args.workers)
    if args.format == "json":
        return json.dumps(campaign.report_dict(results), indent=2)
    if args.format == "csv":
        return format_campaign_csv(results)
    return format_campaign_text(results)


def _run_write(study: MultiPatterningSRAMStudy, args: argparse.Namespace) -> str:
    """Worst-case write-delay table (plus optional Monte-Carlo sigma)."""
    sections = [
        format_operation_table(
            study.run_write(workers=args.workers),
            title="Operation suite (write): worst-case write-delay impact",
        )
    ]
    if getattr(args, "mc_sigma", False):
        sections.append(
            format_operation_sigma(
                study.run_operation_sigma("write"),
                title="Operation suite (write): Monte-Carlo write-delay sigma",
            )
        )
    return "\n\n".join(sections)


def _run_margins(study: MultiPatterningSRAMStudy, args: argparse.Namespace) -> str:
    """Hold and read SNM tables (plus optional Monte-Carlo sigmas)."""
    rows_by_operation = study.run_margins(workers=args.workers)
    titles = {
        "hold_snm": "Operation suite (hold_snm): worst-case hold-SNM impact",
        "read_snm": "Operation suite (read_snm): worst-case read-SNM impact",
    }
    sections = [
        format_operation_table(rows_by_operation[name], title=titles[name])
        for name in ("hold_snm", "read_snm")
    ]
    if getattr(args, "mc_sigma", False):
        for name in ("hold_snm", "read_snm"):
            sections.append(
                format_operation_sigma(
                    study.run_operation_sigma(name),
                    title=f"Operation suite ({name}): Monte-Carlo SNM sigma",
                )
            )
    return "\n\n".join(sections)


def _run_verdict(study: MultiPatterningSRAMStudy, workers: int = 1) -> str:
    figure4 = study.run_figure4(workers=workers)
    table4 = study.run_table4()
    verdict = OptionComparison(figure4, table4).verdict()
    lines = [
        f"Recommended multiple-patterning option: {verdict.recommended_option}",
        f"  worst-case leader     : {verdict.worst_case_leader}",
        f"  statistical leader    : {verdict.statistical_leader}",
    ]
    if verdict.sigma_ratio_le3_over_sadp is not None:
        lines.append(
            f"  sigma(LE3@8nm)/sigma(SADP): {verdict.sigma_ratio_le3_over_sadp:.2f}"
        )
    for note in verdict.notes:
        lines.append(f"  - {note}")
    return "\n".join(lines)


def _run_yield(study: MultiPatterningSRAMStudy, budget_percent: float, target_ppm: float) -> str:
    analysis = ReadTimeYieldAnalysis(study.monte_carlo)
    rows = analysis.compliance_table(budget_percent=budget_percent)
    body = [
        [
            row.label,
            f"{row.violation.probability:.3e}",
            f"{row.violation.parts_per_million:.1f}",
            f"{row.column_yield:.6f}",
            f"{row.array_yield:.6f}",
        ]
        for row in rows
    ]
    table = format_csv(
        ["option", "violation_probability", "ppm", "column_yield", "array_yield"], body
    )
    requirement = analysis.required_overlay_for_target(
        budget_percent=budget_percent, target_ppm=target_ppm
    )
    if requirement.achievable:
        closing = (
            f"LE3 meets the {target_ppm:g} ppm target at a 3-sigma overlay budget of "
            f"{requirement.required_overlay_nm:g} nm or tighter."
        )
    else:
        closing = (
            f"LE3 cannot meet the {target_ppm:g} ppm target within the studied overlay "
            "budgets."
        )
    return (
        f"Read-time budget: +{budget_percent:g}% over nominal\n"
        + table
        + "\n"
        + closing
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    study = _build_study(args)

    sections: List[str] = []
    if args.command == "all":
        for command in EXPERIMENT_COMMANDS:
            sections.append(_run_experiment(study, command, workers=args.workers))
        sections.append(_run_verdict(study, workers=args.workers))
    elif args.command == "verdict":
        sections.append(_run_verdict(study, workers=args.workers))
    elif args.command == "yield":
        sections.append(_run_yield(study, args.budget, args.ppm))
    elif args.command == "campaign":
        sections.append(_run_campaign(study, args))
    elif args.command == "write":
        sections.append(_run_write(study, args))
    elif args.command == "margins":
        sections.append(_run_margins(study, args))
    else:
        sections.append(_run_experiment(study, args.command, workers=args.workers))

    report = "\n\n".join(sections) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
