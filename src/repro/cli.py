"""Command-line interface.

The CLI is a thin shell over the declarative API (:mod:`repro.api`): an
experiment is described by a serialisable
:class:`~repro.core.spec.ExperimentSpec`, and ``repro run`` executes any
spec document directly::

    python -m repro run spec.json --format json    # run a stored spec
    python -m repro spec dump --kind campaign      # print the equivalent spec
    python -m repro spec validate spec.json        # check a spec document

The classic sub-commands are kept as shims that build the equivalent spec
under the hood (``campaign``, ``write``, ``margins``, ``yield``,
``table1``, ``table4``), and the paper's figure/table renderings drive the
study front door directly::

    python -m repro table1                      # worst-case dCbl/dRbl
    python -m repro fig4 --sizes 16 64          # simulated worst-case penalties
    python -m repro fig4 --workers 4            # ... on four cores
    python -m repro table4 --samples 500        # Monte-Carlo tdp sigma
    python -m repro verdict                     # the Section-IV recommendation
    python -m repro yield --budget 10 --ppm 100 # spec-compliance analysis
    python -m repro campaign --workers 4 --format json --store runs/paper
    python -m repro all --output report.txt     # every table, to a file

The service verbs run the library as a long-lived, cache-accelerated
experiment server (see :mod:`repro.service`)::

    python -m repro serve --port 8765 --cache-dir runs/cache --workers 2
    python -m repro submit spec.json --wait --format csv --output rows.csv

Global options select the overlay budget, the array sizes, the Monte-Carlo
sample count, the random seed and the worker count, so parameter studies
are one shell loop away.  Exit codes: 0 on success, 2 on domain errors
(bad specs, unknown operations, mismatched stores — a one-line message,
never a traceback), 3 when a ``run`` completes *partially* (a ``skip`` or
``retry`` failure policy isolated per-item failures into error rows).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import __version__
from .api import load_spec, run as run_experiment
from .core.results import atomic_write_text
from .core.campaign import CAMPAIGN_METHODS, CampaignError
from .core.comparison import ComparisonError, OptionComparison
from .core.montecarlo import MonteCarloStudyError
from .core.operations import OPERATION_NAMES, OperationError
from .core.failures import FAILURE_POLICIES
from .core.spec import (
    EXPERIMENT_KINDS,
    HIGH_SIGMA_MODELS,
    ArraySpec,
    ExecutionSpec,
    ExperimentSpec,
    HighSigmaSpec,
    OperationSpec,
    ScenarioSpec,
    SpecError,
    TechnologySpec,
    scenario_spec_grid,
)
from .core.study import MultiPatterningSRAMStudy, StudyError
from .core.worst_case import WorstCaseStudyError
from .core.yield_analysis import YieldAnalysisError
from .highsigma import HighSigmaError
from .reporting.figures import figure2_ascii, figure3_csv, figure5_ascii
from .service.client import ServiceError
from .reporting.tables import (
    ReportingError,
    format_figure4,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from .technology.node import NodeError, n10
from .variability.doe import DOEError, StudyDOE

#: Sub-command names in the order they appear in ``--help`` and in ``all``.
EXPERIMENT_COMMANDS = (
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "table2",
    "table3",
    "fig5",
    "table4",
)

#: Domain errors that exit with code 2 and a one-line message.
CLI_ERRORS = (
    SpecError,
    StudyError,
    CampaignError,
    OperationError,
    MonteCarloStudyError,
    WorstCaseStudyError,
    YieldAnalysisError,
    ComparisonError,
    ReportingError,
    DOEError,
    NodeError,
    ServiceError,
    HighSigmaError,
)

#: Default array sizes when ``--sizes`` is not given (the paper's DOE).
DEFAULT_SIZES = (16, 64, 256, 1024)


def _common_options() -> argparse.ArgumentParser:
    """Options shared by every sub-command (attached per sub-command so they
    can be given after the command name, the way users expect)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--overlay-nm",
        type=float,
        default=8.0,
        help="LE3 3-sigma overlay budget in nm (default: 8, the paper's worst case)",
    )
    common.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="array sizes (word lines) to simulate; default: the paper's 16 64 256 1024",
    )
    common.add_argument(
        "--samples",
        type=int,
        default=500,
        help="Monte-Carlo samples per study point (default: 500)",
    )
    common.add_argument("--seed", type=int, default=2015, help="random seed (default: 2015)")
    common.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the simulated experiments "
            "(fig4/table2/table3/campaign; default: 1)"
        ),
    )
    common.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    return common


def _campaign_axis_options() -> argparse.ArgumentParser:
    """The campaign's scenario-axis options (shared with ``spec dump``)."""
    axes = argparse.ArgumentParser(add_help=False)
    axes.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="persist records to DIR and resume by skipping completed items",
    )
    axes.add_argument(
        "--overlay-sweep",
        type=float,
        nargs="+",
        default=None,
        metavar="NM",
        help="scenario axis: LE overlay budgets in nm (default: the node's budget)",
    )
    axes.add_argument(
        "--stored-values",
        type=int,
        nargs="+",
        choices=(0, 1),
        default=[0],
        metavar="BIT",
        help="scenario axis: stored cell values to simulate (default: 0)",
    )
    axes.add_argument(
        "--strap-intervals",
        type=int,
        nargs="+",
        default=[256],
        metavar="CELLS",
        help="scenario axis: VSS strap intervals in cells (default: 256)",
    )
    axes.add_argument(
        "--methods",
        nargs="+",
        choices=CAMPAIGN_METHODS,
        default=["backward-euler"],
        metavar="METHOD",
        help="scenario axis: transient integration methods (default: backward-euler)",
    )
    axes.add_argument(
        "--operations",
        nargs="+",
        choices=OPERATION_NAMES,
        default=["read"],
        metavar="OP",
        help="scenario axis: SRAM operations to measure (default: read)",
    )
    return axes


def _high_sigma_options() -> argparse.ArgumentParser:
    """The ``yield-hs`` options (shared with ``spec dump --kind yield_hs``)."""
    hs = argparse.ArgumentParser(add_help=False)
    hs.add_argument(
        "--hs-operation",
        choices=OPERATION_NAMES,
        default="read",
        help="operation whose tail is estimated (default: read)",
    )
    hs.add_argument(
        "--hs-model",
        choices=HIGH_SIGMA_MODELS,
        default="analytical",
        help="metric model: analytical tdp formula, calibrated response "
        "surface, or real circuit solves (default: analytical)",
    )
    hs.add_argument(
        "--sigma-levels",
        type=float,
        nargs="+",
        default=None,
        metavar="SIGMA",
        help="tail levels to estimate in sigmas (default: 3 6)",
    )
    hs.add_argument(
        "--threshold-percent",
        type=float,
        default=None,
        metavar="PCT",
        help="explicit failure threshold in percent (default: derive from sigma levels)",
    )
    hs.add_argument(
        "--proposals",
        type=int,
        default=4000,
        metavar="N",
        help="importance-sampling proposal draws per corner and level (default: 4000)",
    )
    hs.add_argument(
        "--pilot-samples",
        type=int,
        default=512,
        metavar="N",
        help="pilot draws used to fit the target model per corner (default: 512)",
    )
    hs.add_argument(
        "--mc-samples",
        type=int,
        default=20000,
        metavar="N",
        help="brute-force Monte-Carlo draws for the low-sigma cross-check (default: 20000)",
    )
    hs.add_argument(
        "--max-calls",
        type=int,
        default=100000,
        metavar="N",
        help="hard budget of real simulator calls per corner (default: 100000)",
    )
    return hs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Impact of Interconnect Multiple-Patterning "
            "Variability on SRAMs' (DATE 2015): regenerate any table or "
            "figure of the paper from the command line, or run any "
            "declarative experiment spec."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    common = _common_options()
    axes = _campaign_axis_options()
    hs = _high_sigma_options()
    subparsers = parser.add_subparsers(dest="command", required=True)
    descriptions = {
        "table1": "worst-case bit-line RC variability per patterning option",
        "fig2": "worst-case layout distortion per patterning option",
        "fig3": "the design-of-experiments arrays",
        "fig4": "simulated worst-case read-time penalty versus array size",
        "table2": "analytical formula versus simulation: nominal read time",
        "table3": "analytical formula versus simulation: worst-case penalty",
        "fig5": "Monte-Carlo tdp distributions",
        "table4": "Monte-Carlo tdp sigma per option and overlay budget",
    }
    for name in EXPERIMENT_COMMANDS:
        subparsers.add_parser(name, help=descriptions[name], parents=[common])

    subparsers.add_parser("all", help="run every table and figure", parents=[common])
    subparsers.add_parser(
        "verdict", help="recompute the Section-IV recommendation", parents=[common]
    )

    run_parser = subparsers.add_parser(
        "run",
        help="run a declarative experiment spec (JSON) through repro.api",
    )
    run_parser.add_argument("spec", type=str, help="path to an ExperimentSpec JSON file")
    run_parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="report format (default: text)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="override the worker count the spec's executor backend resolves",
    )
    run_parser.add_argument(
        "--failure-policy",
        choices=FAILURE_POLICIES,
        default=None,
        metavar="POLICY",
        help=(
            "override the spec's per-item failure policy "
            f"({'|'.join(FAILURE_POLICIES)}); skip/retry isolate failing "
            "items into error rows and exit 3 on a partial result"
        ),
    )
    run_parser.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    run_parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "record a span trace (JSONL) of the run to FILE; inspect it "
            "with 'repro report FILE'"
        ),
    )
    run_parser.add_argument(
        "--profile",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "sample the run's call stacks (~101 Hz, pool workers "
            "included) into FILE as folded/collapsed flamegraph stacks; "
            "inspect with 'repro report --flame FILE'"
        ),
    )

    report_parser = subparsers.add_parser(
        "report",
        help="per-phase wall-time report of a traced run (see run/serve --trace)",
    )
    report_parser.add_argument(
        "path",
        type=str,
        help=(
            "a trace JSONL file, or a campaign store / directory "
            "containing trace.jsonl (with --flame: a folded-stacks "
            "file from run/serve --profile, or a directory containing "
            "profile.folded)"
        ),
    )
    report_parser.add_argument(
        "--flame",
        action="store_true",
        help=(
            "render a folded-stacks profile (phase totals, hottest "
            "frames and stacks) instead of a span-trace report"
        ),
    )
    report_parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many of the slowest item spans to list (default: 10)",
    )
    report_parser.add_argument(
        "--chrome-out",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "also export the trace as Chrome trace-event JSON for "
            "chrome://tracing or Perfetto"
        ),
    )
    report_parser.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )

    spec_parser = subparsers.add_parser(
        "spec", help="create or validate declarative experiment specs"
    )
    spec_sub = spec_parser.add_subparsers(dest="spec_command", required=True)
    dump_parser = spec_sub.add_parser(
        "dump",
        help="print the spec JSON equivalent to a classic sub-command invocation",
        parents=[common, axes, hs],
    )
    dump_parser.add_argument(
        "--kind",
        choices=EXPERIMENT_KINDS,
        default="campaign",
        help="experiment kind of the emitted spec (default: campaign)",
    )
    dump_parser.add_argument(
        "--mc-sigma",
        action="store_true",
        help="operations kind: include the Monte-Carlo sigma tables",
    )
    dump_parser.add_argument(
        "--budget", type=float, default=10.0, help="yield kind: tdp budget in percent"
    )
    dump_parser.add_argument(
        "--ppm", type=float, default=100.0, help="yield kind: target violation ppm"
    )
    validate_parser = spec_sub.add_parser(
        "validate", help="parse and validate a spec document"
    )
    validate_parser.add_argument("spec", type=str, help="path to a spec JSON file")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the HTTP experiment server (content-addressed result cache)",
    )
    serve_parser.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="TCP port (default: 8765; 0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory (default: no cache)",
    )
    serve_parser.add_argument(
        "--max-entries",
        type=int,
        default=256,
        metavar="N",
        help="LRU bound of the result cache (default: 256)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent experiment jobs (default: 2)",
    )
    serve_parser.add_argument(
        "--journal",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "durable job journal (JSONL WAL); defaults to "
            "<cache-dir>/journal.jsonl when --cache-dir is set"
        ),
    )
    serve_parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job deadline in seconds (default: none)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help=(
            "on Ctrl-C, wait up to S seconds for in-flight jobs before "
            "abandoning them to the journal (default: 10)"
        ),
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )
    serve_parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help="record a span trace (JSONL) of the server's lifetime to FILE",
    )
    serve_parser.add_argument(
        "--profile",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "sample the server's call stacks for its lifetime into FILE "
            "(folded stacks; see 'repro report --flame')"
        ),
    )

    top_parser = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a running experiment server",
    )
    top_parser.add_argument(
        "--url",
        type=str,
        default=None,
        metavar="URL",
        help="server base URL (default: http://127.0.0.1:8765)",
    )
    top_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between polls (default: 2)",
    )
    top_parser.add_argument(
        "--count",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: until Ctrl-C)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame with lifetime totals and exit",
    )

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit a spec document to a running experiment server",
    )
    submit_parser.add_argument("spec", type=str, help="path to an ExperimentSpec JSON file")
    submit_parser.add_argument(
        "--url",
        type=str,
        default=None,
        metavar="URL",
        help="server base URL (default: http://127.0.0.1:8765)",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print its result",
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="--wait deadline in seconds (default: 300)",
    )
    submit_parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="--wait report format (default: text)",
    )
    submit_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry connection-level failures N times with backoff (default: 2)",
    )
    submit_parser.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="write the --wait report to FILE (atomic) instead of stdout",
    )

    write_parser = subparsers.add_parser(
        "write",
        help="operation suite: worst-case write-delay impact per option and size",
        parents=[common],
    )
    write_parser.add_argument(
        "--mc-sigma",
        action="store_true",
        help="also report the Monte-Carlo sigma of the write-delay impact",
    )
    margins_parser = subparsers.add_parser(
        "margins",
        help="operation suite: hold/read static noise margins under patterning",
        parents=[common],
    )
    margins_parser.add_argument(
        "--mc-sigma",
        action="store_true",
        help="also report the Monte-Carlo sigma of the SNM impact",
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="batched multi-scenario simulation campaign (the fig4/table2/table3 engine)",
        parents=[common, axes],
    )
    campaign_parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="report format (default: text)",
    )

    yield_parser = subparsers.add_parser(
        "yield", help="read-time spec-compliance (yield) analysis", parents=[common]
    )
    yield_parser.add_argument(
        "--budget",
        type=float,
        default=10.0,
        help="allowed read-time penalty in percent (default: 10)",
    )
    yield_parser.add_argument(
        "--ppm",
        type=float,
        default=100.0,
        help="target violation rate in parts per million (default: 100)",
    )

    yield_hs_parser = subparsers.add_parser(
        "yield-hs",
        help="high-sigma tail yield via importance sampling and surrogate surfaces",
        parents=[common, hs],
    )
    yield_hs_parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="report format (default: text)",
    )
    return parser


# -- spec construction (the classic sub-commands are shims over this) --------------------


def _spec_from_args(
    kind: str,
    args: argparse.Namespace,
    operations: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """The :class:`ExperimentSpec` equivalent of a classic CLI invocation.

    ``operations`` overrides the operation list (the ``write`` and
    ``margins`` shims fix it; otherwise ``--operations`` applies).
    """
    sizes = tuple(args.sizes) if args.sizes else DEFAULT_SIZES
    workers = getattr(args, "workers", 1) or 1
    if operations is None:
        operations = tuple(getattr(args, "operations", None) or ("read",))
    operations = tuple(operations)
    overlay_sweep = getattr(args, "overlay_sweep", None)
    if kind in ("campaign", "operations"):
        # Scenario axes apply to the simulated kinds; an operations spec
        # crosses them with its operation list so the emitted document is
        # self-consistent (its scenarios measure exactly its operations).
        scenarios = scenario_spec_grid(
            overlay_budgets_nm=(
                [None]
                if overlay_sweep is None
                else [float(value) for value in overlay_sweep]
            ),
            stored_values=tuple(getattr(args, "stored_values", [0])),
            strap_intervals=tuple(getattr(args, "strap_intervals", [256])),
            methods=tuple(getattr(args, "methods", ["backward-euler"])),
            operations=operations,
        )
    else:
        # worst_case / monte_carlo / yield ignore scenarios entirely.
        scenarios = (ScenarioSpec(),)
    return ExperimentSpec(
        kind=kind,
        technology=TechnologySpec(overlay_three_sigma_nm=args.overlay_nm),
        array=ArraySpec(sizes=sizes),
        scenarios=scenarios,
        operation=OperationSpec(
            operations=operations,
            samples=args.samples,
            mc_sigma=bool(getattr(args, "mc_sigma", False)),
            budget_percent=float(getattr(args, "budget", 10.0)),
            target_ppm=float(getattr(args, "ppm", 100.0)),
        ),
        high_sigma=HighSigmaSpec(
            operation=getattr(args, "hs_operation", None) or "read",
            model=getattr(args, "hs_model", None) or "analytical",
            sigma_levels=tuple(
                float(level)
                for level in (getattr(args, "sigma_levels", None) or (3.0, 6.0))
            ),
            threshold_percent=getattr(args, "threshold_percent", None),
            proposals=int(getattr(args, "proposals", None) or 4000),
            pilot_samples=int(getattr(args, "pilot_samples", None) or 512),
            mc_samples=int(getattr(args, "mc_samples", None) or 20000),
            max_calls=int(getattr(args, "max_calls", None) or 100000),
        ),
        execution=ExecutionSpec(
            backend="process" if workers > 1 else "serial",
            workers=workers,
            seed=args.seed,
            store_dir=getattr(args, "store", None),
        ),
    )


def _format_result(result, fmt: str) -> str:
    """Render a ResultSet in one of the CLI's report formats."""
    if fmt == "json":
        return result.to_json()
    if fmt == "csv":
        return result.to_csv()
    return result.to_text()


def _run_spec_command(
    kind: str,
    args: argparse.Namespace,
    fmt: str = "text",
    operations: Optional[Sequence[str]] = None,
) -> str:
    """Build the spec for a shimmed sub-command, run it, format the result."""
    result = run_experiment(_spec_from_args(kind, args, operations=operations))
    return _format_result(result, fmt)


# -- the paper's figure/table renderings (study front door) ------------------------------


def _build_study(args: argparse.Namespace) -> MultiPatterningSRAMStudy:
    sizes = tuple(args.sizes) if args.sizes else DEFAULT_SIZES
    doe = StudyDOE(array_sizes=sizes)
    node = n10(overlay_three_sigma_nm=args.overlay_nm)
    return MultiPatterningSRAMStudy(
        node, doe=doe, monte_carlo_samples=args.samples, seed=args.seed
    )


def _run_experiment(
    study: MultiPatterningSRAMStudy, command: str, workers: int = 1
) -> str:
    if command == "table1":
        return format_table1(study.run_table1())
    if command == "fig2":
        return "\n\n".join(figure2_ascii(record) for record in study.run_figure2())
    if command == "fig3":
        from .layout.array import paper_doe_layouts

        layouts = paper_doe_layouts(node=study.node, sizes=study.doe.array_sizes)
        return figure3_csv([layout.summary() for layout in layouts.values()])
    if command == "fig4":
        return format_figure4(study.run_figure4(workers=workers))
    if command == "table2":
        return format_table2(study.run_table2(workers=workers))
    if command == "table3":
        return format_table3(study.run_table3(workers=workers))
    if command == "fig5":
        return "\n\n".join(figure5_ascii(record) for record in study.run_figure5())
    if command == "table4":
        return format_table4(study.run_table4())
    raise ValueError(f"unknown experiment {command!r}")


def _run_verdict(study: MultiPatterningSRAMStudy, workers: int = 1) -> str:
    figure4 = study.run_figure4(workers=workers)
    table4 = study.run_table4()
    verdict = OptionComparison(figure4, table4).verdict()
    lines = [
        f"Recommended multiple-patterning option: {verdict.recommended_option}",
        f"  worst-case leader     : {verdict.worst_case_leader}",
        f"  statistical leader    : {verdict.statistical_leader}",
    ]
    if verdict.sigma_ratio_le3_over_sadp is not None:
        lines.append(
            f"  sigma(LE3@8nm)/sigma(SADP): {verdict.sigma_ratio_le3_over_sadp:.2f}"
        )
    for note in verdict.notes:
        lines.append(f"  - {note}")
    return "\n".join(lines)


# -- service verbs -----------------------------------------------------------------------


def _serve(args: argparse.Namespace) -> str:
    """Run the HTTP experiment server until interrupted."""
    import os

    from .obs.profile import disable_profiling, enable_profiling
    from .obs.trace import disable_tracing, enable_tracing
    from .service.server import ExperimentServer

    if args.trace:
        enable_tracing(args.trace)
    if args.profile:
        enable_profiling(args.profile)
    try:
        server = ExperimentServer(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            max_entries=args.max_entries,
            workers=args.workers,
            verbose=args.verbose,
            journal_path=args.journal,
            job_timeout_s=args.job_timeout,
        )
    except OSError as exc:
        # Port already bound, unwritable --cache-dir, ...: a one-line
        # exit-2 message, not a traceback.
        raise ServiceError(f"cannot start the experiment server: {exc}") from None
    cache_note = args.cache_dir if args.cache_dir else "disabled"
    journal_note = str(server.journal.path) if server.journal is not None else "disabled"
    print(
        f"repro serve: listening on {server.url} "
        f"(workers={args.workers}, cache={cache_note}, journal={journal_note})",
        file=sys.stderr,
        flush=True,
    )
    if server.recovered:
        print(
            f"repro serve: recovered {server.recovered} journaled job"
            f"{'s' if server.recovered != 1 else ''} from a previous run",
            file=sys.stderr,
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # Graceful drain: close the listener first (no new submissions),
        # then give in-flight jobs --drain-timeout seconds to settle.
        server.stop_serving()
        drained = server.drain(args.drain_timeout)
        server.shutdown()
        # Flush the span trace and profile (merging any pool-worker
        # files) before a possible hard exit below.
        disable_profiling()
        disable_tracing()
        if not drained:
            # Worker threads are non-daemon and cannot be interrupted
            # mid-experiment; exit hard instead of hanging until the
            # abandoned computation finishes.  With a journal, the
            # undrained jobs stay journaled and the next start replays
            # them; without one they are lost (as before).
            note = (
                "journaled for recovery on the next start"
                if server.journal is not None
                else "no journal, they are lost"
            )
            print(
                f"repro serve: drain timed out after {args.drain_timeout:g}s; "
                f"abandoning in-flight experiments ({note})",
                file=sys.stderr,
                flush=True,
            )
            sys.stdout.flush()
            os._exit(0)
    return "server stopped"


def _report(args: argparse.Namespace) -> str:
    """Render the per-phase report of a trace file (or store directory)."""
    import json as _json

    from .obs.trace import read_trace, to_chrome_trace
    from .reporting.tables import format_trace_summary

    if args.flame:
        return _flame_report(args)
    path = Path(args.path)
    if path.is_dir():
        candidate = path / "trace.jsonl"
        if not candidate.is_file():
            raise ReportingError(
                f"{path} contains no trace.jsonl; pass the trace file "
                "recorded with run/serve --trace"
            )
        path = candidate
    if not path.is_file():
        raise ReportingError(f"no trace file at {path}")
    records = read_trace(path)
    if not records:
        raise ReportingError(f"{path} contains no span records")
    if args.chrome_out:
        atomic_write_text(
            args.chrome_out, _json.dumps(to_chrome_trace(records)) + "\n"
        )
    return format_trace_summary(records, top_n=args.top)


def _flame_report(args: argparse.Namespace) -> str:
    """Render a folded-stacks profile (``repro report --flame``)."""
    from .obs.profile import read_folded
    from .reporting.tables import format_flame_summary

    path = Path(args.path)
    if path.is_dir():
        candidate = path / "profile.folded"
        if not candidate.is_file():
            raise ReportingError(
                f"{path} contains no profile.folded; pass the folded "
                "stacks recorded with run/serve --profile"
            )
        path = candidate
    if not path.is_file():
        raise ReportingError(f"no profile file at {path}")
    samples = read_folded(path)
    if not samples:
        raise ReportingError(f"{path} contains no profile samples")
    return format_flame_summary(samples, top_n=args.top)


def _top(args: argparse.Namespace) -> str:
    """Run the live dashboard until interrupted (or --count frames)."""
    from .obs.dashboard import DashboardError, run_top
    from .service.client import DEFAULT_URL

    try:
        frames = run_top(
            args.url or DEFAULT_URL,
            interval_s=args.interval,
            count=args.count,
            once=args.once,
        )
    except DashboardError as exc:
        raise ServiceError(
            f"{exc} — is 'repro serve' running?"
        ) from None
    return f"repro top: {frames} frame{'s' if frames != 1 else ''} rendered"


def _submit(args: argparse.Namespace) -> str:
    """Submit a spec to a running server; optionally wait for the result."""
    from .service.client import DEFAULT_URL, ExperimentClient

    spec = load_spec(Path(args.spec))
    client = ExperimentClient(args.url or DEFAULT_URL, max_retries=args.retries)
    ticket = client.submit(spec)
    if not args.wait:
        import json as _json

        return _json.dumps(ticket, indent=2)
    client.wait(ticket["id"], timeout_s=args.timeout)
    return client.result_text(ticket["id"], fmt=args.format)


# -- dispatch ----------------------------------------------------------------------------


def _dispatch(args: argparse.Namespace) -> str:
    """Produce the report text for one parsed invocation."""
    if args.command == "run":
        from .obs.profile import disable_profiling, enable_profiling
        from .obs.trace import disable_tracing, enable_tracing

        if args.trace:
            enable_tracing(args.trace)
        if args.profile:
            enable_profiling(args.profile)
        try:
            result = run_experiment(
                load_spec(Path(args.spec)),
                workers=args.workers,
                failure_policy=args.failure_policy,
            )
        finally:
            if args.profile:
                disable_profiling()
            if args.trace:
                disable_tracing()
        if result.failures:
            # Partial result: isolated per-item failures became error
            # rows.  The report still renders; main() exits 3.
            args._partial = True
        return _format_result(result, args.format)
    if args.command == "report":
        return _report(args)
    if args.command == "top":
        return _top(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "spec":
        if args.spec_command == "dump":
            return _spec_from_args(args.kind, args).to_json().rstrip("\n")
        spec = load_spec(Path(args.spec))
        return f"OK: {spec.describe()}"
    if args.command == "campaign":
        return _run_spec_command("campaign", args, fmt=args.format)
    if args.command == "write":
        return _run_spec_command("operations", args, operations=("write",))
    if args.command == "margins":
        return _run_spec_command(
            "operations", args, operations=("hold_snm", "read_snm")
        )
    if args.command == "yield":
        return _run_spec_command("yield", args)
    if args.command == "yield-hs":
        return _run_spec_command("yield_hs", args, fmt=args.format)
    if args.command == "table1":
        return _run_spec_command("worst_case", args)
    if args.command == "table4":
        return _run_spec_command("monte_carlo", args)

    study = _build_study(args)
    sections: List[str] = []
    if args.command == "all":
        for command in EXPERIMENT_COMMANDS:
            sections.append(_run_experiment(study, command, workers=args.workers))
        sections.append(_run_verdict(study, workers=args.workers))
    elif args.command == "verdict":
        sections.append(_run_verdict(study, workers=args.workers))
    else:
        sections.append(_run_experiment(study, args.command, workers=args.workers))
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 on success; 2 on domain errors (bad specs, missing or
    unreadable spec files, an unreachable experiment server, an
    unwritable ``--output`` path — a one-line message, never a
    traceback); 3 when ``run`` produced a *partial* result (a ``skip``
    or ``retry`` failure policy turned per-item failures into error
    rows — the report is complete and valid, but some items failed).
    ``--output`` files are written atomically, so a crashed or
    interrupted run never leaves a half-written report behind.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        report = _dispatch(args) + "\n"
    except CLI_ERRORS as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    output = getattr(args, "output", None)
    if output:
        try:
            atomic_write_text(output, report)
        except OSError as exc:
            print(f"repro: error: cannot write {output}: {exc}", file=sys.stderr)
            return 2
    else:
        sys.stdout.write(report)
    return 3 if getattr(args, "_partial", False) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
