"""The declarative front door: ``run(spec) -> ResultSet``.

Every study in the library — the batched simulation campaign, the
worst-case corner search, the operation suite, the Monte-Carlo σ studies
and the yield analysis — is reachable through one call::

    from repro.api import run
    from repro.core.spec import ExperimentSpec

    result = run(ExperimentSpec(kind="campaign"))
    print(result.to_text())

:func:`run` accepts an :class:`~repro.core.spec.ExperimentSpec`, a
mapping, a JSON string or a path to a JSON file, dispatches on the spec's
``kind`` and returns a :class:`ResultSet` — one uniform record container
with ``rows()``, ``to_json()``, ``to_csv()`` and unit-aware table
rendering (``to_text()``) regardless of which engine produced the data.

Execution is pluggable through the spec's ``execution.backend``:
``serial`` runs in-process, ``process`` fans work out over the campaign's
chunked process pool, and ``auto`` sizes the pool to the CPUs the process
may run on.  Seeding is crc32-per-item in every backend, so the records
are bit-identical across all three (the parity suite pins the campaign
path at ``rtol <= 1e-12`` against the pre-spec engines).
"""

from __future__ import annotations

import csv
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Union,
)

from .circuit.mna import solver_stats
from .core.campaign import CampaignError, SimulationCampaign
from .core.failures import FAILURE_POLICIES
from .core.montecarlo import MonteCarloTdpStudy
from .core.spec import (
    EXECUTION_BACKENDS,
    EXPERIMENT_KINDS,
    ExecutionSpec,
    ExperimentSpec,
    ScenarioSpec,
    SpecError,
    scenario_spec_grid,
)
from .core.worst_case import WorstCaseStudy
from .core.yield_analysis import ReadTimeYieldAnalysis
from .obs import convergence as obs_convergence
from .obs import metrics as obs_metrics
from .obs.trace import span

__all__ = [
    "EXECUTOR_BACKENDS",
    "ResultCacheProtocol",
    "ResultSet",
    "load_spec",
    "resolve_workers",
    "run",
]


@dataclass
class ResultSet:
    """Uniform result container of every declarative experiment.

    ``records`` is a list of flat, JSON-ready dictionaries — one per
    measurement — whatever engine produced them.  ``meta`` carries
    kind-specific headers (the campaign signature, the yield requirement).
    ``payload`` holds the engine's typed rows so the reporting layer can
    render unit-aware tables without re-deriving them; it is not part of
    the serialised form.

    A result may be *partial*: under the ``skip``/``retry`` failure
    policies, items that failed every attempt appear as error rows
    (``record == "failure"``, see
    :meth:`~repro.core.failures.ItemFailure.to_record`) among the
    records, and :attr:`failures` lists exactly those rows.  Because
    failure rows are ordinary records, partiality survives every
    serialisation round trip for free.
    """

    spec: ExperimentSpec
    records: List[Dict[str, Any]]
    meta: Dict[str, Any] = field(default_factory=dict)
    payload: Any = None

    @property
    def kind(self) -> str:
        return self.spec.kind

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def rows(self) -> List[Dict[str, Any]]:
        """The flat records, one dictionary per measurement."""
        return list(self.records)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """The typed error rows of a partial result (empty when complete)."""
        return [
            record for record in self.records if record.get("record") == "failure"
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready report: spec, kind metadata and every record."""
        payload: Dict[str, Any] = {
            "schema_version": self.spec.schema_version,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
        }
        payload.update(self.meta)
        payload["n_records"] = len(self.records)
        payload["n_failures"] = len(self.failures)
        payload["records"] = [dict(record) for record in self.records]
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    #: ``to_dict`` keys that are not kind-specific metadata.
    _RESERVED_KEYS = frozenset(
        {"schema_version", "kind", "spec", "n_records", "n_failures", "records"}
    )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultSet":
        """Rebuild a ResultSet from its :meth:`to_dict` form.

        The persistence round trip of the result cache and the HTTP
        client: records and metadata come back exactly as serialised
        (JSON preserves float bit patterns via ``repr`` round-tripping),
        the spec is revalidated through
        :class:`~repro.core.spec.ExperimentSpec`, and ``payload`` is
        ``None`` — deserialised results render through the generic
        record table instead of the typed per-study formatters.
        """
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"a serialised ResultSet must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        try:
            spec = ExperimentSpec.from_dict(payload["spec"])
            records = payload["records"]
        except KeyError as exc:
            raise SpecError(f"serialised ResultSet is missing {exc}") from None
        if not isinstance(records, list):
            raise SpecError("serialised ResultSet records must be a list")
        meta = {
            key: value
            for key, value in payload.items()
            if key not in cls._RESERVED_KEYS
        }
        return cls(spec=spec, records=[dict(r) for r in records], meta=meta)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"serialised ResultSet is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def to_csv(self) -> str:
        """The records as CSV.

        Campaign results keep the campaign engine's established column
        layout; every other kind uses the union of record keys in
        first-appearance order, with nested values JSON-encoded and cells
        quoted per RFC 4180 (stdlib ``csv``), so the output stays
        losslessly parseable.
        """
        from .reporting.tables import format_campaign_csv, record_headers

        # A partial campaign falls through to the generic layout: the
        # campaign CSV's fixed columns have no home for failure rows, and
        # silently dropping them would make a partial export look whole.
        if self.kind == "campaign" and self.payload is not None and not self.failures:
            return format_campaign_csv(self.payload)
        headers = record_headers(self.records)
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(headers)
        for record in self.records:
            cells = []
            for key in headers:
                value = record.get(key, "")
                if isinstance(value, (dict, list)):
                    value = json.dumps(value, sort_keys=True)
                cells.append("" if value is None else value)
            writer.writerow(cells)
        return buffer.getvalue().rstrip("\n")

    def to_text(self) -> str:
        """Unit-aware plain-text tables (via :mod:`repro.reporting.tables`)."""
        from .reporting.tables import format_result_set

        return format_result_set(self)


class ResultCacheProtocol(Protocol):
    """What :func:`run` needs from a result cache (see
    :class:`repro.service.cache.ResultCache` for the shipped one)."""

    def get(self, spec: ExperimentSpec) -> Optional[ResultSet]: ...

    def put(self, spec: ExperimentSpec, result: ResultSet) -> None: ...


# -- executor backends -----------------------------------------------------------------------


def _serial_workers(execution: ExecutionSpec) -> int:
    return 1


def _process_workers(execution: ExecutionSpec) -> int:
    return execution.workers


def _auto_workers(execution: ExecutionSpec) -> int:
    return SimulationCampaign.available_cpus()


#: Pluggable executor backends: name → worker-count resolver.  All three
#: drive the same chunked, crc32-seeded execution path, so the backend
#: changes wall-clock time, never results.
EXECUTOR_BACKENDS: Dict[str, Callable[[ExecutionSpec], int]] = {
    "serial": _serial_workers,
    "process": _process_workers,
    "auto": _auto_workers,
}

assert set(EXECUTOR_BACKENDS) == set(EXECUTION_BACKENDS)


def resolve_workers(execution: ExecutionSpec) -> int:
    """Worker-process count the spec's executor backend asks for."""
    try:
        backend = EXECUTOR_BACKENDS[execution.backend]
    except KeyError:
        raise SpecError(
            f"unknown execution backend {execution.backend!r}; "
            f"available: {sorted(EXECUTOR_BACKENDS)}"
        ) from None
    return max(1, int(backend(execution)))


# -- spec loading ----------------------------------------------------------------------------


SpecSource = Union[ExperimentSpec, Mapping[str, Any], str, os.PathLike]


def load_spec(source: SpecSource) -> ExperimentSpec:
    """Coerce any spec source into a validated :class:`ExperimentSpec`.

    Accepts an already-built spec (returned as is), a mapping, a JSON
    string, or a filesystem path to a JSON document (anything ending in
    ``.json`` or naming an existing file is treated as a path).
    """
    if isinstance(source, ExperimentSpec):
        return source
    if isinstance(source, Mapping):
        return ExperimentSpec.from_dict(source)
    if isinstance(source, os.PathLike) or (
        isinstance(source, str)
        and (source.endswith(".json") or os.path.exists(source))
    ):
        path = Path(source)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read spec file {path}: {exc}") from None
        return ExperimentSpec.from_json(text)
    if isinstance(source, str):
        return ExperimentSpec.from_json(source)
    raise SpecError(f"cannot load a spec from {type(source).__name__}")


# -- kind runners ----------------------------------------------------------------------------


def _run_campaign(spec: ExperimentSpec, workers: int) -> ResultSet:
    campaign = SimulationCampaign.from_spec(spec)
    results = campaign.run(workers=workers)
    records = []
    for record in results:
        row = record.to_dict()
        try:
            row["impact_percent"] = results.penalty_percent_for(record)
        except CampaignError:
            # The corner survived but its nominal twin failed: the record
            # stands on its own, the relative impact is uncomputable.
            row["impact_percent"] = None
        records.append(row)
    records.extend(failure.to_record() for failure in results.failures)
    meta: Dict[str, Any] = {"campaign": campaign.signature()}
    meta["solver"] = campaign.solver
    if campaign.last_run_stats:
        meta["solver_stats"] = dict(campaign.last_run_stats)
    return ResultSet(
        spec=spec,
        records=records,
        meta=meta,
        payload=results,
    )


def _run_worst_case(spec: ExperimentSpec, workers: int) -> ResultSet:
    study = WorstCaseStudy.from_spec(spec)
    rows = study.table1()
    return ResultSet(
        spec=spec,
        records=[row.to_record() for row in rows],
        payload=rows,
    )


def _operations_scenarios(spec: ExperimentSpec):
    """The scenario list an ``operations`` experiment simulates.

    With the default (untouched) scenario section, one scenario per
    requested operation is derived so all operations share a single
    campaign's layouts, extractions and printed corners.  An explicit
    scenario section is honoured as written — its operations must then
    match ``operation.operations``, so a spec can never silently measure
    something other than what either section says.
    """
    if spec.scenarios == (ScenarioSpec(),):
        return spec.with_scenarios(
            scenario_spec_grid(operations=spec.operation.operations)
        )
    scenario_operations = sorted({s.operation for s in spec.scenarios})
    requested = sorted(set(spec.operation.operations))
    if scenario_operations != requested:
        raise SpecError(
            "an operations spec with explicit scenarios must cover exactly "
            f"operation.operations: scenarios measure {scenario_operations}, "
            f"operations request {requested}"
        )
    return spec


def _run_operations(spec: ExperimentSpec, workers: int) -> ResultSet:
    campaign = SimulationCampaign.from_spec(_operations_scenarios(spec))
    results = campaign.run(workers=workers)
    impact = {
        scenario.label: campaign.operation_rows(results, scenario)
        for scenario in campaign.scenarios
    }
    sigma = {}
    if spec.operation.mc_sigma:
        mc = MonteCarloTdpStudy.from_spec(spec)
        sigma = {
            name: mc.sigma_rows(
                name, n_wordlines=spec.operation.n_wordlines, workers=workers
            )
            for name in spec.operation.operations
        }
    records: List[Dict[str, Any]] = []
    for rows in impact.values():
        for row in rows:
            records.extend(row.to_records())
    for rows in sigma.values():
        records.extend(row.to_record() for row in rows)
    records.extend(failure.to_record() for failure in results.failures)
    return ResultSet(
        spec=spec,
        records=records,
        payload={"impact": impact, "sigma": sigma},
    )


def _run_monte_carlo(spec: ExperimentSpec, workers: int) -> ResultSet:
    mc = MonteCarloTdpStudy.from_spec(spec)
    sections = {
        name: mc.sigma_rows(
            name, n_wordlines=spec.operation.n_wordlines, workers=workers
        )
        for name in spec.operation.operations
    }
    records = [row.to_record() for rows in sections.values() for row in rows]
    return ResultSet(spec=spec, records=records, payload=sections)


def _run_yield(spec: ExperimentSpec, workers: int) -> ResultSet:
    analysis = ReadTimeYieldAnalysis(MonteCarloTdpStudy.from_spec(spec))
    rows = analysis.compliance_table(
        budget_percent=spec.operation.budget_percent,
        n_wordlines=spec.operation.n_wordlines,
        workers=workers,
    )
    requirement = analysis.required_overlay_for_target(
        budget_percent=spec.operation.budget_percent,
        target_ppm=spec.operation.target_ppm,
        n_wordlines=spec.operation.n_wordlines,
    )
    return ResultSet(
        spec=spec,
        records=[row.to_record() for row in rows],
        meta={"requirement": requirement.to_dict()},
        payload=(rows, requirement),
    )


def _run_yield_hs(spec: ExperimentSpec, workers: int) -> ResultSet:
    from .highsigma import HighSigmaYieldStudy

    study = HighSigmaYieldStudy.from_spec(spec)
    rows = study.rows()
    meta = {
        "high_sigma": {
            "operation": study.operation_name,
            "model": study.model,
            "fail_direction": study.fail_direction,
            "sigma_levels": list(study.sigma_levels),
            "total_simulator_calls": study.total_simulator_calls,
            "total_promoted": sum(row.n_promoted for row in rows),
            "total_proposals": sum(row.n_proposals for row in rows),
        }
    }
    return ResultSet(
        spec=spec,
        records=[row.to_record() for row in rows],
        meta=meta,
        payload=rows,
    )


_RUNNERS: Dict[str, Callable[[ExperimentSpec, int], ResultSet]] = {
    "campaign": _run_campaign,
    "worst_case": _run_worst_case,
    "operations": _run_operations,
    "monte_carlo": _run_monte_carlo,
    "yield": _run_yield,
    "yield_hs": _run_yield_hs,
}

assert set(_RUNNERS) == set(EXPERIMENT_KINDS)


def run(
    spec: SpecSource,
    workers: Optional[int] = None,
    cache: Optional["ResultCacheProtocol"] = None,
    failure_policy: Optional[str] = None,
) -> ResultSet:
    """Run the experiment a spec describes and return its :class:`ResultSet`.

    Parameters
    ----------
    spec:
        Anything :func:`load_spec` accepts: an
        :class:`~repro.core.spec.ExperimentSpec`, a mapping, a JSON
        string or a path to a spec file.
    workers:
        Optional override of the worker count the spec's executor backend
        would resolve (the CLI's ``--workers`` hook).  The records do not
        depend on it.
    cache:
        Optional :class:`~repro.service.cache.ResultCache`.  When given,
        a result stored under the spec's content fingerprint is returned
        without recomputation, and fresh results are stored on the way
        out — every kind (campaign, worst-case, operations, Monte-Carlo,
        yield) dedupes transparently.  Cached results carry the records
        byte-for-byte but no typed ``payload``.  A *partial* result (one
        with failure rows) is never cached: the fingerprint is neutral to
        the failure knobs, so caching it would serve the partial result
        to callers who would have computed a complete one.
    failure_policy:
        Optional override of ``execution.failure_policy`` (the CLI's
        ``--failure-policy`` hook).  Fingerprint-neutral, like
        ``workers``.
    """
    chosen = load_spec(spec)
    if failure_policy is not None:
        if failure_policy not in FAILURE_POLICIES:
            raise SpecError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        chosen = chosen.with_execution(
            ExecutionSpec.from_dict(
                {**chosen.execution.to_dict(), "failure_policy": failure_policy}
            )
        )
    if cache is not None:
        hit = cache.get(chosen)
        if hit is not None:
            obs_metrics.registry().inc(
                "repro_runs_total", kind=chosen.kind, source="cache"
            )
            return hit
    effective = workers if workers is not None else resolve_workers(chosen.execution)
    stats_before = solver_stats().as_dict()
    with span("api.run", kind=chosen.kind, workers=max(1, int(effective))):
        result = _RUNNERS[chosen.kind](chosen, max(1, int(effective)))
    solver_delta = {
        key: value - stats_before.get(key, 0)
        for key, value in solver_stats().as_dict().items()
    }
    obs_metrics.record_solver_delta(solver_delta)
    obs_convergence.record_lane_stats(solver_delta)
    obs_metrics.registry().inc(
        "repro_runs_total", kind=chosen.kind, source="computed"
    )
    if cache is not None and not result.failures:
        cache.put(chosen, result)
    return result
