"""Reporting: paper-style table formatters and figure data exporters."""

from .figures import (
    ascii_bar_chart,
    figure2_ascii,
    figure2_csv,
    figure3_csv,
    figure4_ascii,
    figure4_csv,
    figure5_ascii,
    figure5_csv,
    overlay_sweep_csv,
)
from .tables import (
    ReportingError,
    format_csv,
    format_figure4,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    render_table,
)

__all__ = [
    "ReportingError",
    "ascii_bar_chart",
    "figure2_ascii",
    "figure2_csv",
    "figure3_csv",
    "figure4_ascii",
    "figure4_csv",
    "figure5_ascii",
    "figure5_csv",
    "format_csv",
    "format_figure4",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "overlay_sweep_csv",
    "render_table",
]
