"""Figure-data export: ASCII renderings and CSV series.

The benches regenerate the paper's figures as *data* (series / histograms)
rather than images, so results stay inspectable without a plotting
dependency.  Each figure has an ASCII renderer (quick visual check in a
terminal or log) and a CSV exporter (for external plotting).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.results import (
    LayoutDistortionRecord,
    MonteCarloTdpRecord,
    WorstCaseTdRow,
)
from .tables import ReportingError, format_csv


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """A horizontal ASCII bar chart (all values must share a sign-free scale)."""
    if len(labels) != len(values):
        raise ReportingError("labels and values must have the same length")
    if not values:
        raise ReportingError("nothing to chart")
    peak = max(abs(value) for value in values)
    lines = [title] if title else []
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar_length = 0 if peak == 0 else round(width * abs(value) / peak)
        bar = "#" * bar_length
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


# -- Fig. 2: layout distortion ----------------------------------------------------------------


def figure2_ascii(record: LayoutDistortionRecord, scale_nm_per_char: float = 2.0) -> str:
    """Render the printed-versus-drawn tracks of one option as ASCII strips."""
    if scale_nm_per_char <= 0.0:
        raise ReportingError("the scale must be positive")
    origin = min(track.drawn_left_nm for track in record.tracks)
    lines = [f"Fig. 2 ({record.option_name}) worst-case layout distortion"]
    for track in record.tracks:
        def strip(left: float, right: float) -> str:
            start = int(round((left - origin) / scale_nm_per_char))
            end = max(start + 1, int(round((right - origin) / scale_nm_per_char)))
            return " " * start + "#" * (end - start)

        mask = f"[{track.mask}]" if track.mask else ""
        lines.append(f"{track.net:>8} {mask:>8} drawn   |{strip(track.drawn_left_nm, track.drawn_right_nm)}")
        lines.append(f"{'':>8} {'':>8} printed |{strip(track.printed_left_nm, track.printed_right_nm)}")
    return "\n".join(lines)


def figure2_csv(records: Sequence[LayoutDistortionRecord]) -> str:
    rows = []
    for record in records:
        for track in record.tracks:
            rows.append(
                [
                    record.option_name,
                    track.net,
                    track.mask or "",
                    f"{track.drawn_left_nm:.3f}",
                    f"{track.drawn_right_nm:.3f}",
                    f"{track.printed_left_nm:.3f}",
                    f"{track.printed_right_nm:.3f}",
                    f"{track.width_change_nm:+.3f}",
                    f"{track.center_shift_nm:+.3f}",
                ]
            )
    return format_csv(
        [
            "option", "net", "mask",
            "drawn_left_nm", "drawn_right_nm",
            "printed_left_nm", "printed_right_nm",
            "width_change_nm", "center_shift_nm",
        ],
        rows,
    )


# -- Fig. 3: the DOE ---------------------------------------------------------------------------


def figure3_csv(array_summaries: Sequence[Dict[str, object]]) -> str:
    """Export the DOE array summaries (Fig. 3 is a schematic; data suffices)."""
    if not array_summaries:
        raise ReportingError("no arrays to export")
    headers = list(array_summaries[0].keys())
    rows = [[summary[key] for key in headers] for summary in array_summaries]
    return format_csv(headers, rows)


# -- Fig. 4: worst-case td impact ----------------------------------------------------------------


def figure4_csv(rows: Sequence[WorstCaseTdRow]) -> str:
    if not rows:
        raise ReportingError("no Fig. 4 rows to export")
    options = sorted(rows[0].tdp_percent_by_option)
    headers = ["array", "n_wordlines", "nominal_td_ps"] + [f"tdp_{name}_percent" for name in options]
    body = []
    for row in rows:
        body.append(
            [row.array_label, row.n_wordlines, f"{row.nominal_td_ps:.3f}"]
            + [f"{row.tdp_percent(name):.3f}" for name in options]
        )
    return format_csv(headers, body)


def figure4_ascii(rows: Sequence[WorstCaseTdRow]) -> str:
    """One bar chart per array size: worst-case tdp per option."""
    blocks = []
    for row in rows:
        options = sorted(row.tdp_percent_by_option)
        blocks.append(
            ascii_bar_chart(
                labels=options,
                values=[row.tdp_percent(name) for name in options],
                unit="%",
                title=f"{row.array_label}: nominal td = {row.nominal_td_ps:.2f} ps, worst-case tdp",
            )
        )
    return "\n\n".join(blocks)


# -- Fig. 5: Monte-Carlo tdp distribution ------------------------------------------------------------


def figure5_ascii(record: MonteCarloTdpRecord, width: int = 40) -> str:
    """ASCII histogram of one option's tdp distribution."""
    lines = [
        f"Fig. 5 ({record.label}, n={record.n_wordlines}): tdp distribution over "
        f"{record.n_samples} samples, sigma = {record.sigma_percent:.3f} % points"
    ]
    lines.extend(record.histogram.ascii_rows(width=width))
    return "\n".join(lines)


def figure5_csv(records: Sequence[MonteCarloTdpRecord]) -> str:
    rows = []
    for record in records:
        centers = record.histogram.bin_centers
        for center, count in zip(centers, record.histogram.counts):
            rows.append([record.label, f"{center:.4f}", count])
    return format_csv(["option", "tdp_percent_bin_center", "count"], rows)


def overlay_sweep_csv(pairs: Sequence[Tuple[float, float]], option_name: str = "LELELE") -> str:
    """σ(tdp) versus overlay budget (the ablation behind Table IV)."""
    rows = [[option_name, f"{overlay:.2f}", f"{sigma:.4f}"] for overlay, sigma in pairs]
    return format_csv(["option", "overlay_3sigma_nm", "tdp_sigma_percent"], rows)
