"""Paper-style table formatting.

Every table of the evaluation section has a formatter that takes the typed
result rows of :mod:`repro.core.results` and renders a plain-text table
with the same structure as the paper, so a bench or example run can be
compared against the original side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.campaign import CampaignResults
from ..core.results import (
    FormulaVsSimulationTdRow,
    FormulaVsSimulationTdpRow,
    OperationImpactRow,
    OperationSigmaRow,
    TdpSigmaRow,
    WorstCaseRCRow,
    WorstCaseTdRow,
    display_value,
    unit_scale,
)


class ReportingError(ValueError):
    """Raised when results cannot be formatted."""


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render a simple monospaced table with column alignment."""
    if not headers:
        raise ReportingError("a table needs at least one column")
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ReportingError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)


def format_table1(rows: Sequence[WorstCaseRCRow]) -> str:
    """Table I: worst-case variability per patterning option."""
    body = []
    for row in rows:
        corner = ", ".join(
            f"{name}={value:+.1f}" for name, value in sorted(row.corner_parameters.items())
            if value != 0.0
        )
        body.append(
            [
                row.option_name,
                corner if corner else "(nominal)",
                f"{row.delta_cbl_percent:+.2f}%",
                f"{row.delta_rbl_percent:+.2f}%",
                f"{row.delta_rvss_percent:+.2f}%",
            ]
        )
    return render_table(
        ["Pat. option", "Worst corner (nm)", "Cbl impact", "Rbl impact", "Rvss impact"],
        body,
        title="Table I: worst-case variability for each patterning option",
    )


def format_figure4(rows: Sequence[WorstCaseTdRow]) -> str:
    """Fig. 4 data: nominal td and worst-case tdp per option and array size."""
    if not rows:
        raise ReportingError("no Fig. 4 rows to format")
    options = sorted(rows[0].tdp_percent_by_option)
    headers = ["Array size", "Nominal td (ps)"] + [f"tdp {name} (%)" for name in options]
    body = []
    for row in rows:
        body.append(
            [row.array_label, f"{row.nominal_td_ps:.2f}"]
            + [f"{row.tdp_percent(name):+.2f}" for name in options]
        )
    return render_table(headers, body, title="Fig. 4: worst-case wire variability impact on td")


def format_table2(rows: Sequence[FormulaVsSimulationTdRow]) -> str:
    """Table II: formula versus simulation nominal td values."""
    body = [
        [
            row.array_label,
            f"{row.simulation_td_s:.2E}",
            f"{row.formula_td_s:.2E}",
            f"{row.ratio:.2f}x",
        ]
        for row in rows
    ]
    return render_table(
        ["Array size", "Simulation (s)", "Formula (s)", "Sim/Formula"],
        body,
        title="Table II: formula versus simulation td_nom values",
    )


def format_table3(rows: Sequence[FormulaVsSimulationTdpRow]) -> str:
    """Table III: formula versus simulation tdp values (%) at the worst cases."""
    if not rows:
        raise ReportingError("no Table III rows to format")
    options = sorted(rows[0].tdp_percent_by_option)
    headers = ["Method", "Array size"] + list(options)
    body = []
    for row in rows:
        body.append(
            [row.method, row.array_label]
            + [f"{row.tdp_percent_by_option[name]:+.2f}" for name in options]
        )
    return render_table(
        headers, body, title="Table III: formula versus simulation tdp values (%)"
    )


def format_table4(rows: Sequence[TdpSigmaRow]) -> str:
    """Table IV: tdp standard deviation per option and overlay budget."""
    body = [
        [row.array_label, row.label, f"{row.sigma_percent:.3f}"]
        for row in rows
    ]
    return render_table(
        ["Array size", "Patterning option", "Std. deviation (% points)"],
        body,
        title="Table IV: patterning options & tdp sigma values",
    )


def format_campaign_text(results: CampaignResults) -> str:
    """Campaign records as one monospaced table, in work-list order."""
    body = []
    for record in results:
        penalty = results.penalty_percent_for(record)
        body.append(
            [
                record.scenario_label,
                record.operation,
                f"10x{record.n_wordlines}",
                record.option_name if record.option_name else "(nominal)",
                display_value(record.value, record.unit),
                f"{penalty:+.2f}" if penalty is not None else "-",
                record.stop_reason,
            ]
        )
    return render_table(
        ["Scenario", "Operation", "Array size", "Option", "Value", "Impact (%)", "Stop"],
        body,
        title=f"Simulation campaign: {len(results)} records",
    )


def format_operation_table(
    rows: Sequence[OperationImpactRow], title: Optional[str] = None
) -> str:
    """Operation-suite table: nominal value plus worst-case impact per option."""
    if not rows:
        raise ReportingError("no operation rows to format")
    operation = rows[0].operation
    factor, unit_label = unit_scale(rows[0].unit)
    options = sorted(rows[0].delta_percent_by_option)
    headers = ["Array size", f"Nominal ({unit_label})"] + [
        f"d{operation} {name} (%)" for name in options
    ]
    body = []
    for row in rows:
        if row.operation != operation:
            raise ReportingError("all rows of an operation table must share the operation")
        body.append(
            [row.array_label, f"{row.nominal_value * factor:.2f}"]
            + [f"{row.delta_percent(name):+.2f}" for name in options]
        )
    chosen_title = (
        title
        if title is not None
        else f"Operation suite ({operation}): worst-case patterning impact"
    )
    return render_table(headers, body, title=chosen_title)


def format_operation_sigma(
    rows: Sequence[OperationSigmaRow], title: Optional[str] = None
) -> str:
    """Monte-Carlo σ of one operation's impact per option and OL budget."""
    if not rows:
        raise ReportingError("no operation sigma rows to format")
    operation = rows[0].operation
    body = [
        [row.array_label, row.label, f"{row.sigma_percent:.3f}"]
        for row in rows
    ]
    chosen_title = (
        title
        if title is not None
        else f"Operation suite ({operation}): Monte-Carlo impact sigma"
    )
    return render_table(
        ["Array size", "Patterning option", "Std. deviation (% points)"],
        body,
        title=chosen_title,
    )


def format_campaign_csv(results: CampaignResults) -> str:
    """Campaign records as flat CSV (corner parameters compacted)."""
    headers = [
        "key",
        "kind",
        "scenario",
        "sim_key",
        "n_wordlines",
        "option",
        "overlay_three_sigma_nm",
        "stored_value",
        "vss_strap_interval_cells",
        "method",
        "operation",
        "value",
        "unit",
        "td_s",
        "tdp_percent",
        "stop_reason",
        "corner_parameters",
        "seed",
        "wall_s",
    ]
    rows = []
    for record in results:
        penalty = results.penalty_percent_for(record)
        corner = ";".join(
            f"{name}={value:g}" for name, value in sorted(record.corner_parameters.items())
        )
        rows.append(
            [
                record.key,
                record.kind,
                record.scenario_label,
                record.sim_key,
                record.n_wordlines,
                record.option_name or "",
                "" if record.overlay_three_sigma_nm is None else record.overlay_three_sigma_nm,
                record.stored_value,
                record.vss_strap_interval_cells,
                record.method,
                record.operation,
                repr(record.value),
                record.unit,
                repr(record.td_s),
                "" if penalty is None else repr(penalty),
                record.stop_reason,
                corner,
                record.seed,
                record.wall_s,
            ]
        )
    return format_csv(headers, rows)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal CSV rendering (no quoting needed for the study's values)."""
    lines = [",".join(str(cell) for cell in headers)]
    lines.extend(",".join(str(cell) for cell in row) for row in rows)
    return "\n".join(lines)


def format_compliance(rows, requirement) -> str:
    """Yield analysis: per-option compliance table plus the OL requirement."""
    if not rows:
        raise ReportingError("no compliance rows to format")
    body = [
        [
            row.label,
            f"{row.violation.probability:.3e}",
            f"{row.violation.parts_per_million:.1f}",
            row.violation.method
            + (" [extrapolated]" if row.violation.beyond_sampled_range else ""),
            f"{row.column_yield:.6f}",
            f"{row.array_yield:.6f}",
        ]
        for row in rows
    ]
    table = format_csv(
        ["option", "violation_probability", "ppm", "method", "column_yield", "array_yield"],
        body,
    )
    if any(row.violation.beyond_sampled_range for row in rows):
        table += (
            "\n[extrapolated]: the Gaussian tail was queried beyond the largest "
            "sampled tdp — treat as indicative only."
        )
    if requirement.achievable:
        closing = (
            f"{requirement.option_name} meets the {requirement.target_ppm:g} ppm "
            f"target at a 3-sigma overlay budget of "
            f"{requirement.required_overlay_nm:g} nm or tighter."
        )
    else:
        closing = (
            f"{requirement.option_name} cannot meet the {requirement.target_ppm:g} "
            "ppm target within the studied overlay budgets."
        )
    return (
        f"Read-time budget: +{rows[0].budget_percent:g}% over nominal\n"
        + table
        + "\n"
        + closing
    )


def format_high_sigma(rows) -> str:
    """High-sigma yield: one line per corner and sigma level.

    ``rows`` are :class:`repro.highsigma.HighSigmaCornerRow` objects.
    Each line shows the importance-sampling tail estimate (fail
    probability, ppm, the equivalent Gaussian sigma), its effective
    sample size and confidence interval, and — at the levels cheap
    enough to brute-force — the Monte-Carlo cross-check verdict.
    """
    if not rows:
        raise ReportingError("no high-sigma rows to format")
    body = []
    for row in rows:
        if row.mc_probability is None:
            check = "-"
        else:
            verdict = "agree" if row.mc_agrees else "DISAGREE"
            check = f"{row.mc_probability:.3e} ({verdict})"
        overlay = row.overlay_three_sigma_nm
        body.append(
            [
                row.array_label,
                row.option_name,
                "-" if overlay is None else f"{overlay:g}",
                f"{row.sigma_level:g}",
                f"{row.threshold:+.3f}",
                f"{row.fail_probability:.3e}",
                f"{row.ppm:.4g}",
                f"{row.sigma_equivalent:.2f}",
                f"{row.ess:.0f}",
                f"{row.ci_low:.3e}",
                f"{row.ci_high:.3e}",
                check,
            ]
        )
    first = rows[0]
    title = (
        f"High-sigma yield ({first.operation}, {first.model} model, "
        f"{first.confidence:.0%} confidence)"
    )
    return render_table(
        [
            "Array",
            "Option",
            "Overlay [nm]",
            "Level [sigma]",
            "Threshold [%]",
            "Fail prob",
            "ppm",
            "Sigma-equiv",
            "ESS",
            "CI low",
            "CI high",
            "MC check",
        ],
        body,
        title=title,
    )


def record_headers(records: Sequence[Dict[str, object]]) -> List[str]:
    """The union of record keys in first-appearance order.

    The one column-ordering rule of the generic record views, shared by
    ``ResultSet.to_csv`` and :func:`format_records` so the CSV and text
    renderings of the same records can never disagree.
    """
    headers: List[str] = []
    for record in records:
        for key in record:
            if key not in headers:
                headers.append(key)
    return headers


def format_records(records: Sequence[Dict[str, object]], title: str = "") -> str:
    """Generic aligned table over flat result records.

    The rendering of last resort for ResultSets without a typed payload
    (cache hits, HTTP responses): the union of record keys in
    first-appearance order becomes the columns, nested values are
    JSON-encoded, and floats keep full ``repr`` precision so the text
    view stays lossless.
    """
    import json as _json

    if not records:
        raise ReportingError("no records to format")
    headers = record_headers(records)
    body = []
    for record in records:
        cells = []
        for key in headers:
            value = record.get(key, "")
            if isinstance(value, (dict, list)):
                value = _json.dumps(value, sort_keys=True)
            cells.append("" if value is None else str(value))
        body.append(cells)
    return render_table(headers, body, title=title)


def format_result_set(result_set) -> str:
    """Unit-aware plain-text rendering of a :class:`repro.api.ResultSet`.

    Dispatches on the result's experiment kind and reuses the established
    per-study formatters, so a spec-driven run prints the same tables as
    the classic front doors.  A result without its typed ``payload`` (a
    cache hit or a deserialised HTTP response) falls back to the generic
    record table of :func:`format_records`.
    """
    kind = result_set.kind
    payload = result_set.payload
    if payload is None:
        # The generic record table already includes any failure rows.
        return format_records(
            result_set.records, title=f"{kind} records (deserialised)"
        )
    body = _format_typed_payload(kind, payload)
    failures = getattr(result_set, "failures", None) or []
    if failures:
        body = body + "\n\n" + format_failures(failures)
    meta = getattr(result_set, "meta", None) or {}
    if meta.get("solver_stats"):
        body = body + "\n\n" + format_solver_summary(meta)
    return body


def format_solver_summary(meta: Dict[str, object]) -> str:
    """Solver-counter summary of a campaign run (``meta["solver_stats"]``).

    Shows where the linear-algebra work went: full LU factorizations vs
    cheap refactorizations, dense (batched-tier) vs sparse solves, and
    the batched tier's tick/lane counters.  A pool-backed run accumulates
    its counters in worker processes, so the section only appears when
    the driver process did the solving (serial runs).
    """
    stats = dict(meta.get("solver_stats") or {})
    labels = [
        ("factorizations", "LU factorizations"),
        ("refactorizations", "template refactorizations"),
        ("dense_solves", "dense (batched) solves"),
        ("sparse_solves", "sparse solves"),
        ("stamp_evals", "stamp evaluations"),
        ("stamp_device_evals", "device stamp evaluations"),
        ("batch_ticks", "batched solver ticks"),
        ("batch_lanes", "batched lanes launched"),
        ("batch_lane_slots", "batched lane slots"),
        ("batch_lane_iterations", "batched lane iterations"),
        ("scalar_fallbacks", "scalar fallbacks"),
    ]
    body = [
        [label, f"{int(stats[key]):,}"] for key, label in labels if key in stats
    ]
    solver = meta.get("solver", "scalar")
    return render_table(
        ["Counter", "Count"],
        body,
        title=f"Solver summary ({solver} tier)",
    )


def format_trace_summary(records, top_n: int = 10) -> str:
    """Per-phase wall-time report of a span trace (``repro report``).

    ``records`` are the dictionaries of :func:`repro.obs.trace.read_trace`.
    Four sections: per-phase totals (count / wall / share of the trace
    window), the campaign attribution (how much of ``campaign.run`` the
    named phases account for — the obs bench gates this at ≥95%), the
    ``top_n`` slowest item spans, and the solver-counter totals the
    campaign spans carried.
    """
    from ..obs.trace import campaign_attribution

    if not records:
        raise ReportingError("trace contains no span records")

    window_start = min(int(r.get("ts", 0)) for r in records)
    window_end = max(int(r.get("ts", 0)) + int(r.get("dur", 0)) for r in records)
    window_us = max(1, window_end - window_start)

    totals: Dict[str, List[int]] = {}
    for record in records:
        entry = totals.setdefault(str(record.get("name", "?")), [0, 0])
        entry[0] += 1
        entry[1] += int(record.get("dur", 0))
    phase_rows = [
        [
            name,
            f"{count:,}",
            f"{total_us / 1e6:.3f}",
            f"{total_us / count / 1e3:.2f}",
            f"{100.0 * total_us / window_us:.1f}%",
        ]
        for name, (count, total_us) in sorted(
            totals.items(), key=lambda item: item[1][1], reverse=True
        )
    ]
    sections = [
        render_table(
            ["Span", "Count", "Total [s]", "Mean [ms]", "Window share"],
            phase_rows,
            title=f"Trace summary ({len(records)} spans, "
            f"{window_us / 1e6:.3f} s window)",
        )
    ]

    attribution = campaign_attribution(records)
    if attribution["campaign_runs"]:
        sections.append(
            "Campaign attribution: "
            f"{attribution['attributed_wall_s']:.3f} s of "
            f"{attribution['campaign_wall_s']:.3f} s campaign wall time "
            f"({attribution['coverage_percent']:.1f}%) in named phases "
            f"across {attribution['campaign_runs']} run(s)."
        )

    item_spans = [
        record
        for record in records
        if isinstance(record.get("args"), dict) and "item" in record["args"]
    ]
    if item_spans:
        # The same bucket/quantile math the live dashboard applies to
        # repro_item_wall_seconds, so "p99" means one thing everywhere.
        from ..obs.metrics import (
            DEFAULT_LATENCY_BUCKETS_S,
            cumulate,
            histogram_quantile,
        )

        walls_s = [int(r.get("dur", 0)) / 1e6 for r in item_spans]
        counts = cumulate(walls_s, DEFAULT_LATENCY_BUCKETS_S)
        p50 = histogram_quantile(
            0.50, DEFAULT_LATENCY_BUCKETS_S, counts, len(walls_s)
        )
        p99 = histogram_quantile(
            0.99, DEFAULT_LATENCY_BUCKETS_S, counts, len(walls_s)
        )
        sections.append(
            f"Item latency: {len(walls_s)} item spans, "
            f"p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms "
            f"(histogram-bucket estimate)"
        )
    if item_spans and top_n > 0:
        slowest = sorted(
            item_spans, key=lambda r: int(r.get("dur", 0)), reverse=True
        )[:top_n]
        sections.append(
            render_table(
                ["Item", "Span", "Operation", "Wall [ms]"],
                [
                    [
                        str(record["args"].get("item", "?")),
                        str(record.get("name", "?")),
                        str(record["args"].get("operation", "")),
                        f"{int(record.get('dur', 0)) / 1e3:.2f}",
                    ]
                    for record in slowest
                ],
                title=f"Slowest {len(slowest)} item spans",
            )
        )

    solver_totals: Dict[str, int] = {}
    solver_label = None
    # campaign.run spans carry the serial tier's full solver delta; fall
    # back to the joint-solve spans' batch deltas when the run-level
    # counters are absent (pool mode accumulates them in workers).
    for source in ("campaign.run", "campaign.joint_solve"):
        for record in records:
            if record.get("name") != source:
                continue
            args = record.get("args")
            if not isinstance(args, dict):
                continue
            if source == "campaign.run" and args.get("solver"):
                solver_label = str(args["solver"])
            stats = args.get("solver_stats")
            if isinstance(stats, dict):
                for key, value in stats.items():
                    try:
                        solver_totals[key] = solver_totals.get(key, 0) + int(value)
                    except (TypeError, ValueError):
                        continue
        if solver_totals:
            break
    if solver_totals:
        sections.append(
            format_solver_summary(
                {
                    "solver_stats": solver_totals,
                    "solver": solver_label or "unknown",
                }
            )
        )

    convergence = format_convergence_summary(records)
    if convergence:
        sections.append(convergence)

    return "\n\n".join(sections)


#: Solver spans that annotate their convergence outcome (iterations or
#: accepted steps, converged flag, transient rejections).
CONVERGENCE_SPANS = ("solver.dc", "solver.dc_sweep", "solver.transient")


def format_convergence_summary(records) -> str:
    """Solver-convergence section of a trace report.

    Aggregates the iteration/step annotations the solver wrappers put on
    their spans (serial tier only — pool workers trace into their own
    files that ``read_trace`` already merges).  Returns "" when the
    trace carries no solver spans (e.g. a pre-convergence-telemetry
    trace), so callers can append conditionally.
    """
    rows = []
    for name in CONVERGENCE_SPANS:
        iterations: List[int] = []
        nonconverged = 0
        rejected = 0
        for record in records:
            if record.get("name") != name:
                continue
            args = record.get("args")
            if not isinstance(args, dict):
                continue
            count = args.get("iterations", args.get("steps"))
            try:
                iterations.append(int(count))
            except (TypeError, ValueError):
                continue
            if args.get("converged") is False:
                nonconverged += 1
            try:
                rejected += int(args.get("rejected", 0))
            except (TypeError, ValueError):
                pass
        if not iterations:
            continue
        mean = sum(iterations) / len(iterations)
        rows.append(
            [
                name,
                f"{len(iterations):,}",
                f"{mean:.1f}",
                f"{max(iterations):,}",
                f"{nonconverged:,}",
                f"{rejected:,}",
            ]
        )
    if not rows:
        return ""
    return render_table(
        ["Solver span", "Solves", "Mean iters", "Max iters",
         "Non-conv", "Rejected steps"],
        rows,
        title="Solver convergence (from span annotations)",
    )


def format_flame_summary(samples: Dict[str, int], top_n: int = 10) -> str:
    """Report of a folded-stack profile (``repro report --flame``).

    ``samples`` maps folded stacks to sample counts (the format
    :func:`repro.obs.profile.read_folded` returns).  Three sections:
    samples per span phase (directly comparable with the trace report's
    per-phase wall shares), the hottest leaf frames, and the ``top_n``
    hottest whole stacks.
    """
    from ..obs.profile import phase_totals, top_frames, top_stacks

    if not samples:
        raise ReportingError("profile contains no samples")
    total = sum(samples.values())

    phases = phase_totals(samples)
    sections = [
        render_table(
            ["Phase (innermost span)", "Samples", "Share"],
            [
                [phase, f"{count:,}", f"{100.0 * count / total:.1f}%"]
                for phase, count in phases.items()
            ],
            title=f"Profile summary ({total:,} samples, "
            f"{len(samples):,} distinct stacks)",
        )
    ]

    frames = top_frames(samples, top_n)
    if frames:
        sections.append(
            render_table(
                ["Hot frame (leaf)", "Samples", "Share"],
                [
                    [frame, f"{count:,}", f"{100.0 * count / total:.1f}%"]
                    for frame, count in frames
                ],
                title=f"Hottest {len(frames)} frames",
            )
        )

    stacks = top_stacks(samples, top_n)
    lines = [f"Hottest {len(stacks)} stacks:"]
    for stack, count in stacks:
        lines.append(f"  {count:>7,}  {stack}")
    sections.append("\n".join(lines))
    return "\n\n".join(sections)


def _format_typed_payload(kind: str, payload) -> str:
    if kind == "campaign":
        return format_campaign_text(payload)
    if kind == "worst_case":
        return format_table1(payload)
    if kind == "operations":
        sections = [
            format_operation_table(rows) for rows in payload["impact"].values() if rows
        ]
        sections.extend(
            format_operation_sigma(rows) for rows in payload["sigma"].values() if rows
        )
        return "\n\n".join(sections)
    if kind == "monte_carlo":
        sections = []
        for operation, rows in payload.items():
            if operation == "read":
                sections.append(format_table4(rows))
            else:
                sections.append(format_operation_sigma(rows))
        return "\n\n".join(sections)
    if kind == "yield":
        rows, requirement = payload
        return format_compliance(rows, requirement)
    if kind == "yield_hs":
        return format_high_sigma(payload)
    raise ReportingError(f"no text renderer for experiment kind {kind!r}")


def format_failures(failures) -> str:
    """The partial-result failure section: one line per failed item.

    ``failures`` are the failure records of a ResultSet (dicts with
    ``key`` / ``classification`` / ``attempts`` / ``message``) — the
    items a ``skip`` or ``retry`` failure policy isolated instead of
    aborting the whole experiment.
    """
    lines = [f"Failed items ({len(failures)}) — result is PARTIAL:"]
    for failure in failures:
        key = failure.get("key", "?")
        classification = failure.get("classification", "unexpected")
        attempts = failure.get("attempts", 1)
        message = str(failure.get("message", "")).splitlines()[0] if failure.get("message") else ""
        attempt_note = f"{attempts} attempt{'s' if attempts != 1 else ''}"
        line = f"  {key}: {classification} after {attempt_note}"
        if message:
            line += f" — {message}"
        lines.append(line)
    return "\n".join(lines)
