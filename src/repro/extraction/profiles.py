"""Wire cross-section profiles.

Damascene copper wires are not perfect rectangles: the trench sidewalls
taper (narrower at the bottom), a barrier/liner consumes part of the
cross-section, and CMP dishing removes some thickness from wide lines.
The :class:`TrapezoidalProfile` captures these effects and reports the
quantities the resistance and capacitance models need: conducting area,
mean conducting width, effective thickness and the sidewall height seen by
a lateral (coupling) capacitance.

All dimensions in nanometres, areas in nm².
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..technology.materials import BarrierLiner
from ..technology.metal_stack import MetalLayer


class ProfileError(ValueError):
    """Raised for physically impossible wire profiles."""


@dataclass(frozen=True)
class TrapezoidalProfile:
    """Trapezoidal damascene wire cross-section.

    Parameters
    ----------
    top_width_nm:
        Printed (top) trench width — this is the CD the patterning options
        modulate.
    thickness_nm:
        Metal thickness after CMP (already net of dishing).
    tapering_angle_deg:
        Sidewall angle from the vertical; the bottom width is
        ``top_width − 2·thickness·tan(angle)``.
    barrier_thickness_nm:
        Barrier/liner thickness per side (bottom and both sidewalls).
    """

    top_width_nm: float
    thickness_nm: float
    tapering_angle_deg: float = 0.0
    barrier_thickness_nm: float = 0.0

    def __post_init__(self) -> None:
        if self.top_width_nm <= 0.0:
            raise ProfileError(f"top width must be positive, got {self.top_width_nm}")
        if self.thickness_nm <= 0.0:
            raise ProfileError(f"thickness must be positive, got {self.thickness_nm}")
        if not 0.0 <= self.tapering_angle_deg < 45.0:
            raise ProfileError("tapering angle must be in [0, 45) degrees")
        if self.barrier_thickness_nm < 0.0:
            raise ProfileError("barrier thickness cannot be negative")
        if self.bottom_width_nm <= 0.0:
            raise ProfileError(
                "tapering angle too aggressive: bottom width would be "
                f"{self.bottom_width_nm:.3f} nm"
            )
        if self.conductor_width_top_nm <= 0.0 or self.conductor_thickness_nm <= 0.0:
            raise ProfileError(
                "barrier consumes the whole cross-section "
                f"(top width {self.top_width_nm} nm, barrier "
                f"{self.barrier_thickness_nm} nm per side)"
            )

    # -- geometric quantities -------------------------------------------------

    @property
    def taper_run_nm(self) -> float:
        """Horizontal inset of the bottom edge relative to the top edge (per side)."""
        return self.thickness_nm * math.tan(math.radians(self.tapering_angle_deg))

    @property
    def bottom_width_nm(self) -> float:
        return self.top_width_nm - 2.0 * self.taper_run_nm

    @property
    def mean_width_nm(self) -> float:
        """Average trench width over the height."""
        return 0.5 * (self.top_width_nm + self.bottom_width_nm)

    @property
    def trench_area_nm2(self) -> float:
        """Full trench cross-section area (metal + barrier)."""
        return self.mean_width_nm * self.thickness_nm

    # -- conductor (copper) quantities -----------------------------------------

    @property
    def conductor_thickness_nm(self) -> float:
        """Copper thickness (trench depth minus the bottom barrier)."""
        return self.thickness_nm - self.barrier_thickness_nm

    @property
    def conductor_width_top_nm(self) -> float:
        return self.top_width_nm - 2.0 * self.barrier_thickness_nm

    @property
    def conductor_width_bottom_nm(self) -> float:
        return self.bottom_width_nm - 2.0 * self.barrier_thickness_nm

    @property
    def conductor_mean_width_nm(self) -> float:
        return 0.5 * (self.conductor_width_top_nm + self.conductor_width_bottom_nm)

    @property
    def conductor_area_nm2(self) -> float:
        """Copper cross-section area available for conduction."""
        return self.conductor_mean_width_nm * self.conductor_thickness_nm

    # -- capacitance-facing quantities -----------------------------------------

    @property
    def sidewall_height_nm(self) -> float:
        """Height of the sidewall facing a neighbouring wire."""
        return self.thickness_nm

    def scaled_width(self, delta_nm: float) -> "TrapezoidalProfile":
        """Return a copy with the top width changed by ``delta_nm``."""
        return TrapezoidalProfile(
            top_width_nm=self.top_width_nm + delta_nm,
            thickness_nm=self.thickness_nm,
            tapering_angle_deg=self.tapering_angle_deg,
            barrier_thickness_nm=self.barrier_thickness_nm,
        )


@dataclass(frozen=True)
class BatchProfiles:
    """Array-valued twin of :class:`TrapezoidalProfile`.

    Every field is an array of the same shape (one entry per sample, or per
    sample × track); the derived properties mirror the scalar profile
    formula for formula, so the batched extraction is numerically the same
    computation as the scalar one.
    """

    top_width_nm: np.ndarray
    thickness_nm: np.ndarray
    tapering_angle_deg: float = 0.0
    barrier_thickness_nm: float = 0.0

    def __post_init__(self) -> None:
        if np.any(self.top_width_nm <= 0.0):
            raise ProfileError("top widths must be positive")
        if np.any(self.thickness_nm <= 0.0):
            raise ProfileError("thicknesses must be positive")
        if not 0.0 <= self.tapering_angle_deg < 45.0:
            raise ProfileError("tapering angle must be in [0, 45) degrees")
        if self.barrier_thickness_nm < 0.0:
            raise ProfileError("barrier thickness cannot be negative")
        if np.any(self.bottom_width_nm <= 0.0):
            raise ProfileError("tapering angle too aggressive: non-positive bottom width")
        if np.any(self.conductor_width_top_nm <= 0.0) or np.any(
            self.conductor_thickness_nm <= 0.0
        ):
            raise ProfileError("barrier consumes the whole cross-section")

    @property
    def taper_run_nm(self) -> np.ndarray:
        return self.thickness_nm * math.tan(math.radians(self.tapering_angle_deg))

    @property
    def bottom_width_nm(self) -> np.ndarray:
        return self.top_width_nm - 2.0 * self.taper_run_nm

    @property
    def mean_width_nm(self) -> np.ndarray:
        return 0.5 * (self.top_width_nm + self.bottom_width_nm)

    @property
    def trench_area_nm2(self) -> np.ndarray:
        return self.mean_width_nm * self.thickness_nm

    @property
    def conductor_thickness_nm(self) -> np.ndarray:
        return self.thickness_nm - self.barrier_thickness_nm

    @property
    def conductor_width_top_nm(self) -> np.ndarray:
        return self.top_width_nm - 2.0 * self.barrier_thickness_nm

    @property
    def conductor_width_bottom_nm(self) -> np.ndarray:
        return self.bottom_width_nm - 2.0 * self.barrier_thickness_nm

    @property
    def conductor_mean_width_nm(self) -> np.ndarray:
        return 0.5 * (self.conductor_width_top_nm + self.conductor_width_bottom_nm)

    @property
    def conductor_area_nm2(self) -> np.ndarray:
        return self.conductor_mean_width_nm * self.conductor_thickness_nm

    @property
    def sidewall_height_nm(self) -> np.ndarray:
        return self.thickness_nm


def batch_profile_for_layer(
    layer: MetalLayer,
    widths_nm: np.ndarray,
    thickness_delta_nm: float = 0.0,
) -> BatchProfiles:
    """Array-valued twin of :func:`profile_for_layer`.

    Applies the same width-proportional CMP dishing to every sample; the
    per-element maths is identical to the scalar builder.
    """
    widths = np.asarray(widths_nm, dtype=float)
    if np.any(widths <= 0.0):
        raise ProfileError("wire widths must be positive")
    dishing = np.zeros_like(widths)
    if layer.cmp_dishing_nm > 0.0:
        wide = widths > layer.min_width_nm
        dishing = np.where(
            wide, layer.cmp_dishing_nm * (widths / layer.min_width_nm - 1.0), 0.0
        )
    thickness = layer.thickness_nm - dishing + thickness_delta_nm
    if np.any(thickness <= 0.0):
        raise ProfileError(
            f"layer {layer.name!r}: thickness becomes non-positive for some widths"
        )
    barrier: BarrierLiner = layer.materials.barrier
    return BatchProfiles(
        top_width_nm=widths,
        thickness_nm=thickness,
        tapering_angle_deg=layer.tapering_angle_deg,
        barrier_thickness_nm=barrier.thickness_nm,
    )


def profile_for_layer(
    layer: MetalLayer,
    width_nm: float,
    thickness_delta_nm: float = 0.0,
) -> TrapezoidalProfile:
    """Build the cross-section profile of a wire of ``width_nm`` on ``layer``.

    CMP dishing is applied proportionally to how much wider than minimum
    the line is drawn (wide lines dish more); ``thickness_delta_nm`` adds a
    process-variation thickness change on top.
    """
    if width_nm <= 0.0:
        raise ProfileError("wire width must be positive")
    dishing = 0.0
    if layer.cmp_dishing_nm > 0.0 and width_nm > layer.min_width_nm:
        dishing = layer.cmp_dishing_nm * (width_nm / layer.min_width_nm - 1.0)
    thickness = layer.thickness_nm - dishing + thickness_delta_nm
    if thickness <= 0.0:
        raise ProfileError(
            f"layer {layer.name!r}: thickness becomes non-positive "
            f"({thickness:.3f} nm) for width {width_nm} nm"
        )
    barrier: BarrierLiner = layer.materials.barrier
    return TrapezoidalProfile(
        top_width_nm=width_nm,
        thickness_nm=thickness,
        tapering_angle_deg=layer.tapering_angle_deg,
        barrier_thickness_nm=barrier.thickness_nm,
    )
