"""Wire-capacitance models.

The study needs the per-unit-length capacitance of a metal1 wire embedded
in a dense parallel track pattern, split into:

* **ground capacitance** to the conducting planes below (FEOL / contact
  level) and above (metal2 word lines, which cross the bit lines and form
  an effective plane), including fringe; and
* **coupling capacitance** to the left and right neighbouring tracks.

Closed-form models in the Sakurai-Tamaru family are used: they are
published, smooth in the geometric parameters, and — crucially for this
study — capture the strong super-linear growth of the coupling
capacitance as the space to a neighbour collapses, which is exactly the
mechanism behind the LE3 worst case.

References
----------
T. Sakurai and K. Tamaru, "Simple formulas for two- and three-dimensional
capacitances", IEEE Trans. Electron Devices, 1983.

Units: dimensions in nm, capacitances in F (per nm of wire length for the
per-unit-length quantities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..technology.materials import MaterialSystem
from ..technology.metal_stack import MetalLayer
from .profiles import BatchProfiles, TrapezoidalProfile, profile_for_layer


class CapacitanceError(ValueError):
    """Raised for impossible capacitance computations."""


@dataclass(frozen=True)
class CapacitanceComponents:
    """Per-unit-length capacitance breakdown of one wire (F/nm)."""

    ground_below: float
    ground_above: float
    coupling_left: float
    coupling_right: float

    @property
    def ground_total(self) -> float:
        return self.ground_below + self.ground_above

    @property
    def coupling_total(self) -> float:
        return self.coupling_left + self.coupling_right

    @property
    def total(self) -> float:
        return self.ground_total + self.coupling_total

    def coupling_fraction(self) -> float:
        """Fraction of the total that is lateral coupling."""
        total = self.total
        if total <= 0.0:
            raise CapacitanceError("total capacitance must be positive")
        return self.coupling_total / total

    def scaled(self, factor: float) -> "CapacitanceComponents":
        return CapacitanceComponents(
            ground_below=self.ground_below * factor,
            ground_above=self.ground_above * factor,
            coupling_left=self.coupling_left * factor,
            coupling_right=self.coupling_right * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "ground_below": self.ground_below,
            "ground_above": self.ground_above,
            "coupling_left": self.coupling_left,
            "coupling_right": self.coupling_right,
            "total": self.total,
        }


def sakurai_tamaru_ground(
    width_nm: float,
    thickness_nm: float,
    height_nm: float,
    permittivity_f_per_nm: float,
) -> float:
    """Single-line capacitance to one ground plane, per unit length (F/nm).

    ``C/ε = 1.15 (w/h) + 2.80 (t/h)^0.222`` — the plate term plus a fringe
    term that depends on the sidewall height.
    """
    if min(width_nm, thickness_nm, height_nm) <= 0.0:
        raise CapacitanceError("width, thickness and height must be positive")
    w_over_h = width_nm / height_nm
    t_over_h = thickness_nm / height_nm
    return permittivity_f_per_nm * (1.15 * w_over_h + 2.80 * t_over_h**0.222)


def sakurai_tamaru_coupling(
    width_nm: float,
    thickness_nm: float,
    height_nm: float,
    space_nm: float,
    permittivity_f_per_nm: float,
) -> float:
    """Coupling capacitance between two parallel lines, per unit length (F/nm).

    ``C/ε = [0.03 (w/h) + 0.83 (t/h) − 0.07 (t/h)^0.222] (s/h)^−1.34``

    The ``(s/h)^−1.34`` factor is the key sensitivity of the whole study:
    when multiple-patterning errors squeeze a space, the coupling term
    grows super-linearly.
    """
    if min(width_nm, thickness_nm, height_nm) <= 0.0:
        raise CapacitanceError("width, thickness and height must be positive")
    if space_nm <= 0.0:
        raise CapacitanceError(
            f"the space between coupled lines must be positive, got {space_nm}"
        )
    w_over_h = width_nm / height_nm
    t_over_h = thickness_nm / height_nm
    s_over_h = space_nm / height_nm
    shape_term = 0.03 * w_over_h + 0.83 * t_over_h - 0.07 * t_over_h**0.222
    shape_term = max(shape_term, 0.0)
    return permittivity_f_per_nm * shape_term * s_over_h**-1.34


def fringe_shielding_factor(space_nm: float, height_nm: float) -> float:
    """Attenuation of the fringe-to-ground capacitance by a close neighbour.

    A wire with a very close neighbour loses part of its fringe field to
    that neighbour (it reappears as coupling).  The factor tends to 1 for
    isolated wires (``s ≫ h``) and drops towards ~0.15 for tight spaces,
    which is what keeps the lateral coupling the dominant capacitance term
    in dense minimum-pitch patterns.
    """
    if space_nm <= 0.0 or height_nm <= 0.0:
        raise CapacitanceError("space and height must be positive")
    ratio = space_nm / height_nm
    return 1.0 - 0.85 * math.exp(-ratio / 2.0)


@dataclass(frozen=True)
class BatchCapacitanceComponents:
    """Array-valued twin of :class:`CapacitanceComponents` (F/nm, per sample)."""

    ground_below: np.ndarray
    ground_above: np.ndarray
    coupling_left: np.ndarray
    coupling_right: np.ndarray

    @property
    def ground_total(self) -> np.ndarray:
        return self.ground_below + self.ground_above

    @property
    def coupling_total(self) -> np.ndarray:
        return self.coupling_left + self.coupling_right

    @property
    def total(self) -> np.ndarray:
        return self.ground_total + self.coupling_total

    def at(self, index: int) -> CapacitanceComponents:
        """One sample's breakdown as the scalar dataclass."""
        return CapacitanceComponents(
            ground_below=float(self.ground_below[index]),
            ground_above=float(self.ground_above[index]),
            coupling_left=float(self.coupling_left[index]),
            coupling_right=float(self.coupling_right[index]),
        )


def batch_sakurai_tamaru_ground(
    width_nm: np.ndarray,
    thickness_nm: np.ndarray,
    height_nm: float,
    permittivity_f_per_nm: float,
) -> np.ndarray:
    """Array-valued twin of :func:`sakurai_tamaru_ground`."""
    if np.any(width_nm <= 0.0) or np.any(thickness_nm <= 0.0) or height_nm <= 0.0:
        raise CapacitanceError("widths, thicknesses and height must be positive")
    w_over_h = width_nm / height_nm
    t_over_h = thickness_nm / height_nm
    return permittivity_f_per_nm * (1.15 * w_over_h + 2.80 * t_over_h**0.222)


def batch_sakurai_tamaru_coupling(
    width_nm: np.ndarray,
    thickness_nm: np.ndarray,
    height_nm: float,
    space_nm: np.ndarray,
    permittivity_f_per_nm: float,
) -> np.ndarray:
    """Array-valued twin of :func:`sakurai_tamaru_coupling`."""
    if np.any(width_nm <= 0.0) or np.any(thickness_nm <= 0.0) or height_nm <= 0.0:
        raise CapacitanceError("widths, thicknesses and height must be positive")
    if np.any(space_nm <= 0.0):
        raise CapacitanceError("the spaces between coupled lines must be positive")
    w_over_h = width_nm / height_nm
    t_over_h = thickness_nm / height_nm
    s_over_h = space_nm / height_nm
    shape_term = 0.03 * w_over_h + 0.83 * t_over_h - 0.07 * t_over_h**0.222
    shape_term = np.maximum(shape_term, 0.0)
    return permittivity_f_per_nm * shape_term * s_over_h**-1.34


def batch_fringe_shielding_factor(space_nm: np.ndarray, height_nm: float) -> np.ndarray:
    """Array-valued twin of :func:`fringe_shielding_factor`."""
    if np.any(space_nm <= 0.0) or height_nm <= 0.0:
        raise CapacitanceError("spaces and height must be positive")
    ratio = space_nm / height_nm
    return 1.0 - 0.85 * np.exp(-ratio / 2.0)


@dataclass(frozen=True)
class BatchNeighborGeometry:
    """Array-valued twin of :class:`NeighborGeometry` (one sample per entry)."""

    space_nm: np.ndarray
    thickness_nm: np.ndarray

    def __post_init__(self) -> None:
        if np.any(self.space_nm <= 0.0):
            raise CapacitanceError("neighbour spaces must be positive")
        if np.any(self.thickness_nm <= 0.0):
            raise CapacitanceError("neighbour thicknesses must be positive")


def batch_wire_capacitance_per_nm(
    profiles: BatchProfiles,
    layer: MetalLayer,
    left_neighbor: Optional[BatchNeighborGeometry],
    right_neighbor: Optional[BatchNeighborGeometry],
) -> BatchCapacitanceComponents:
    """Array-valued twin of :func:`wire_capacitance_per_nm`.

    Same plate/fringe split and per-side shielding, evaluated element-wise
    over the sample axis.
    """
    materials: MaterialSystem = layer.materials
    eps_inter = materials.layer_to_layer_permittivity()
    eps_intra = materials.line_to_line_permittivity()

    width = profiles.mean_width_nm
    thickness = profiles.sidewall_height_nm

    ground_below = batch_sakurai_tamaru_ground(width, thickness, layer.ild_below_nm, eps_inter)
    ground_above = batch_sakurai_tamaru_ground(width, thickness, layer.ild_above_nm, eps_inter)

    plate_below = eps_inter * 1.15 * width / layer.ild_below_nm
    plate_above = eps_inter * 1.15 * width / layer.ild_above_nm
    fringe_below = ground_below - plate_below
    fringe_above = ground_above - plate_above

    zeros = np.zeros_like(width)
    coupling_left = zeros
    coupling_right = zeros
    shield_left: np.ndarray = np.ones_like(width)
    shield_right: np.ndarray = np.ones_like(width)
    if left_neighbor is not None:
        coupling_thickness = np.minimum(thickness, left_neighbor.thickness_nm)
        coupling_left = batch_sakurai_tamaru_coupling(
            width, coupling_thickness, layer.ild_below_nm, left_neighbor.space_nm, eps_intra
        )
        shield_left = batch_fringe_shielding_factor(
            left_neighbor.space_nm, layer.ild_below_nm
        )
    if right_neighbor is not None:
        coupling_thickness = np.minimum(thickness, right_neighbor.thickness_nm)
        coupling_right = batch_sakurai_tamaru_coupling(
            width, coupling_thickness, layer.ild_below_nm, right_neighbor.space_nm, eps_intra
        )
        shield_right = batch_fringe_shielding_factor(
            right_neighbor.space_nm, layer.ild_below_nm
        )

    shield = 0.5 * (shield_left + shield_right)
    return BatchCapacitanceComponents(
        ground_below=plate_below + fringe_below * shield,
        ground_above=plate_above + fringe_above * shield,
        coupling_left=coupling_left,
        coupling_right=coupling_right,
    )


@dataclass(frozen=True)
class NeighborGeometry:
    """Geometry of one lateral neighbour as seen from the victim wire."""

    space_nm: float
    thickness_nm: float

    def __post_init__(self) -> None:
        if self.space_nm <= 0.0:
            raise CapacitanceError("neighbour space must be positive")
        if self.thickness_nm <= 0.0:
            raise CapacitanceError("neighbour thickness must be positive")


def wire_capacitance_per_nm(
    profile: TrapezoidalProfile,
    layer: MetalLayer,
    left_neighbor: Optional[NeighborGeometry],
    right_neighbor: Optional[NeighborGeometry],
) -> CapacitanceComponents:
    """Per-unit-length capacitance of a wire in its local environment.

    Parameters
    ----------
    profile:
        Cross-section of the victim wire.
    layer:
        Metal layer (provides dielectric heights and permittivities).
    left_neighbor, right_neighbor:
        Lateral neighbours; ``None`` means the wire is unshielded on that
        side (full fringe to ground, no coupling).
    """
    materials: MaterialSystem = layer.materials
    eps_inter = materials.layer_to_layer_permittivity()
    eps_intra = materials.line_to_line_permittivity()

    width = profile.mean_width_nm
    thickness = profile.sidewall_height_nm

    ground_below = sakurai_tamaru_ground(width, thickness, layer.ild_below_nm, eps_inter)
    ground_above = sakurai_tamaru_ground(width, thickness, layer.ild_above_nm, eps_inter)

    # Split each ground capacitance into a plate part and a fringe part so
    # that only the fringe part is shielded by close neighbours.
    plate_below = eps_inter * 1.15 * width / layer.ild_below_nm
    plate_above = eps_inter * 1.15 * width / layer.ild_above_nm
    fringe_below = ground_below - plate_below
    fringe_above = ground_above - plate_above

    coupling_left = 0.0
    coupling_right = 0.0
    shield_left = 1.0
    shield_right = 1.0
    if left_neighbor is not None:
        coupling_thickness = min(thickness, left_neighbor.thickness_nm)
        coupling_left = sakurai_tamaru_coupling(
            width, coupling_thickness, layer.ild_below_nm, left_neighbor.space_nm, eps_intra
        )
        shield_left = fringe_shielding_factor(left_neighbor.space_nm, layer.ild_below_nm)
    if right_neighbor is not None:
        coupling_thickness = min(thickness, right_neighbor.thickness_nm)
        coupling_right = sakurai_tamaru_coupling(
            width, coupling_thickness, layer.ild_below_nm, right_neighbor.space_nm, eps_intra
        )
        shield_right = fringe_shielding_factor(right_neighbor.space_nm, layer.ild_below_nm)

    # Each side contributes half of the fringe; shield each half by its own
    # neighbour.
    shield = 0.5 * (shield_left + shield_right)
    ground_below_shielded = plate_below + fringe_below * shield
    ground_above_shielded = plate_above + fringe_above * shield

    return CapacitanceComponents(
        ground_below=ground_below_shielded,
        ground_above=ground_above_shielded,
        coupling_left=coupling_left,
        coupling_right=coupling_right,
    )


def isolated_wire_capacitance_per_nm(
    layer: MetalLayer, width_nm: float
) -> CapacitanceComponents:
    """Capacitance of an isolated wire (no lateral neighbours) on a layer."""
    profile = profile_for_layer(layer, width_nm)
    return wire_capacitance_per_nm(profile, layer, None, None)


def parallel_plate_capacitance_f(
    area_nm2: float, distance_nm: float, permittivity_f_per_nm: float
) -> float:
    """Elementary parallel-plate capacitance (used for via / overlap caps)."""
    if area_nm2 < 0.0:
        raise CapacitanceError("plate area cannot be negative")
    if distance_nm <= 0.0:
        raise CapacitanceError("plate distance must be positive")
    return permittivity_f_per_nm * area_nm2 / distance_nm
