"""Wire-resistance models.

Resistance per unit length of a damascene wire follows from the
size-effect-corrected copper resistivity and the conducting cross-section
of its :class:`~repro.extraction.profiles.TrapezoidalProfile`.  The barrier
can optionally conduct in parallel (it barely matters for copper wires but
the hook exists for barrier-first metals such as ruthenium).

Units: ohm, nanometre; resistance per unit length is ohm/nm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..technology.materials import Conductor, MaterialSystem
from ..technology.metal_stack import MetalLayer
from .profiles import BatchProfiles, ProfileError, TrapezoidalProfile, profile_for_layer


class ResistanceError(ValueError):
    """Raised for impossible resistance computations."""


@dataclass(frozen=True)
class ResistanceResult:
    """Resistance of one wire.

    Attributes
    ----------
    resistance_per_nm:
        Resistance per unit length (ohm/nm).
    resistance_ohm:
        Total resistance over the wire length (ohm); ``None`` when no
        length was supplied.
    effective_resistivity_ohm_nm:
        The size-effect-corrected resistivity that was used.
    conductor_area_nm2:
        Conducting (copper) cross-section area.
    """

    resistance_per_nm: float
    resistance_ohm: Optional[float]
    effective_resistivity_ohm_nm: float
    conductor_area_nm2: float


def resistance_per_unit_length(
    profile: TrapezoidalProfile, materials: MaterialSystem
) -> ResistanceResult:
    """Resistance per unit length of a wire with the given cross-section."""
    conductor: Conductor = materials.conductor
    area = profile.conductor_area_nm2
    if area <= 0.0:
        raise ResistanceError("conductor area must be positive")
    rho = conductor.effective_resistivity(
        width_nm=profile.conductor_mean_width_nm,
        thickness_nm=profile.conductor_thickness_nm,
    )
    per_nm = rho / area

    barrier = materials.barrier
    if barrier.conductive and barrier.thickness_nm > 0.0:
        barrier_area = profile.trench_area_nm2 - area
        if barrier_area > 0.0:
            barrier_per_nm = barrier.resistivity_ohm_nm / barrier_area
            per_nm = (per_nm * barrier_per_nm) / (per_nm + barrier_per_nm)

    return ResistanceResult(
        resistance_per_nm=per_nm,
        resistance_ohm=None,
        effective_resistivity_ohm_nm=rho,
        conductor_area_nm2=area,
    )


def batch_resistance_per_nm(
    profiles: BatchProfiles, materials: MaterialSystem
) -> np.ndarray:
    """Array-valued twin of :func:`resistance_per_unit_length`.

    Returns the per-unit-length resistance (ohm/nm) for every sample in the
    batch, computed with the same resistivity and barrier model as the
    scalar path.
    """
    conductor: Conductor = materials.conductor
    area = profiles.conductor_area_nm2
    if np.any(area <= 0.0):
        raise ResistanceError("conductor areas must be positive")
    rho = conductor.effective_resistivity_batch(
        width_nm=profiles.conductor_mean_width_nm,
        thickness_nm=profiles.conductor_thickness_nm,
    )
    per_nm = rho / area

    barrier = materials.barrier
    if barrier.conductive and barrier.thickness_nm > 0.0:
        # BatchProfiles guarantees the conductor fits inside the trench, so
        # the barrier cross-section is strictly positive here.
        barrier_per_nm = barrier.resistivity_ohm_nm / (profiles.trench_area_nm2 - area)
        per_nm = (per_nm * barrier_per_nm) / (per_nm + barrier_per_nm)
    return per_nm


def wire_resistance(
    layer: MetalLayer,
    width_nm: float,
    length_nm: float,
    thickness_delta_nm: float = 0.0,
) -> ResistanceResult:
    """Total resistance of a wire of ``width_nm`` × ``length_nm`` on ``layer``."""
    if length_nm <= 0.0:
        raise ResistanceError("wire length must be positive")
    profile = profile_for_layer(layer, width_nm, thickness_delta_nm)
    result = resistance_per_unit_length(profile, layer.materials)
    return ResistanceResult(
        resistance_per_nm=result.resistance_per_nm,
        resistance_ohm=result.resistance_per_nm * length_nm,
        effective_resistivity_ohm_nm=result.effective_resistivity_ohm_nm,
        conductor_area_nm2=result.conductor_area_nm2,
    )


def sheet_resistance_ohm_per_sq(layer: MetalLayer, width_nm: Optional[float] = None) -> float:
    """Effective sheet resistance of a layer at a given drawn width.

    A convenience for sanity checks and documentation tables; uses the
    minimum width when none is given.
    """
    width = width_nm if width_nm is not None else layer.min_width_nm
    profile = profile_for_layer(layer, width)
    result = resistance_per_unit_length(profile, layer.materials)
    # R = rho * L / A;  Rs = R * W / L = rho * W / A.
    return result.resistance_per_nm * width


def via_resistance_ohm(
    layer: MetalLayer,
    via_side_nm: float = 20.0,
    height_nm: Optional[float] = None,
) -> float:
    """Resistance of a single square via landing on ``layer``.

    The paper notes vias are part of the simulation deck but not of the
    analytical formula; the SRAM netlist builder uses this to add the
    bit-line-to-cell via resistance.
    """
    if via_side_nm <= 0.0:
        raise ResistanceError("via side must be positive")
    via_height = height_nm if height_nm is not None else layer.ild_below_nm
    conductor = layer.materials.conductor
    rho = conductor.effective_resistivity(width_nm=via_side_nm, thickness_nm=via_side_nm)
    area = via_side_nm * via_side_nm
    return rho * via_height / area
