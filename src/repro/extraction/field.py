"""Quasi-2D cross-section extraction of a track pattern.

Given a :class:`~repro.layout.wire.TrackPattern` (printed or nominal) and
the :class:`~repro.technology.metal_stack.MetalLayer` it lives on, the
extractor computes, for every track, the per-unit-length resistance and
the capacitance breakdown of :mod:`repro.extraction.capacitance`.  The
result object also provides per-length totals, which is what the SRAM
netlist builder and the analytical formula consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..layout.wire import NetRole, Track, TrackPattern
from ..patterning.base import BatchPrintedGeometry
from ..technology.metal_stack import MetalLayer
from .capacitance import (
    BatchCapacitanceComponents,
    BatchNeighborGeometry,
    CapacitanceComponents,
    NeighborGeometry,
    batch_wire_capacitance_per_nm,
    wire_capacitance_per_nm,
)
from .profiles import BatchProfiles, TrapezoidalProfile, batch_profile_for_layer, profile_for_layer
from .resistance import batch_resistance_per_nm, resistance_per_unit_length


class ExtractionError(ValueError):
    """Raised when a pattern cannot be extracted."""


@dataclass(frozen=True)
class WireParasitics:
    """Extracted parasitics of one track.

    All per-unit-length quantities are per nanometre of wire length; the
    ``*_total`` properties integrate over ``length_nm``.
    """

    net: str
    role: NetRole
    width_nm: float
    length_nm: float
    resistance_per_nm: float
    capacitance_per_nm: CapacitanceComponents
    profile: TrapezoidalProfile

    @property
    def resistance_total_ohm(self) -> float:
        return self.resistance_per_nm * self.length_nm

    @property
    def capacitance_total_f(self) -> float:
        return self.capacitance_per_nm.total * self.length_nm

    @property
    def coupling_total_f(self) -> float:
        return self.capacitance_per_nm.coupling_total * self.length_nm

    @property
    def ground_total_f(self) -> float:
        return self.capacitance_per_nm.ground_total * self.length_nm

    def per_cell(self, cell_length_nm: float) -> "WireParasitics":
        """The same parasitics re-expressed over one SRAM-cell length."""
        if cell_length_nm <= 0.0:
            raise ExtractionError("cell length must be positive")
        return WireParasitics(
            net=self.net,
            role=self.role,
            width_nm=self.width_nm,
            length_nm=cell_length_nm,
            resistance_per_nm=self.resistance_per_nm,
            capacitance_per_nm=self.capacitance_per_nm,
            profile=self.profile,
        )


@dataclass
class ExtractionResult:
    """Extraction of a whole track pattern: parasitics keyed by net name."""

    layer_name: str
    wire_length_nm: float
    parasitics: Dict[str, WireParasitics] = field(default_factory=dict)

    def __getitem__(self, net: str) -> WireParasitics:
        try:
            return self.parasitics[net]
        except KeyError:
            raise ExtractionError(
                f"net {net!r} was not extracted; nets: {sorted(self.parasitics)}"
            ) from None

    def __contains__(self, net: str) -> bool:
        return net in self.parasitics

    def __iter__(self) -> Iterator[WireParasitics]:
        return iter(self.parasitics.values())

    def __len__(self) -> int:
        return len(self.parasitics)

    @property
    def nets(self) -> List[str]:
        return list(self.parasitics)

    def nets_with_role(self, role: NetRole) -> List[WireParasitics]:
        return [entry for entry in self.parasitics.values() if entry.role is role]

    def total_capacitance_f(self, net: str) -> float:
        return self[net].capacitance_total_f

    def total_resistance_ohm(self, net: str) -> float:
        return self[net].resistance_total_ohm


@dataclass(frozen=True)
class BatchWireParasitics:
    """Array-valued twin of :class:`WireParasitics`: one track, N samples."""

    net: str
    role: NetRole
    width_nm: np.ndarray
    length_nm: float
    resistance_per_nm: np.ndarray
    capacitance_per_nm: BatchCapacitanceComponents

    @property
    def n_samples(self) -> int:
        return int(self.width_nm.shape[0])

    @property
    def resistance_total_ohm(self) -> np.ndarray:
        return self.resistance_per_nm * self.length_nm

    @property
    def capacitance_total_f(self) -> np.ndarray:
        return self.capacitance_per_nm.total * self.length_nm

    @property
    def coupling_total_f(self) -> np.ndarray:
        return self.capacitance_per_nm.coupling_total * self.length_nm

    @property
    def ground_total_f(self) -> np.ndarray:
        return self.capacitance_per_nm.ground_total * self.length_nm


@dataclass
class BatchExtractionResult:
    """Batched extraction of selected nets: arrays keyed by net name."""

    layer_name: str
    wire_length_nm: float
    n_samples: int
    parasitics: Dict[str, BatchWireParasitics] = field(default_factory=dict)

    def __getitem__(self, net: str) -> BatchWireParasitics:
        try:
            return self.parasitics[net]
        except KeyError:
            raise ExtractionError(
                f"net {net!r} was not extracted; nets: {sorted(self.parasitics)}"
            ) from None

    def __contains__(self, net: str) -> bool:
        return net in self.parasitics

    @property
    def nets(self) -> List[str]:
        return list(self.parasitics)


class CrossSectionExtractor:
    """Extracts R and C of every track in a pattern on a given layer.

    Parameters
    ----------
    layer:
        The metal layer the pattern lives on; supplies thickness, tapering,
        barrier, dielectric environment and materials.
    thickness_delta_nm:
        Global metal-thickness variation (etch/CMP), added to every wire.
    """

    def __init__(self, layer: MetalLayer, thickness_delta_nm: float = 0.0) -> None:
        self.layer = layer
        self.thickness_delta_nm = thickness_delta_nm

    def _neighbor_geometry(
        self, pattern: TrackPattern, index: int, neighbor_index: int
    ) -> Optional[NeighborGeometry]:
        if not 0 <= neighbor_index < len(pattern):
            return None
        space = pattern.space_between(index, neighbor_index)
        if space <= 0.0:
            raise ExtractionError(
                f"tracks {pattern[index].net!r} and {pattern[neighbor_index].net!r} "
                "touch or overlap after patterning; extraction is not defined"
            )
        neighbor_profile = profile_for_layer(
            self.layer, pattern[neighbor_index].width_nm, self.thickness_delta_nm
        )
        return NeighborGeometry(space_nm=space, thickness_nm=neighbor_profile.thickness_nm)

    def extract_track(self, pattern: TrackPattern, index: int) -> WireParasitics:
        """Extract a single track of the pattern (by index)."""
        track = pattern[index]
        profile = profile_for_layer(self.layer, track.width_nm, self.thickness_delta_nm)
        resistance = resistance_per_unit_length(profile, self.layer.materials)
        left = self._neighbor_geometry(pattern, index, index - 1)
        right = self._neighbor_geometry(pattern, index, index + 1)
        capacitance = wire_capacitance_per_nm(profile, self.layer, left, right)
        return WireParasitics(
            net=track.net,
            role=track.role,
            width_nm=track.width_nm,
            length_nm=pattern.wire_length_nm,
            resistance_per_nm=resistance.resistance_per_nm,
            capacitance_per_nm=capacitance,
            profile=profile,
        )

    def extract(self, pattern: TrackPattern) -> ExtractionResult:
        """Extract every track of the pattern."""
        result = ExtractionResult(
            layer_name=self.layer.name, wire_length_nm=pattern.wire_length_nm
        )
        for index in range(len(pattern)):
            parasitics = self.extract_track(pattern, index)
            result.parasitics[parasitics.net] = parasitics
        return result

    # -- batched extraction ----------------------------------------------------

    def _batch_neighbor(
        self,
        geometry: BatchPrintedGeometry,
        profiles: BatchProfiles,
        index: int,
        neighbor_index: int,
    ) -> Optional[BatchNeighborGeometry]:
        if not 0 <= neighbor_index < geometry.n_tracks:
            return None
        left, right = sorted((index, neighbor_index))
        space = geometry.spaces_nm(left, right)
        if np.any(space <= 0.0):
            sample = int(np.argmax(space <= 0.0))
            raise ExtractionError(
                f"tracks {geometry.nets[index]!r} and "
                f"{geometry.nets[neighbor_index]!r} touch or overlap after "
                f"patterning (sample {sample}); extraction is not defined"
            )
        return BatchNeighborGeometry(
            space_nm=space, thickness_nm=profiles.thickness_nm[:, neighbor_index]
        )

    def extract_batch(
        self,
        geometry: BatchPrintedGeometry,
        nets: Optional[Sequence[str]] = None,
    ) -> BatchExtractionResult:
        """Extract selected nets of a printed batch in one array sweep.

        ``nets`` defaults to every net; restricting it to the nets the study
        actually consumes (e.g. just the bit line) skips the per-sample
        work for the other tracks — the Monte-Carlo loop only ever needs
        one net plus its two neighbours, which are handled here anyway.
        """
        wanted = list(nets) if nets is not None else list(geometry.nets)
        # Profiles (and hence thicknesses) of every track: neighbours of the
        # requested nets need their printed thickness for the coupling term.
        profiles = batch_profile_for_layer(
            self.layer, geometry.widths_nm, self.thickness_delta_nm
        )
        result = BatchExtractionResult(
            layer_name=self.layer.name,
            wire_length_nm=geometry.wire_length_nm,
            n_samples=geometry.n_samples,
        )
        for net in wanted:
            index = geometry.index_of(net)
            track_profiles = BatchProfiles(
                top_width_nm=profiles.top_width_nm[:, index],
                thickness_nm=profiles.thickness_nm[:, index],
                tapering_angle_deg=profiles.tapering_angle_deg,
                barrier_thickness_nm=profiles.barrier_thickness_nm,
            )
            resistance = batch_resistance_per_nm(track_profiles, self.layer.materials)
            left = self._batch_neighbor(geometry, profiles, index, index - 1)
            right = self._batch_neighbor(geometry, profiles, index, index + 1)
            capacitance = batch_wire_capacitance_per_nm(
                track_profiles, self.layer, left, right
            )
            result.parasitics[net] = BatchWireParasitics(
                net=net,
                role=geometry.roles[index],
                width_nm=geometry.widths_nm[:, index],
                length_nm=geometry.wire_length_nm,
                resistance_per_nm=resistance,
                capacitance_per_nm=capacitance,
            )
        return result
