"""Parasitic extraction substrate: profiles, R/C models, cross-section extractor, LPE driver."""

from .capacitance import (
    CapacitanceComponents,
    CapacitanceError,
    NeighborGeometry,
    fringe_shielding_factor,
    isolated_wire_capacitance_per_nm,
    parallel_plate_capacitance_f,
    sakurai_tamaru_coupling,
    sakurai_tamaru_ground,
    wire_capacitance_per_nm,
)
from .field import (
    CrossSectionExtractor,
    ExtractionError,
    ExtractionResult,
    WireParasitics,
)
from .lpe import ParameterizedLPE, PatternedExtraction, RCVariation
from .profiles import ProfileError, TrapezoidalProfile, profile_for_layer
from .resistance import (
    ResistanceError,
    ResistanceResult,
    resistance_per_unit_length,
    sheet_resistance_ohm_per_sq,
    via_resistance_ohm,
    wire_resistance,
)

__all__ = [
    "CapacitanceComponents",
    "CapacitanceError",
    "CrossSectionExtractor",
    "ExtractionError",
    "ExtractionResult",
    "NeighborGeometry",
    "ParameterizedLPE",
    "PatternedExtraction",
    "ProfileError",
    "RCVariation",
    "ResistanceError",
    "ResistanceResult",
    "TrapezoidalProfile",
    "WireParasitics",
    "fringe_shielding_factor",
    "isolated_wire_capacitance_per_nm",
    "parallel_plate_capacitance_f",
    "profile_for_layer",
    "resistance_per_unit_length",
    "sakurai_tamaru_coupling",
    "sakurai_tamaru_ground",
    "sheet_resistance_ohm_per_sq",
    "via_resistance_ohm",
    "wire_capacitance_per_nm",
    "wire_resistance",
]
