"""The parameterized layout parasitic extraction (LPE) tool.

This is the reproduction of the imec in-house tool described in
Section II.A of the paper: its inputs are the technology parameters, the
multiple-patterning layer operations (CD, overlay and spacer variation)
and the target layout; it produces the target metrics (R, C, CC) or
netlists with parasitics, in an iterative loop that supports Monte-Carlo
sampling of the input variability parameters.

The central quantities the rest of the study consumes are the **relative
RC variations** of the bit line:

* ``Rvar = R(printed) / R(nominal)``
* ``Cvar = C(printed) / C(nominal)``

expressed as ratios (``1 + x``), exactly as they enter the analytical
formula (eq. 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..layout.array import SRAMArrayLayout
from ..layout.wire import NetRole, TrackPattern
from ..patterning.base import ParameterValues, PatternedResult, PatterningOption
from ..patterning.sampler import ParameterSampler
from ..technology.node import TechnologyNode
from .field import (
    BatchExtractionResult,
    CrossSectionExtractor,
    ExtractionError,
    ExtractionResult,
    WireParasitics,
)


@dataclass(frozen=True)
class RCVariation:
    """Relative R and C variation of one net, printed versus nominal.

    ``rvar`` and ``cvar`` are ratios: 1.0 means nominal, 1.10 means +10 %.
    """

    net: str
    option_name: str
    rvar: float
    cvar: float
    parameters: Dict[str, float] = field(default_factory=dict)

    @property
    def delta_r_percent(self) -> float:
        return (self.rvar - 1.0) * 100.0

    @property
    def delta_c_percent(self) -> float:
        return (self.cvar - 1.0) * 100.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.option_name}/{self.net}: "
            f"dC={self.delta_c_percent:+.2f}% dR={self.delta_r_percent:+.2f}%"
        )


@dataclass(frozen=True)
class BatchRCVariation:
    """Monte-Carlo RC variations of one net as arrays (the batched path).

    ``rvar`` and ``cvar`` are ``(N,)`` ratio arrays; ``parameter_matrix``
    holds the sampled parameter vectors (``(N, k)``, columns follow
    ``parameter_names``) so individual samples can still be inspected or
    re-printed through the scalar path.
    """

    net: str
    option_name: str
    rvar: np.ndarray
    cvar: np.ndarray
    parameter_names: Tuple[str, ...]
    parameter_matrix: np.ndarray

    def __post_init__(self) -> None:
        if self.rvar.shape != self.cvar.shape or self.rvar.ndim != 1:
            raise ExtractionError("rvar and cvar must be equally long 1-D arrays")
        if self.parameter_matrix.shape[0] != self.rvar.shape[0]:
            raise ExtractionError("parameter matrix row count must match the samples")

    def __len__(self) -> int:
        return int(self.rvar.shape[0])

    @property
    def delta_r_percent(self) -> np.ndarray:
        return (self.rvar - 1.0) * 100.0

    @property
    def delta_c_percent(self) -> np.ndarray:
        return (self.cvar - 1.0) * 100.0

    def at(self, index: int) -> RCVariation:
        """One sample as the scalar :class:`RCVariation`."""
        row = self.parameter_matrix[index]
        return RCVariation(
            net=self.net,
            option_name=self.option_name,
            rvar=float(self.rvar[index]),
            cvar=float(self.cvar[index]),
            parameters={
                name: float(row[k]) for k, name in enumerate(self.parameter_names)
            },
        )

    def __iter__(self) -> Iterator[RCVariation]:
        for index in range(len(self)):
            yield self.at(index)

    def to_list(self) -> List[RCVariation]:
        return list(self)


@dataclass
class PatternedExtraction:
    """Nominal and printed extraction of a pattern plus the derived variations."""

    option_name: str
    patterned: PatternedResult
    nominal_extraction: ExtractionResult
    printed_extraction: ExtractionResult

    def variation_for(self, net: str) -> RCVariation:
        nominal = self.nominal_extraction[net]
        printed = self.printed_extraction[net]
        if nominal.capacitance_total_f <= 0.0 or nominal.resistance_total_ohm <= 0.0:
            raise ExtractionError(f"nominal parasitics of net {net!r} are degenerate")
        return RCVariation(
            net=net,
            option_name=self.option_name,
            rvar=printed.resistance_total_ohm / nominal.resistance_total_ohm,
            cvar=printed.capacitance_total_f / nominal.capacitance_total_f,
            parameters=dict(self.patterned.parameters),
        )

    def variations(self, nets: Iterable[str]) -> Dict[str, RCVariation]:
        return {net: self.variation_for(net) for net in nets}


class ParameterizedLPE:
    """Patterning-aware parasitic extraction driver.

    Parameters
    ----------
    node:
        Technology node providing the metal stack and variation assumptions.
    layer_name:
        The layer to extract; defaults to the node's bit-line layer
        (metal1), which the paper identifies as the critical layer.
    """

    #: Number of distinct (pattern, thickness) nominal extractions kept.
    NOMINAL_CACHE_SIZE = 16

    def __init__(self, node: TechnologyNode, layer_name: Optional[str] = None) -> None:
        self.node = node
        self.layer_name = layer_name if layer_name is not None else node.bitline_layer
        self.layer = node.metal_stack.layer(self.layer_name)
        # Nominal (unvaried) extractions keyed by the pattern object and the
        # thickness delta.  TrackPattern is immutable, so keeping a strong
        # reference alongside the result makes the id()-based key safe.
        self._nominal_cache: Dict[
            Tuple[int, float], Tuple[TrackPattern, ExtractionResult]
        ] = {}

    # -- plain extraction -----------------------------------------------------

    def extract_pattern(
        self, pattern: TrackPattern, thickness_delta_nm: float = 0.0
    ) -> ExtractionResult:
        """Extract a (nominal or printed) track pattern."""
        extractor = CrossSectionExtractor(self.layer, thickness_delta_nm)
        return extractor.extract(pattern)

    def nominal_extraction(
        self, pattern: TrackPattern, thickness_delta_nm: float = 0.0
    ) -> ExtractionResult:
        """Extract the nominal pattern, memoising per (pattern, thickness).

        Every variation is a ratio against the same nominal extraction, so
        the repeated studies (Monte-Carlo loops, corner sweeps, per-corner
        ``rc_variation`` calls) share one baseline extraction instead of
        recomputing it per call.
        """
        key = (id(pattern), thickness_delta_nm)
        cached = self._nominal_cache.get(key)
        if cached is not None and cached[0] is pattern:
            return cached[1]
        result = self.extract_pattern(pattern, thickness_delta_nm)
        if len(self._nominal_cache) >= self.NOMINAL_CACHE_SIZE:
            self._nominal_cache.clear()
        self._nominal_cache[key] = (pattern, result)
        return result

    def extract_array(self, layout: SRAMArrayLayout) -> ExtractionResult:
        """Extract the nominal metal1 pattern of an SRAM array layout."""
        return self.extract_pattern(layout.metal1_pattern)

    # -- patterning-aware extraction -------------------------------------------

    def extract_with_patterning(
        self,
        pattern: TrackPattern,
        option: PatterningOption,
        parameters: ParameterValues,
        thickness_delta_nm: float = 0.0,
    ) -> PatternedExtraction:
        """Print the pattern with ``option`` at ``parameters`` and extract both views."""
        patterned = option.apply(pattern, parameters)
        nominal_extraction = self.nominal_extraction(pattern, thickness_delta_nm)
        printed_extraction = self.extract_pattern(patterned.printed, thickness_delta_nm)
        return PatternedExtraction(
            option_name=option.name,
            patterned=patterned,
            nominal_extraction=nominal_extraction,
            printed_extraction=printed_extraction,
        )

    def rc_variation(
        self,
        pattern: TrackPattern,
        option: PatterningOption,
        parameters: ParameterValues,
        net: str,
    ) -> RCVariation:
        """R/C variation of one net under one parameter assignment."""
        extraction = self.extract_with_patterning(pattern, option, parameters)
        return extraction.variation_for(net)

    # -- the iterative / Monte-Carlo loop ---------------------------------------

    def monte_carlo_variations(
        self,
        pattern: TrackPattern,
        option: PatterningOption,
        net: str,
        n_samples: int,
        seed: Optional[int] = None,
        truncate_at_three_sigma: bool = False,
    ) -> List[RCVariation]:
        """Monte-Carlo RC-variation distribution of ``net``.

        This is the "iterative loop" of the paper's tool: each iteration
        samples the patterning parameters, prints the layout, extracts it
        and stores the target metrics.
        """
        sampler = ParameterSampler(
            option,
            self.node.variations,
            seed=seed,
            truncate_at_three_sigma=truncate_at_three_sigma,
        )
        nominal_extraction = self.nominal_extraction(pattern)
        nominal = nominal_extraction[net]
        results: List[RCVariation] = []
        for sample in sampler.draw_many(n_samples):
            patterned = option.apply(pattern, sample.values)
            printed_extraction = self.extract_pattern(patterned.printed)
            printed = printed_extraction[net]
            results.append(
                RCVariation(
                    net=net,
                    option_name=option.name,
                    rvar=printed.resistance_total_ohm / nominal.resistance_total_ohm,
                    cvar=printed.capacitance_total_f / nominal.capacitance_total_f,
                    parameters=dict(sample.values),
                )
            )
        return results

    def monte_carlo_variations_batch(
        self,
        pattern: TrackPattern,
        option: PatterningOption,
        net: str,
        n_samples: int,
        seed: Optional[int] = None,
        truncate_at_three_sigma: bool = False,
    ) -> BatchRCVariation:
        """Vectorised Monte-Carlo RC-variation distribution of ``net``.

        One batched draw, one batched print and one batched extraction
        replace the N-iteration scalar loop of
        :meth:`monte_carlo_variations`; for a fixed seed the sampled
        parameters are bit-identical to the scalar loop's and the returned
        ratios agree element-wise to floating-point round-off.
        """
        return self.monte_carlo_variations_batch_multi(
            pattern,
            option,
            (net,),
            n_samples=n_samples,
            seed=seed,
            truncate_at_three_sigma=truncate_at_three_sigma,
        )[net]

    def monte_carlo_variations_batch_multi(
        self,
        pattern: TrackPattern,
        option: PatterningOption,
        nets: Sequence[str],
        n_samples: int,
        seed: Optional[int] = None,
        truncate_at_three_sigma: bool = False,
    ) -> Dict[str, BatchRCVariation]:
        """Batched Monte-Carlo variations of several nets from one draw.

        The sampling, printing and extraction — the dominant costs — run
        once for the whole net list, so callers needing e.g. the bit line
        *and* its VSS rail (the operation suite's margin twins) pay a
        single pass.  Sample ``i`` of every returned array describes the
        same printed wafer.
        """
        if not nets:
            raise ExtractionError("the net list cannot be empty")
        sampler = ParameterSampler(
            option,
            self.node.variations,
            seed=seed,
            truncate_at_three_sigma=truncate_at_three_sigma,
        )
        batch = sampler.draw_batch(n_samples)
        geometry = option.apply_batch(pattern, batch.matrix, batch.parameter_names)
        extractor = CrossSectionExtractor(self.layer)
        printed_by_net = extractor.extract_batch(geometry, nets=list(nets))
        nominal_extraction = self.nominal_extraction(pattern)
        variations: Dict[str, BatchRCVariation] = {}
        for net in nets:
            printed = printed_by_net[net]
            nominal = nominal_extraction[net]
            if nominal.capacitance_total_f <= 0.0 or nominal.resistance_total_ohm <= 0.0:
                raise ExtractionError(f"nominal parasitics of net {net!r} are degenerate")
            variations[net] = BatchRCVariation(
                net=net,
                option_name=option.name,
                rvar=printed.resistance_total_ohm / nominal.resistance_total_ohm,
                cvar=printed.capacitance_total_f / nominal.capacitance_total_f,
                parameter_names=batch.parameter_names,
                parameter_matrix=batch.matrix,
            )
        return variations

    def corner_variations(
        self,
        pattern: TrackPattern,
        option: PatterningOption,
        net: str,
        corners: Sequence[Mapping[str, float]],
    ) -> List[RCVariation]:
        """RC variations of ``net`` for an explicit list of corner assignments."""
        nominal_extraction = self.nominal_extraction(pattern)
        nominal = nominal_extraction[net]
        results = []
        for corner in corners:
            patterned = option.apply(pattern, corner)
            printed = self.extract_pattern(patterned.printed)[net]
            results.append(
                RCVariation(
                    net=net,
                    option_name=option.name,
                    rvar=printed.resistance_total_ohm / nominal.resistance_total_ohm,
                    cvar=printed.capacitance_total_f / nominal.capacitance_total_f,
                    parameters=dict(corner),
                )
            )
        return results
