"""The standardized parameter space the high-sigma engines operate in.

Every engine in this package works on a whitened coordinate system
``u = (x - mean) / std`` so that "distance from nominal" is measured in
sigmas regardless of each physical parameter's scale.  A
:class:`ParameterSpace` owns one
:class:`~repro.variability.distributions.Distribution` per named
dimension and provides:

* ``standardize`` / ``unstandardize`` — the affine map between physical
  and whitened coordinates;
* ``logpdf`` — the exact joint log density of the *target* model at
  physical points, summed across (independent) dimensions — this is the
  numerator of every importance weight;
* ``proposal_for_shift`` — a mean-shifted proposal space: continuous
  dimensions are replaced by plain normals recentred ``shift`` sigmas
  away (full support, so the likelihood ratio never divides by zero),
  discrete corner dimensions are left untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..variability.distributions import (
    CornerDistribution,
    Distribution,
    DistributionError,
    NormalDistribution,
)


@dataclass(frozen=True)
class ParameterSpace:
    """An independent joint distribution over named scalar parameters."""

    names: Tuple[str, ...]
    distributions: Tuple[Distribution, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.distributions):
            raise DistributionError(
                "need exactly one distribution per parameter name"
            )
        if not self.names:
            raise DistributionError("a parameter space cannot be empty")
        for name, dist in zip(self.names, self.distributions):
            if dist.std() <= 0.0:
                raise DistributionError(
                    f"parameter {name!r} is degenerate (zero spread); "
                    "drop it from the space instead"
                )

    @property
    def dimension(self) -> int:
        return len(self.names)

    @classmethod
    def from_samples(
        cls, names: Sequence[str], matrix: np.ndarray
    ) -> "ParameterSpace":
        """Fit an independent-normal space from pilot draws.

        ``matrix`` is (n_samples, n_dims).  This is how the study layer
        turns a pilot batch of layout-extracted variations into an
        analytic target model that both the IS estimator and the
        brute-force cross-check sample from — keeping the 3σ parity
        oracle self-consistent.
        """
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[1] != len(names):
            raise DistributionError(
                "sample matrix must be (n_samples, n_names)"
            )
        if data.shape[0] < 2:
            raise DistributionError("need at least two pilot samples to fit")
        mus = data.mean(axis=0)
        sigmas = data.std(axis=0, ddof=1)
        dists = tuple(
            NormalDistribution(mu=float(m), sigma=float(s))
            for m, s in zip(mus, sigmas)
        )
        return cls(names=tuple(names), distributions=dists)

    # -- coordinate maps -------------------------------------------------

    def _means(self) -> np.ndarray:
        return np.array([d.mean() for d in self.distributions])

    def _stds(self) -> np.ndarray:
        return np.array([d.std() for d in self.distributions])

    def standardize(self, X: np.ndarray) -> np.ndarray:
        """Physical coordinates → whitened ``u`` coordinates."""
        X = np.asarray(X, dtype=float)
        return (X - self._means()) / self._stds()

    def unstandardize(self, U: np.ndarray) -> np.ndarray:
        """Whitened ``u`` coordinates → physical coordinates."""
        U = np.asarray(U, dtype=float)
        return U * self._stds() + self._means()

    # -- densities and sampling ------------------------------------------

    def logpdf(self, X: np.ndarray) -> np.ndarray:
        """Joint log density at physical points (n, d) → (n,)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        total = np.zeros(X.shape[0])
        for j, dist in enumerate(self.distributions):
            total = total + dist.logpdf(X[:, j])
        return total

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` joint samples, one column per dimension."""
        cols = [d.sample(rng, n) for d in self.distributions]
        return np.column_stack(cols)

    # -- proposals -------------------------------------------------------

    def proposal_for_shift(
        self, u_shift: np.ndarray, inflation: float = 1.0
    ) -> "ParameterSpace":
        """The mean-shifted proposal space for a whitened shift vector.

        Continuous dimensions become *plain* normals centred
        ``mean + u_shift[j] * std`` with the target's spread — plain even
        when the target is truncated, so the proposal's support covers
        the target's and the likelihood ratio stays finite (target draws
        outside a truncated support get weight exactly zero via the
        target's ``-inf`` logpdf instead).  Discrete corner dimensions
        cannot be usefully mean-shifted and are kept as-is.

        ``inflation`` widens the proposal's spread by that factor: a
        single mean shift only covers the *most probable* failure point,
        and a curved limit surface carries failure mass away from it —
        the wider proposal reaches along the surface.
        """
        u_shift = np.asarray(u_shift, dtype=float)
        if u_shift.shape != (self.dimension,):
            raise DistributionError(
                f"shift vector must have shape ({self.dimension},)"
            )
        if inflation <= 0.0:
            raise DistributionError("the proposal inflation must be positive")
        shifted = []
        for j, dist in enumerate(self.distributions):
            if isinstance(dist, CornerDistribution):
                shifted.append(dist)
            else:
                shifted.append(
                    NormalDistribution(
                        mu=float(dist.mean() + u_shift[j] * dist.std()),
                        sigma=float(dist.std() * inflation),
                    )
                )
        return ParameterSpace(names=self.names, distributions=tuple(shifted))

    def log_weights(self, proposal, X: np.ndarray) -> np.ndarray:
        """Log importance weights ``log p_target(x) - log p_proposal(x)``.

        ``proposal`` is anything with a compatible ``logpdf`` — another
        :class:`ParameterSpace` or a :class:`MixtureProposal`.
        """
        return self.logpdf(X) - proposal.logpdf(X)


@dataclass(frozen=True)
class MixtureProposal:
    """A defensive mixture proposal ``α·target + (1−α)·shifted``.

    A pure mean-shifted proposal makes self-normalised IS unstable: the
    likelihood ratio spans hundreds of orders of magnitude across the
    proposal's own draws, so the weight normalisation is dominated by a
    handful of near-nominal samples and the effective sample size
    collapses.  Mixing the *target* back in (Hesterberg's defensive
    mixture) bounds every weight at ``1/α``: the normalisation becomes
    well-conditioned, the failure region is still covered by the shifted
    component, and the estimator's ESS stays at the order of the draw
    count even at 6σ.
    """

    target: ParameterSpace
    shifted: ParameterSpace
    alpha: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise DistributionError("the mixture weight must be in (0, 1)")
        if self.target.names != self.shifted.names:
            raise DistributionError(
                "mixture components must cover the same parameters"
            )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        n = int(n)
        n_target = int(rng.binomial(n, self.alpha))
        parts = []
        if n_target:
            parts.append(self.target.sample(rng, n_target))
        if n - n_target:
            parts.append(self.shifted.sample(rng, n - n_target))
        X = np.vstack(parts)
        rng.shuffle(X, axis=0)
        return X

    def logpdf(self, X: np.ndarray) -> np.ndarray:
        return np.logaddexp(
            math.log(self.alpha) + self.target.logpdf(X),
            math.log(1.0 - self.alpha) + self.shifted.logpdf(X),
        )


def continuous_mask(space: ParameterSpace) -> np.ndarray:
    """Boolean mask of the dimensions the shift search may move."""
    return np.array(
        [not isinstance(d, CornerDistribution) for d in space.distributions]
    )


__all__ = ["MixtureProposal", "ParameterSpace", "continuous_mask"]
