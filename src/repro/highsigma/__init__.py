"""High-sigma yield estimation: importance sampling over surrogate surfaces.

Fab-relevant failure rates live at 5-6σ, where brute-force Monte-Carlo
needs ~1e9 samples and the Gaussian-tail extrapolation of
:mod:`repro.core.yield_analysis` is an act of faith.  This package
estimates those tail probabilities directly, with three cooperating
engines:

* :mod:`~repro.highsigma.space` — an analytic parameter space over the
  :class:`~repro.variability.distributions.Distribution` family, giving
  exact log-density importance weights and mean-shifted proposals;
* :mod:`~repro.highsigma.surrogate` + :mod:`~repro.highsigma.shift` — a
  fitted quadratic response surface (with cross terms and an
  uncertainty band) used to pre-screen proposal draws, and the HL-RF
  norm-minimising search for the dominant shift vector (the most
  probable failure point) on it;
* :mod:`~repro.highsigma.estimator` — self-normalised
  importance-sampling estimates with effective-sample-size diagnostics
  and delta-method / Wilson confidence intervals.

:mod:`~repro.highsigma.study` wires them into the DOE:
:class:`~repro.highsigma.study.HighSigmaYieldStudy` runs one estimate
per (option × overlay) corner and sigma level, promoting
surrogate-uncertain proposals to real solves.  The subsystem's oracle is
parity at 3σ, where brute-force Monte-Carlo is still feasible: the IS
and MC confidence intervals must overlap (pinned by
``tests/test_highsigma.py`` and the ``--suite yield_hs`` bench).
"""

from .estimator import (
    TailEstimate,
    binomial_estimate,
    intervals_overlap,
    self_normalized_is_estimate,
)
from .shift import ShiftResult, find_dominant_shift
from .space import ParameterSpace
from .study import (
    HighSigmaCornerRow,
    HighSigmaEngine,
    HighSigmaError,
    HighSigmaYieldStudy,
)
from .surrogate import QuadraticSurrogate

__all__ = [
    "HighSigmaCornerRow",
    "HighSigmaEngine",
    "HighSigmaError",
    "HighSigmaYieldStudy",
    "ParameterSpace",
    "QuadraticSurrogate",
    "ShiftResult",
    "TailEstimate",
    "binomial_estimate",
    "find_dominant_shift",
    "intervals_overlap",
    "self_normalized_is_estimate",
]
