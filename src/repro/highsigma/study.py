"""The high-sigma yield study: engines wired to the paper's DOE.

:class:`HighSigmaEngine` is the model-agnostic core: given a
:class:`~repro.highsigma.space.ParameterSpace` (the fitted variability
model) and a batch evaluator (the "simulator"), it

1. fits a :class:`~repro.highsigma.surrogate.QuadraticSurrogate` from a
   sigma-spanning initial design (span ``highsigma.fit``),
2. finds the dominant mean shift on the surrogate with the HL-RF search
   (span ``highsigma.search``),
3. draws mean-shifted proposals, screens them on the surrogate,
   promotes the draws inside the uncertainty band to real solves — which
   fold back into the fit — and reweights everything with exact
   likelihood ratios into a self-normalised IS estimate
   (span ``highsigma.sample``).

:class:`HighSigmaYieldStudy` runs that engine per DOE corner on one of
three metric models — the paper's analytical tdp formula, a calibrated
operation response surface, or real batched circuit solves through the
``prepare``/``solve_prepared`` lanes — and cross-checks against
brute-force Monte-Carlo at low sigma, which is the subsystem's parity
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.batch import solve_prepared
from ..core.montecarlo import MonteCarloTdpStudy
from ..core.operations import OperationSimulators, create_operation, ensure_operation
from ..core.spec import HIGH_SIGMA_MODELS
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from .estimator import (
    TailEstimate,
    binomial_estimate,
    intervals_overlap,
    self_normalized_is_estimate,
)
from .shift import ShiftResult, find_dominant_shift
from .space import MixtureProposal, ParameterSpace, continuous_mask
from .surrogate import QuadraticSurrogate, initial_design

#: Failure tail per metric family: delays fail high, margins fail low.
FAIL_DIRECTIONS = ("above", "below")


class HighSigmaError(RuntimeError):
    """Raised when a high-sigma estimate cannot be produced."""


class BatchEvaluator:
    """A call-counted batch metric: ``(n, d) points -> (n,) values``.

    Every evaluation is a "real simulator call" for budget accounting,
    whatever the underlying model costs; ``max_calls`` is the hard
    ceiling the ISSUE's ≤1e5-call deliverable is enforced against.
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        max_calls: int = 100_000,
    ) -> None:
        self._fn = fn
        self.max_calls = int(max_calls)
        self.calls = 0

    @property
    def remaining(self) -> int:
        return max(self.max_calls - self.calls, 0)

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] > self.remaining:
            raise HighSigmaError(
                f"evaluator budget exhausted: {self.calls} calls used, "
                f"{X.shape[0]} more requested, limit {self.max_calls}"
            )
        self.calls += X.shape[0]
        values = np.asarray(self._fn(X), dtype=float).reshape(X.shape[0])
        return values


@dataclass(frozen=True)
class HighSigmaResult:
    """One corner × sigma-level estimate with its diagnostics."""

    estimate: TailEstimate
    shift: ShiftResult
    threshold: float
    n_proposals: int
    n_promoted: int
    n_simulator_calls: int


class HighSigmaEngine:
    """Importance sampling with surrogate screening over one metric."""

    def __init__(
        self,
        space: ParameterSpace,
        evaluator: BatchEvaluator,
        fail_direction: str = "above",
        seed: int = 2015,
        band_sigma: float = 2.0,
        proposal_inflation: float = 2.0,
    ) -> None:
        if fail_direction not in FAIL_DIRECTIONS:
            raise HighSigmaError(
                f"fail_direction must be one of {FAIL_DIRECTIONS}, "
                f"got {fail_direction!r}"
            )
        self.space = space
        self.evaluator = evaluator
        self.fail_direction = fail_direction
        self.band_sigma = float(band_sigma)
        self.proposal_inflation = float(proposal_inflation)
        self.rng = np.random.default_rng(seed)
        self.surrogate = QuadraticSurrogate(space.dimension)

    # -- failure geometry ------------------------------------------------

    def _fails(self, values: np.ndarray, threshold: float) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if self.fail_direction == "above":
            return values >= threshold
        return values <= threshold

    def _margin_fn(self, threshold: float) -> Callable[[np.ndarray], float]:
        # Margin is positive in the safe region, negative past the limit
        # surface — the sign convention the HL-RF iteration expects.
        if self.fail_direction == "above":
            return lambda u: threshold - self.surrogate.predict_one(u)
        return lambda u: self.surrogate.predict_one(u) - threshold

    def _gradient_fn(self) -> Callable[[np.ndarray], np.ndarray]:
        if self.fail_direction == "above":
            return lambda u: -self.surrogate.gradient(u)
        return lambda u: self.surrogate.gradient(u)

    # -- phase 1: surrogate fit ------------------------------------------

    def fit_surrogate(self, n_initial: int = 32) -> None:
        """Evaluate a sigma-spanning design and fit the first surrogate."""
        with span("highsigma.fit", dimension=self.space.dimension):
            U = initial_design(self.space.dimension, n_initial, self.rng)
            values = self.evaluator(self.space.unstandardize(U))
            self.surrogate.observe(U, values)
            if not self.surrogate.refit():
                raise HighSigmaError(
                    f"initial design too small for a quadratic fit: "
                    f"{self.surrogate.n_observations} points, need "
                    f"{self.surrogate.min_observations}"
                )

    # -- phase 2: dominant-shift search ----------------------------------

    def find_shift(self, threshold: float) -> ShiftResult:
        """HL-RF search for the most probable failure point.

        Runs on the surrogate (closed-form gradients), then promotes the
        found point to one real evaluation that folds back into the fit —
        the search result itself refines the surface where it matters
        most.
        """
        if not self.surrogate.is_fitted:
            self.fit_surrogate()
        with span("highsigma.search", threshold=float(threshold)):
            result = find_dominant_shift(
                self._margin_fn(threshold),
                self._gradient_fn(),
                self.space.dimension,
                movable=continuous_mask(self.space),
            )
            if result.beta > 0.0 and self.evaluator.remaining > 0:
                u_star = np.atleast_2d(result.u_star)
                values = self.evaluator(self.space.unstandardize(u_star))
                self.surrogate.observe(u_star, values)
                self.surrogate.refit()
            return result

    # -- phase 3: mean-shifted sampling ----------------------------------

    def estimate(
        self,
        threshold: float,
        n_proposals: int = 4000,
        confidence: float = 0.95,
        operation: str = "unknown",
    ) -> HighSigmaResult:
        """Importance-sampled fail probability past ``threshold``."""
        calls_before = self.evaluator.calls
        shift = self.find_shift(threshold)
        with span(
            "highsigma.sample",
            threshold=float(threshold),
            n_proposals=int(n_proposals),
        ):
            # Defensive mixture: the shifted component covers the failure
            # region, the target component keeps the self-normalisation
            # (and hence the ESS) well-conditioned.  See MixtureProposal.
            proposal = MixtureProposal(
                target=self.space,
                shifted=self.space.proposal_for_shift(
                    shift.u_star, inflation=self.proposal_inflation
                ),
            )
            X = proposal.sample(self.rng, int(n_proposals))
            U = self.space.standardize(X)
            predicted = self.surrogate.predict(U)
            indicators = self._fails(predicted, threshold).astype(float)

            # Active refinement: draws whose surrogate margin sits inside
            # the uncertainty band cannot be classified from the fit alone;
            # promote them (closest to the limit surface first, within the
            # call budget) to real solves and fold the truth back in.
            band = self.band_sigma * max(self.surrogate.residual_std, 1e-30)
            distance = np.abs(predicted - threshold)
            uncertain = np.nonzero(distance <= band)[0]
            promoted = uncertain[np.argsort(distance[uncertain])]
            promoted = promoted[: self.evaluator.remaining]
            if promoted.size:
                true_values = self.evaluator(X[promoted])
                indicators[promoted] = self._fails(
                    true_values, threshold
                ).astype(float)
                self.surrogate.observe(U[promoted], true_values)
                self.surrogate.refit()

            log_weights = self.space.log_weights(proposal, X)
            estimate = self_normalized_is_estimate(
                log_weights, indicators, confidence=confidence
            )
        n_calls = self.evaluator.calls - calls_before
        obs_metrics.record_high_sigma(
            operation=operation,
            proposals=int(n_proposals),
            promoted=int(promoted.size),
            simulator_calls=int(n_calls),
        )
        return HighSigmaResult(
            estimate=estimate,
            shift=shift,
            threshold=float(threshold),
            n_proposals=int(n_proposals),
            n_promoted=int(promoted.size),
            n_simulator_calls=int(n_calls),
        )

    # -- brute-force cross-check -----------------------------------------

    def brute_force(
        self,
        threshold: float,
        n_samples: int,
        confidence: float = 0.95,
        count_calls: bool = False,
    ) -> TailEstimate:
        """Plain Monte-Carlo under the target model (the parity oracle).

        ``count_calls=False`` (default) evaluates outside the engine's
        call budget — the cross-check is a validation instrument, not
        part of the ≤1e5-call IS deliverable.
        """
        X = self.space.sample(self.rng, int(n_samples))
        if count_calls:
            values = self.evaluator(X)
        else:
            values = np.asarray(self.evaluator._fn(X), dtype=float).reshape(
                X.shape[0]
            )
        n_fail = int(np.count_nonzero(self._fails(values, threshold)))
        return binomial_estimate(n_fail, int(n_samples), confidence=confidence)

    def metric_stats(self, n: int = 4096) -> Tuple[float, float]:
        """Surrogate mean/std of the metric under the target model.

        Used to translate sigma levels into thresholds without spending
        simulator calls; by the time this is called the surrogate has
        absorbed the initial design.
        """
        if not self.surrogate.is_fitted:
            self.fit_surrogate()
        X = self.space.sample(self.rng, int(n))
        values = self.surrogate.predict(self.space.standardize(X))
        return float(np.mean(values)), float(np.std(values, ddof=1))


# -- DOE-level study -------------------------------------------------------


@dataclass(frozen=True)
class HighSigmaCornerRow:
    """One (corner × sigma level) line of the yield_hs report."""

    operation: str
    model: str
    array_label: str
    option_name: str
    overlay_three_sigma_nm: Optional[float]
    sigma_level: float
    threshold: float
    fail_probability: float
    ci_low: float
    ci_high: float
    confidence: float
    ess: float
    beta: float
    shift_converged: bool
    n_proposals: int
    n_promoted: int
    n_simulator_calls: int
    mc_probability: Optional[float] = None
    mc_ci_low: Optional[float] = None
    mc_ci_high: Optional[float] = None
    mc_samples: Optional[int] = None
    mc_agrees: Optional[bool] = None

    @property
    def ppm(self) -> float:
        return self.fail_probability * 1e6

    @property
    def sigma_equivalent(self) -> float:
        from scipy.stats import norm

        if self.fail_probability <= 0.0:
            return float("inf")
        if self.fail_probability >= 1.0:
            return float("-inf")
        return float(norm.isf(self.fail_probability))

    def to_record(self) -> Dict[str, Any]:
        return {
            "record": "high_sigma",
            "operation": self.operation,
            "model": self.model,
            "array": self.array_label,
            "option": self.option_name,
            "overlay_three_sigma_nm": self.overlay_three_sigma_nm,
            "sigma_level": self.sigma_level,
            "threshold": self.threshold,
            "fail_probability": self.fail_probability,
            "ppm": self.ppm,
            "sigma_equivalent": self.sigma_equivalent,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
            "ess": self.ess,
            "beta": self.beta,
            "shift_converged": self.shift_converged,
            "n_proposals": self.n_proposals,
            "n_promoted": self.n_promoted,
            "n_simulator_calls": self.n_simulator_calls,
            "mc_probability": self.mc_probability,
            "mc_ci_low": self.mc_ci_low,
            "mc_ci_high": self.mc_ci_high,
            "mc_samples": self.mc_samples,
            "mc_agrees": self.mc_agrees,
        }


class HighSigmaYieldStudy:
    """yield_hs over the paper's DOE: one engine per (corner, model)."""

    def __init__(
        self,
        study: MonteCarloTdpStudy,
        operation: str = "read",
        model: str = "analytical",
        sigma_levels: Sequence[float] = (3.0, 6.0),
        threshold_percent: Optional[float] = None,
        proposals: int = 4000,
        pilot_samples: int = 512,
        surrogate_initial: int = 32,
        band_sigma: float = 2.0,
        mc_samples: int = 20000,
        mc_max_sigma: float = 3.5,
        max_calls: int = 100_000,
        confidence: float = 0.95,
        n_wordlines: int = 64,
        seed: int = 2015,
    ) -> None:
        ensure_operation(operation, error=HighSigmaError)
        if model not in HIGH_SIGMA_MODELS:
            raise HighSigmaError(
                f"model must be one of {HIGH_SIGMA_MODELS}, got {model!r}"
            )
        if model == "analytical" and operation != "read":
            raise HighSigmaError(
                "the analytical model only covers the read operation; "
                "use model='surface' or model='circuit' for "
                f"{operation!r}"
            )
        self.study = study
        self.operation_name = operation
        self.model = model
        self.sigma_levels = tuple(float(s) for s in sigma_levels)
        self.threshold_percent = threshold_percent
        self.proposals = int(proposals)
        self.pilot_samples = int(pilot_samples)
        self.surrogate_initial = int(surrogate_initial)
        self.band_sigma = float(band_sigma)
        self.mc_samples = int(mc_samples)
        self.mc_max_sigma = float(mc_max_sigma)
        self.max_calls = int(max_calls)
        self.confidence = float(confidence)
        self.n_wordlines = int(n_wordlines)
        self.seed = int(seed)
        operation_obj = create_operation(operation)
        #: Delays fail high (slow read/write), margins fail low (lost SNM).
        self.fail_direction = (
            "above" if operation_obj.metric == "delay" else "below"
        )
        self._operation = operation_obj
        self._simulators: Optional[OperationSimulators] = None
        #: Real metric evaluations spent by the last :meth:`rows` call,
        #: including surrogate-fit designs (the rows themselves only
        #: carry their estimate-phase spend).
        self.total_simulator_calls = 0

    @classmethod
    def from_spec(cls, spec) -> "HighSigmaYieldStudy":
        hs = spec.high_sigma
        study = MonteCarloTdpStudy(
            spec.technology.build(),
            doe=spec.array.to_doe(),
            n_samples=hs.pilot_samples,
            seed=spec.execution.seed,
        )
        return cls(
            study,
            operation=hs.operation,
            model=hs.model,
            sigma_levels=hs.sigma_levels,
            threshold_percent=hs.threshold_percent,
            proposals=hs.proposals,
            pilot_samples=hs.pilot_samples,
            surrogate_initial=hs.surrogate_initial,
            band_sigma=hs.band_sigma,
            mc_samples=hs.mc_samples,
            mc_max_sigma=hs.mc_max_sigma,
            max_calls=hs.max_calls,
            confidence=hs.confidence,
            n_wordlines=spec.operation.n_wordlines,
            seed=spec.execution.seed,
        )

    # -- metric models ---------------------------------------------------

    def _dimension_names(self) -> Tuple[str, ...]:
        if self.model == "analytical":
            return ("rvar", "cvar")
        return ("rvar", "cvar", "rail_rvar")

    def _simulator_bundle(self) -> OperationSimulators:
        if self._simulators is None:
            self._simulators = OperationSimulators(
                self.study.node, n_bitline_pairs=self.study.doe.n_bitline_pairs
            )
        return self._simulators

    def _metric_fn(self) -> Callable[[np.ndarray], np.ndarray]:
        """The metric in percent impact vs nominal, batched over points."""
        if self.model == "analytical":
            model = self.study.model
            n_wordlines = self.n_wordlines

            def analytical(X: np.ndarray) -> np.ndarray:
                return np.asarray(
                    model.tdp_percent(n_wordlines, X[:, 0], X[:, 1])
                )

            return analytical
        if self.model == "surface":
            surface = self.study.response_surface(
                self.operation_name, self.n_wordlines
            )

            def surface_fn(X: np.ndarray) -> np.ndarray:
                return np.asarray(
                    surface.change_percent(X[:, 0], X[:, 1], X[:, 2])
                )

            return surface_fn

        sims = self._simulator_bundle()
        operation = self._operation
        n_wordlines = self.n_wordlines
        nominal = operation.measure_nominal(sims, n_wordlines).value
        if nominal == 0.0:
            raise HighSigmaError("nominal metric is zero; no relative impact")

        def circuit_fn(X: np.ndarray) -> np.ndarray:
            prepared = [
                operation.prepare_value_with_variation(
                    sims,
                    n_wordlines,
                    float(row[0]),
                    float(row[1]),
                    rail_rvar=float(row[2]),
                )
                for row in X
            ]
            outcomes = solve_prepared(prepared)
            values = []
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    raise HighSigmaError(
                        f"promoted circuit solve failed: {outcome}"
                    ) from outcome
                values.append((outcome / nominal - 1.0) * 100.0)
            return np.asarray(values)

        return circuit_fn

    def _pilot_space(self, point) -> Tuple[ParameterSpace, np.ndarray]:
        """Fit the corner's variability model from one pilot LPE batch.

        Both the IS target density and the brute-force cross-check sample
        from this fitted model, so the 3σ parity comparison is
        self-consistent by construction.
        """
        bitline, rail = self.study.column_variation_samples_batch(point)
        columns = [np.asarray(bitline.rvar), np.asarray(bitline.cvar)]
        if self.model != "analytical":
            columns.append(np.asarray(rail.rvar))
        matrix = np.column_stack(columns)
        return ParameterSpace.from_samples(self._dimension_names(), matrix), matrix

    def _thresholds_for(
        self, engine: HighSigmaEngine, pilot_values: Optional[np.ndarray]
    ) -> List[Tuple[float, float]]:
        """(sigma_level, threshold) pairs for one corner.

        An explicit ``threshold_percent`` pins every level to the same
        absolute threshold; otherwise levels translate to
        ``mean ± sigma·std`` of the metric — exact pilot statistics when
        the model is cheap enough to evaluate the pilot batch, surrogate
        statistics for the circuit model.
        """
        if self.threshold_percent is not None:
            return [(s, float(self.threshold_percent)) for s in self.sigma_levels]
        if pilot_values is not None:
            mean = float(np.mean(pilot_values))
            std = float(np.std(pilot_values, ddof=1))
        else:
            mean, std = engine.metric_stats()
        if std <= 0.0:
            raise HighSigmaError("the metric has zero spread at this corner")
        sign = 1.0 if self.fail_direction == "above" else -1.0
        return [(s, mean + sign * s * std) for s in self.sigma_levels]

    # -- the study -------------------------------------------------------

    def corner_rows(self, point) -> List[HighSigmaCornerRow]:
        """All sigma-level estimates for one DOE corner."""
        space, pilot_matrix = self._pilot_space(point)
        metric = self._metric_fn()
        evaluator = BatchEvaluator(metric, max_calls=self.max_calls)
        engine = HighSigmaEngine(
            space,
            evaluator,
            fail_direction=self.fail_direction,
            seed=self.study._seed_for_point(point),
            band_sigma=self.band_sigma,
        )
        engine.fit_surrogate(self.surrogate_initial)
        # The pilot batch doubles as free threshold statistics whenever
        # the model is vectorised-cheap (everything but real solves).
        pilot_values = None
        if self.model != "circuit":
            pilot_values = metric(pilot_matrix)
        rows: List[HighSigmaCornerRow] = []
        for sigma_level, threshold in self._thresholds_for(engine, pilot_values):
            result = engine.estimate(
                threshold,
                n_proposals=self.proposals,
                confidence=self.confidence,
                operation=self.operation_name,
            )
            mc: Optional[TailEstimate] = None
            if sigma_level <= self.mc_max_sigma and self.model != "circuit":
                mc = engine.brute_force(
                    threshold, self.mc_samples, confidence=self.confidence
                )
            rows.append(
                HighSigmaCornerRow(
                    operation=self.operation_name,
                    model=self.model,
                    array_label=point.array_label,
                    option_name=point.option_name,
                    overlay_three_sigma_nm=point.overlay_three_sigma_nm,
                    sigma_level=float(sigma_level),
                    threshold=float(threshold),
                    fail_probability=result.estimate.probability,
                    ci_low=result.estimate.ci_low,
                    ci_high=result.estimate.ci_high,
                    confidence=self.confidence,
                    ess=result.estimate.ess,
                    beta=result.shift.beta,
                    shift_converged=result.shift.converged,
                    n_proposals=result.n_proposals,
                    n_promoted=result.n_promoted,
                    n_simulator_calls=result.n_simulator_calls,
                    mc_probability=None if mc is None else mc.probability,
                    mc_ci_low=None if mc is None else mc.ci_low,
                    mc_ci_high=None if mc is None else mc.ci_high,
                    mc_samples=None if mc is None else mc.n_samples,
                    mc_agrees=(
                        None
                        if mc is None
                        else intervals_overlap(result.estimate, mc)
                    ),
                )
            )
        # estimate() records only its own window; the surrogate design and
        # MPP promotions above must reach the counter too, or Prometheus
        # under-reports the corner's real spend.
        unattributed = evaluator.calls - sum(row.n_simulator_calls for row in rows)
        if unattributed > 0:
            obs_metrics.record_high_sigma(
                operation=self.operation_name,
                proposals=0,
                promoted=0,
                simulator_calls=int(unattributed),
            )
        self.total_simulator_calls += evaluator.calls
        return rows

    def rows(self) -> List[HighSigmaCornerRow]:
        """Every DOE corner × sigma level, in DOE order."""
        self.total_simulator_calls = 0
        rows: List[HighSigmaCornerRow] = []
        for point in self.study.doe.monte_carlo_points(
            n_wordlines=self.n_wordlines
        ):
            rows.extend(self.corner_rows(point))
        return rows


__all__ = [
    "BatchEvaluator",
    "FAIL_DIRECTIONS",
    "HIGH_SIGMA_MODELS",
    "HighSigmaCornerRow",
    "HighSigmaEngine",
    "HighSigmaError",
    "HighSigmaResult",
    "HighSigmaYieldStudy",
]
