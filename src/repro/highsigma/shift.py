"""Dominant-shift (most-probable failure point) search.

Given a margin function ``g(u)`` on the whitened space — negative in
the failure region — the most probable failure point is the point on
the limit surface ``g(u) = 0`` closest to the origin.  Its norm β is
the reliability index, and the point itself is the mean shift that
makes failures common under the proposal.

The search is the Hasofer-Lind–Rackwitz-Fiessler (HL-RF) fixed-point
iteration used throughout FORM reliability analysis:

    u_{k+1} = (∇g·u_k - g(u_k)) · ∇g / ||∇g||²

evaluated here on the fitted quadratic surrogate, so each iteration
costs a closed-form gradient, not a simulator call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ShiftResult:
    """Outcome of the dominant-shift search."""

    u_star: np.ndarray
    beta: float
    iterations: int
    converged: bool
    margin: float

    def to_dict(self) -> dict:
        return {
            "u_star": [float(v) for v in np.asarray(self.u_star)],
            "beta": float(self.beta),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "margin": float(self.margin),
        }


def find_dominant_shift(
    margin_fn: Callable[[np.ndarray], float],
    gradient_fn: Callable[[np.ndarray], np.ndarray],
    dimension: int,
    start: Optional[np.ndarray] = None,
    max_iterations: int = 60,
    tolerance: float = 1e-8,
    movable: Optional[np.ndarray] = None,
) -> ShiftResult:
    """HL-RF iteration toward the most probable failure point.

    ``movable`` masks the dimensions the shift may use (discrete corner
    axes stay at the origin).  Convergence means the iterate stopped
    moving; a vanishing gradient (flat surrogate) terminates the search
    at the current point with ``converged=False``.
    """
    if start is None:
        u = np.zeros(dimension)
    else:
        u = np.asarray(start, dtype=float).reshape(dimension).copy()
    mask = (
        np.ones(dimension, dtype=bool)
        if movable is None
        else np.asarray(movable, dtype=bool).reshape(dimension)
    )
    u[~mask] = 0.0

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        g = float(margin_fn(u))
        grad = np.asarray(gradient_fn(u), dtype=float).reshape(dimension)
        grad = np.where(mask, grad, 0.0)
        norm_sq = float(grad @ grad)
        if norm_sq <= 1e-30:
            break
        u_next = (float(grad @ u) - g) * grad / norm_sq
        u_next[~mask] = 0.0
        step = float(np.linalg.norm(u_next - u))
        u = u_next
        if step <= tolerance * max(1.0, float(np.linalg.norm(u))):
            converged = True
            break

    return ShiftResult(
        u_star=u,
        beta=float(np.linalg.norm(u)),
        iterations=iterations,
        converged=converged,
        margin=float(margin_fn(u)),
    )


__all__ = ["ShiftResult", "find_dominant_shift"]
