"""Quadratic response-surface surrogate with an uncertainty band.

This generalises :class:`repro.core.operations.OperationResponseSurface`
(first-order, three fixed axes) into a fitted quadratic with cross
terms over an arbitrary whitened parameter space: features are
``[1, u_i, u_i * u_j (i <= j)]`` and the coefficients come from a
least-squares fit of observed (u, value) pairs.

The surrogate is deliberately honest about what it does not know: the
fit's residual standard deviation defines an *uncertainty band*.  The
high-sigma engine only trusts a surrogate prediction when the predicted
margin clears the band; draws inside the band are promoted to real
batched circuit solves and folded back into the fit (active
refinement).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class SurrogateError(RuntimeError):
    """Raised when a surrogate is used before it can be fitted."""


def quadratic_features(U: np.ndarray) -> np.ndarray:
    """Feature matrix ``[1, u_i, u_i*u_j (i<=j)]`` for points (n, d)."""
    U = np.atleast_2d(np.asarray(U, dtype=float))
    n, d = U.shape
    cols = [np.ones(n)]
    for i in range(d):
        cols.append(U[:, i])
    for i in range(d):
        for j in range(i, d):
            cols.append(U[:, i] * U[:, j])
    return np.column_stack(cols)


def n_quadratic_features(dimension: int) -> int:
    return 1 + dimension + dimension * (dimension + 1) // 2


class QuadraticSurrogate:
    """A refittable quadratic surface over whitened coordinates."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise SurrogateError("surrogate dimension must be positive")
        self.dimension = int(dimension)
        self._points: List[np.ndarray] = []
        self._values: List[float] = []
        self._coef: Optional[np.ndarray] = None
        self._residual_std = 0.0

    # -- bookkeeping -----------------------------------------------------

    @property
    def n_observations(self) -> int:
        return len(self._values)

    @property
    def min_observations(self) -> int:
        """Observations needed before a fit is attempted (features + 2)."""
        return n_quadratic_features(self.dimension) + 2

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    @property
    def residual_std(self) -> float:
        """Std of fit residuals — the half-width unit of the trust band."""
        return self._residual_std

    # -- fitting ---------------------------------------------------------

    def observe(self, U: np.ndarray, values: np.ndarray) -> None:
        """Record evaluated points; call :meth:`refit` to absorb them."""
        U = np.atleast_2d(np.asarray(U, dtype=float))
        values = np.atleast_1d(np.asarray(values, dtype=float))
        if U.shape[0] != values.shape[0]:
            raise SurrogateError("points and values must pair one-to-one")
        if U.shape[1] != self.dimension:
            raise SurrogateError(
                f"expected {self.dimension}-dimensional points"
            )
        keep = np.isfinite(values) & np.all(np.isfinite(U), axis=1)
        for row, val in zip(U[keep], values[keep]):
            self._points.append(row.copy())
            self._values.append(float(val))

    def refit(self) -> bool:
        """Least-squares refit over everything observed so far.

        Returns True when a fit was produced.  Underdetermined data
        (fewer observations than features + 2) leaves any previous fit
        in place.
        """
        if self.n_observations < self.min_observations:
            return False
        U = np.vstack(self._points)
        y = np.asarray(self._values)
        F = quadratic_features(U)
        coef, _, _, _ = np.linalg.lstsq(F, y, rcond=None)
        residuals = y - F @ coef
        dof = max(len(y) - F.shape[1], 1)
        self._coef = coef
        self._residual_std = float(np.sqrt(np.sum(residuals**2) / dof))
        return True

    # -- queries ---------------------------------------------------------

    def predict(self, U: np.ndarray) -> np.ndarray:
        """Surrogate values at whitened points (n, d) → (n,)."""
        if self._coef is None:
            raise SurrogateError("surrogate is not fitted yet")
        return quadratic_features(U) @ self._coef

    def predict_one(self, u: np.ndarray) -> float:
        return float(self.predict(np.atleast_2d(u))[0])

    def gradient(self, u: np.ndarray) -> np.ndarray:
        """Analytic gradient of the fitted quadratic at one point."""
        if self._coef is None:
            raise SurrogateError("surrogate is not fitted yet")
        u = np.asarray(u, dtype=float).reshape(self.dimension)
        d = self.dimension
        coef = self._coef
        grad = coef[1 : 1 + d].copy()
        # Cross/square coefficients are laid out (i, j) with i <= j in
        # the same order quadratic_features emits them.
        k = 1 + d
        for i in range(d):
            for j in range(i, d):
                c = coef[k]
                k += 1
                if i == j:
                    grad[i] += 2.0 * c * u[i]
                else:
                    grad[i] += c * u[j]
                    grad[j] += c * u[i]
        return grad


def initial_design(
    dimension: int, n_points: int, rng: np.random.Generator
) -> np.ndarray:
    """Whitened seed points for the first surrogate fit.

    Origin, then ± axis excursions at 1σ / 3σ / 6σ (the sigma range the
    engine will be queried over), then scaled random Gaussian fill —
    enough geometry to pin curvature along every axis before any
    proposal is screened.
    """
    points = [np.zeros(dimension)]
    for radius in (1.0, 3.0, 6.0):
        for axis in range(dimension):
            e = np.zeros(dimension)
            e[axis] = radius
            points.append(e.copy())
            points.append(-e)
    while len(points) < n_points:
        points.append(rng.standard_normal(dimension) * 2.5)
    return np.vstack(points[: max(n_points, len(points))])


__all__ = [
    "QuadraticSurrogate",
    "SurrogateError",
    "initial_design",
    "n_quadratic_features",
    "quadratic_features",
]
