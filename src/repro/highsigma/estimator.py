"""Tail-probability estimators and their confidence intervals.

Two estimators share one result type:

* :func:`self_normalized_is_estimate` — the importance-sampling
  estimate ``p = Σ w_i I_i / Σ w_i`` with a delta-method variance and
  the effective sample size ``ESS = (Σw)² / Σw²`` as the health
  diagnostic (a collapsed ESS means the proposal missed the failure
  region and the interval cannot be trusted);
* :func:`binomial_estimate` — the brute-force Monte-Carlo estimate with
  a Wilson score interval, used as the 3σ parity oracle.

Probabilities are reported with σ-equivalents (``Φ⁻¹`` of the
survival probability) because that is the axis fab yield is quoted on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm


class EstimatorError(ValueError):
    """Raised for estimator inputs that cannot produce an estimate."""


@dataclass(frozen=True)
class TailEstimate:
    """A fail probability with a two-sided confidence interval."""

    probability: float
    ci_low: float
    ci_high: float
    confidence: float
    ess: float
    n_samples: int
    method: str

    @property
    def ppm(self) -> float:
        return self.probability * 1e6

    @property
    def sigma_equivalent(self) -> float:
        """The sigma level whose Gaussian tail equals this probability."""
        if self.probability <= 0.0:
            return math.inf
        if self.probability >= 1.0:
            return -math.inf
        return float(norm.isf(self.probability))

    def to_dict(self) -> dict:
        return {
            "probability": float(self.probability),
            "ci_low": float(self.ci_low),
            "ci_high": float(self.ci_high),
            "confidence": float(self.confidence),
            "ess": float(self.ess),
            "n_samples": int(self.n_samples),
            "method": self.method,
            "ppm": float(self.ppm),
            "sigma_equivalent": float(self.sigma_equivalent),
        }


def _z_for(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise EstimatorError("confidence must be in (0, 1)")
    return float(norm.isf(0.5 * (1.0 - confidence)))


def self_normalized_is_estimate(
    log_weights: np.ndarray,
    indicators: np.ndarray,
    confidence: float = 0.95,
) -> TailEstimate:
    """Self-normalised IS estimate from log weights and fail indicators.

    Log weights are shifted by their maximum before exponentiation, so
    deep-tail estimates (where every raw weight underflows) stay exact:
    the self-normalised ratio is invariant to a common log offset.
    """
    lw = np.asarray(log_weights, dtype=float)
    ind = np.asarray(indicators, dtype=float)
    if lw.shape != ind.shape or lw.ndim != 1 or lw.size == 0:
        raise EstimatorError("need matching 1-D weights and indicators")
    z = _z_for(confidence)

    finite = lw > -np.inf
    if not np.any(finite):
        raise EstimatorError("all importance weights are zero")
    shift = float(np.max(lw[finite]))
    w = np.where(finite, np.exp(lw - shift), 0.0)
    w_sum = float(np.sum(w))
    if w_sum <= 0.0:
        raise EstimatorError("all importance weights are zero")

    p = float(np.sum(w * ind) / w_sum)
    # Delta-method variance of the self-normalised ratio estimator.
    var = float(np.sum((w * (ind - p)) ** 2) / w_sum**2)
    half = z * math.sqrt(max(var, 0.0))
    ess = w_sum**2 / float(np.sum(w * w))
    return TailEstimate(
        probability=p,
        ci_low=max(p - half, 0.0),
        ci_high=min(p + half, 1.0),
        confidence=confidence,
        ess=float(ess),
        n_samples=int(lw.size),
        method="importance_sampling",
    )


def binomial_estimate(
    n_fail: int, n_total: int, confidence: float = 0.95
) -> TailEstimate:
    """Wilson score interval for a brute-force Monte-Carlo fail count."""
    if n_total <= 0:
        raise EstimatorError("need at least one sample")
    if not 0 <= n_fail <= n_total:
        raise EstimatorError("fail count must lie in [0, n_total]")
    z = _z_for(confidence)
    p_hat = n_fail / n_total
    denom = 1.0 + z * z / n_total
    centre = (p_hat + z * z / (2 * n_total)) / denom
    half = (
        z
        * math.sqrt(
            p_hat * (1.0 - p_hat) / n_total + z * z / (4.0 * n_total**2)
        )
        / denom
    )
    return TailEstimate(
        probability=p_hat,
        ci_low=max(centre - half, 0.0),
        ci_high=min(centre + half, 1.0),
        confidence=confidence,
        ess=float(n_total),
        n_samples=int(n_total),
        method="monte_carlo",
    )


def intervals_overlap(a: TailEstimate, b: TailEstimate) -> bool:
    """Whether two estimates agree within their combined intervals."""
    return a.ci_low <= b.ci_high and b.ci_low <= a.ci_high


__all__ = [
    "EstimatorError",
    "TailEstimate",
    "binomial_estimate",
    "intervals_overlap",
    "self_normalized_is_estimate",
]
