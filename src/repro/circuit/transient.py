"""Transient analysis.

A backward-Euler (optionally trapezoidal) time-stepping solver with Newton
iteration at every step and a simple adaptive step-size controller:

* a step that converges quickly lets the next step grow;
* a step that fails to converge is retried with half the step size;
* an optional stop condition (a callable on the node voltages) ends the
  simulation early — the SRAM read harness uses it to stop as soon as the
  sense threshold is reached instead of simulating a fixed window.

Backward Euler is the default because the bit-line discharge is a heavily
damped RC problem where BE's numerical damping is harmless and its
robustness is welcome; trapezoidal integration is available for accuracy
studies (see the integration-method ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..obs.convergence import record_convergence, record_step_rejections
from ..obs.trace import span
from .dc import ConvergenceError, NewtonOptions, rescue_level
from .mna import CachedFactorSolver, JacobianTemplate, MNAAssembler
from .netlist import Circuit
from .waveform import TransientResult

#: Signature of an early-stop predicate: (time_s, node-voltage dict) → bool.
StopCondition = Callable[[float, Dict[str, float]], bool]


@dataclass
class TransientOptions:
    """Tuning knobs of the transient solver."""

    t_stop_s: float = 1e-9
    dt_initial_s: float = 1e-13
    dt_min_s: float = 1e-16
    dt_max_s: float = 5e-12
    dt_growth: float = 1.3
    dt_shrink: float = 0.5
    method: str = "backward-euler"          # or "trapezoidal"
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    max_steps: int = 200_000
    record_nodes: Optional[List[str]] = None  # None = record every node

    def __post_init__(self) -> None:
        if self.t_stop_s <= 0.0:
            raise ValueError("t_stop must be positive")
        if not 0.0 < self.dt_min_s <= self.dt_initial_s <= self.dt_max_s:
            raise ValueError(
                "time steps must satisfy 0 < dt_min <= dt_initial <= dt_max"
            )
        if self.dt_growth <= 1.0:
            raise ValueError("dt_growth must exceed 1")
        if not 0.0 < self.dt_shrink < 1.0:
            raise ValueError("dt_shrink must be in (0, 1)")
        if self.method not in ("backward-euler", "trapezoidal"):
            raise ValueError("method must be 'backward-euler' or 'trapezoidal'")


class TransientSolver:
    """Time-domain solver for a fixed circuit."""

    def __init__(self, circuit: Circuit, options: Optional[TransientOptions] = None,
                 gmin_s: float = 1e-12,
                 jacobian_like: Optional[JacobianTemplate] = None) -> None:
        self.circuit = circuit
        self.options = options if options is not None else TransientOptions()
        self.assembler = MNAAssembler(circuit, gmin_s=gmin_s)
        # Shared factorisation cache: the LU of (G + C/dt) is reused across
        # iterations and steps until dt or the device stamps change.
        # ``jacobian_like`` lets callers donate the CSC structure of a
        # previously solved same-topology circuit (e.g. the same RC ladder
        # at a different patterning corner) so only the values are rebuilt.
        self.solver_cache = CachedFactorSolver(self.assembler, like=jacobian_like)
        # Set when a time step hits an exactly singular system; surfaces in
        # the ConvergenceError message so failures classify correctly.
        self._singular_seen = False

    # -- single implicit step -----------------------------------------------------

    def _newton_step(
        self,
        x_prev: np.ndarray,
        time_s: float,
        dt_s: float,
        x_guess: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Solve one implicit time step; returns None when Newton fails."""
        assembler = self.assembler
        options = self.options.newton
        solver = self.solver_cache
        g_matrix = assembler.conductance_matrix
        c_matrix = assembler.capacitance_matrix
        # C·x_prev as a vector op — no per-step sparse scalar division.
        c_dot_prev_over_dt = c_matrix.dot(x_prev) / dt_s
        b_now = assembler.source_vector(time_s)

        if self.options.method == "trapezoidal":
            # Trapezoidal: C (x−x_prev)/dt = −0.5 [f(x, t) + f(x_prev, t_prev)]
            # Rearranged into Newton form with an extra history term.
            c_factor = 2.0 / dt_s
            b_prev = assembler.source_vector(time_s - dt_s)
            stamp_prev = assembler.nonlinear_stamp(x_prev)
            history = (
                c_dot_prev_over_dt * 2.0
                - g_matrix.dot(x_prev)
                - stamp_prev.residual
                + b_prev
            )
            rhs_const = b_now + history
        else:
            c_factor = 1.0 / dt_s
            rhs_const = b_now + c_dot_prev_over_dt
        static = solver.static_matrix(c_factor)

        x = x_guess.copy()
        for _iteration in range(options.max_iterations):
            stamp = assembler.nonlinear_stamp(x)
            residual = static.dot(x) + stamp.residual - rhs_const
            max_residual = float(np.max(np.abs(residual))) if residual.size else 0.0
            if max_residual < options.abs_tolerance_a:
                return x
            try:
                delta = solver.solve(c_factor, stamp, -residual)
            except RuntimeError:
                self._singular_seen = True
                return None
            delta = np.asarray(delta).ravel()
            if not np.all(np.isfinite(delta)):
                return None
            node_delta = delta[: assembler.n_nodes]
            max_step = float(np.max(np.abs(node_delta))) if node_delta.size else 0.0
            scale = 1.0
            if max_step > options.max_voltage_step_v > 0.0:
                scale = options.max_voltage_step_v / max_step
            x = x + scale * delta
        # One last residual check with the final iterate.
        stamp = assembler.nonlinear_stamp(x)
        residual = static.dot(x) + stamp.residual - rhs_const
        if float(np.max(np.abs(residual))) < options.abs_tolerance_a * 100.0:
            return x
        return None

    # -- full transient --------------------------------------------------------------

    def run(
        self,
        initial_voltages: Optional[Dict[str, float]] = None,
        stop_condition: Optional[StopCondition] = None,
    ) -> TransientResult:
        """Run the transient analysis.

        Parameters
        ----------
        initial_voltages:
            Node voltages at ``t = 0`` (UIC-style start).  Nodes not listed
            start at 0 V; voltage-source nodes are driven from the first
            step onwards regardless.
        stop_condition:
            Optional predicate evaluated after every accepted step; the
            simulation ends as soon as it returns true.
        """
        # One span for the whole analysis: _newton_step fires thousands
        # of times per run, so per-step spans would swamp the trace.
        # Convergence telemetry follows the same rule — one histogram
        # observation and one rejection-counter add per run, never per
        # step.
        with span("solver.transient") as tr_span:
            rejections = 0
            try:
                result, steps, rejections = self._run(
                    initial_voltages, stop_condition
                )
            except ConvergenceError:
                record_convergence("transient", 0, False)
                raise
            finally:
                record_step_rejections("transient", rejections)
            tr_span.annotate(
                steps=steps, rejected=rejections, stop=result.stop_reason
            )
            record_convergence("transient", steps, True)
            return result

    def _run(
        self,
        initial_voltages: Optional[Dict[str, float]],
        stop_condition: Optional[StopCondition],
    ) -> "tuple[TransientResult, int, int]":
        """Run the time loop; returns (result, accepted steps, rejections)."""
        options = self.options
        assembler = self.assembler

        x = assembler.initial_solution(initial_voltages)
        record_nodes = (
            options.record_nodes if options.record_nodes is not None else assembler.node_names
        )
        for node in record_nodes:
            assembler.index_of(node)  # raises early for typos

        times: List[float] = [0.0]
        history: Dict[str, List[float]] = {
            node: [float(x[assembler.index_of(node)]) if assembler.index_of(node) is not None else 0.0]
            for node in record_nodes
        }

        time_s = 0.0
        dt_s = options.dt_initial_s
        stop_reason = "tstop"
        steps = 0
        rejections = 0
        # Item-retry rescue: each escalation level buys a larger accepted-
        # step budget and a lower dt floor, so a retry of an item that died
        # on budget exhaustion or step underflow actually tries harder.
        level = rescue_level()
        max_steps = options.max_steps * (1 + level)
        dt_min_s = options.dt_min_s / (10.0 ** level)

        # ``steps`` counts *accepted* steps only: a rejected (non-converged)
        # step is retried at half the size without consuming budget, so
        # step-halving near stiff corners cannot exhaust ``max_steps``
        # spuriously.  Rejections are still bounded — each one shrinks dt
        # and the solver raises once dt falls below ``dt_min_s``.
        while time_s < options.t_stop_s:
            if steps >= max_steps:
                raise ConvergenceError(
                    f"transient exceeded {max_steps} accepted steps "
                    f"before t_stop (reached t={time_s:.3e} s of "
                    f"{options.t_stop_s:.3e} s)"
                )
            dt_s = min(dt_s, options.t_stop_s - time_s)
            solution = self._newton_step(x, time_s + dt_s, dt_s, x)
            if solution is None:
                rejections += 1
                dt_s *= options.dt_shrink
                if dt_s < dt_min_s:
                    singular_note = (
                        " after a singular Jacobian was encountered"
                        if self._singular_seen
                        else ""
                    )
                    raise ConvergenceError(
                        f"transient step at t={time_s:.3e} s failed below the "
                        f"minimum step size ({dt_min_s:.1e} s){singular_note}"
                    )
                continue

            steps += 1
            time_s += dt_s
            x = solution
            times.append(time_s)
            voltages_now: Dict[str, float] = {}
            for node in record_nodes:
                index = assembler.index_of(node)
                value = 0.0 if index is None else float(x[index])
                history[node].append(value)
                voltages_now[node] = value

            if stop_condition is not None and stop_condition(time_s, voltages_now):
                stop_reason = "stop-condition"
                break

            dt_s = min(dt_s * options.dt_growth, options.dt_max_s)

        result = TransientResult(
            times_s=np.asarray(times),
            voltages={node: np.asarray(values) for node, values in history.items()},
            converged=True,
            stop_reason=stop_reason,
        )
        return result, steps, rejections


def run_transient(
    circuit: Circuit,
    options: Optional[TransientOptions] = None,
    initial_voltages: Optional[Dict[str, float]] = None,
    stop_condition: Optional[StopCondition] = None,
) -> TransientResult:
    """Convenience wrapper: build a solver and run it once."""
    solver = TransientSolver(circuit, options=options)
    return solver.run(initial_voltages=initial_voltages, stop_condition=stop_condition)
