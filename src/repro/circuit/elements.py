"""Linear circuit elements and source waveforms.

Every element knows how to *stamp* itself into the MNA matrices provided
by :class:`repro.circuit.mna.MNAStamper`:

* resistors and capacitors stamp constant conductance / capacitance;
* independent sources stamp time-dependent right-hand-side entries (and an
  extra branch-current unknown for voltage sources);
* the nonlinear MOSFET lives in :mod:`repro.circuit.mosfet` and stamps a
  linearised companion model per Newton iteration.

Units are SI: ohm, farad, volt, ampere, second.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class ElementError(ValueError):
    """Raised for ill-defined circuit elements."""


class Waveform(abc.ABC):
    """A time-dependent source value."""

    @abc.abstractmethod
    def value_at(self, time_s: float) -> float:
        """Source value at ``time_s`` (seconds)."""

    def initial_value(self) -> float:
        return self.value_at(0.0)


@dataclass(frozen=True)
class DC(Waveform):
    """A constant source value."""

    level: float = 0.0

    def value_at(self, time_s: float) -> float:
        return self.level


@dataclass(frozen=True)
class PiecewiseLinear(Waveform):
    """A piecewise-linear waveform defined by (time, value) breakpoints."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ElementError("a PWL waveform needs at least one point")
        times = [time for time, _value in self.points]
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ElementError("PWL breakpoints must be in non-decreasing time order")

    def value_at(self, time_s: float) -> float:
        times = [time for time, _value in self.points]
        values = [value for _time, value in self.points]
        if time_s <= times[0]:
            return values[0]
        if time_s >= times[-1]:
            return values[-1]
        index = bisect.bisect_right(times, time_s) - 1
        t0, v0 = self.points[index]
        t1, v1 = self.points[index + 1]
        if t1 == t0:
            return v1
        fraction = (time_s - t0) / (t1 - t0)
        return v0 + fraction * (v1 - v0)


@dataclass(frozen=True)
class Pulse(Waveform):
    """A single or repeating pulse (SPICE-style PULSE source).

    Parameters follow the SPICE convention: initial value, pulsed value,
    delay, rise time, fall time, pulse width, period (0 = single pulse).
    """

    initial: float
    pulsed: float
    delay_s: float = 0.0
    rise_s: float = 1e-12
    fall_s: float = 1e-12
    width_s: float = 1e-9
    period_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rise_s < 0.0 or self.fall_s < 0.0 or self.width_s < 0.0:
            raise ElementError("pulse rise/fall/width cannot be negative")
        if self.period_s < 0.0:
            raise ElementError("pulse period cannot be negative")

    def value_at(self, time_s: float) -> float:
        local = time_s - self.delay_s
        if local < 0.0:
            return self.initial
        if self.period_s > 0.0:
            local = local % self.period_s
        if local < self.rise_s:
            return self.initial + (self.pulsed - self.initial) * (local / self.rise_s)
        local -= self.rise_s
        if local < self.width_s:
            return self.pulsed
        local -= self.width_s
        if local < self.fall_s:
            return self.pulsed + (self.initial - self.pulsed) * (local / self.fall_s)
        return self.initial


class CircuitElement(abc.ABC):
    """Common interface of all circuit elements."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ElementError("element name cannot be empty")
        self.name = name

    @abc.abstractmethod
    def nodes(self) -> Tuple[str, ...]:
        """The node names the element connects to."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} {self.nodes()}>"


class TwoTerminal(CircuitElement):
    """An element with exactly two terminals (positive, negative)."""

    def __init__(self, name: str, positive: str, negative: str) -> None:
        super().__init__(name)
        if positive == negative:
            raise ElementError(
                f"element {name!r}: both terminals connect to node {positive!r}"
            )
        self.positive = positive
        self.negative = negative

    def nodes(self) -> Tuple[str, ...]:
        return (self.positive, self.negative)


class Resistor(TwoTerminal):
    """A linear resistor."""

    def __init__(self, name: str, positive: str, negative: str, resistance_ohm: float) -> None:
        super().__init__(name, positive, negative)
        if resistance_ohm <= 0.0:
            raise ElementError(f"resistor {name!r}: resistance must be positive")
        self.resistance_ohm = resistance_ohm

    @property
    def conductance_s(self) -> float:
        return 1.0 / self.resistance_ohm


class Capacitor(TwoTerminal):
    """A linear capacitor with an optional initial voltage."""

    def __init__(
        self,
        name: str,
        positive: str,
        negative: str,
        capacitance_f: float,
        initial_voltage_v: Optional[float] = None,
    ) -> None:
        super().__init__(name, positive, negative)
        if capacitance_f < 0.0:
            raise ElementError(f"capacitor {name!r}: capacitance cannot be negative")
        self.capacitance_f = capacitance_f
        self.initial_voltage_v = initial_voltage_v


class VoltageSource(TwoTerminal):
    """An independent voltage source with a waveform."""

    def __init__(
        self,
        name: str,
        positive: str,
        negative: str,
        waveform: Waveform,
    ) -> None:
        super().__init__(name, positive, negative)
        self.waveform = waveform

    @classmethod
    def dc(cls, name: str, positive: str, negative: str, level_v: float) -> "VoltageSource":
        return cls(name, positive, negative, DC(level_v))

    def value_at(self, time_s: float) -> float:
        return self.waveform.value_at(time_s)


class CurrentSource(TwoTerminal):
    """An independent current source (current flows from positive to negative)."""

    def __init__(
        self,
        name: str,
        positive: str,
        negative: str,
        waveform: Waveform,
    ) -> None:
        super().__init__(name, positive, negative)
        self.waveform = waveform

    @classmethod
    def dc(cls, name: str, positive: str, negative: str, level_a: float) -> "CurrentSource":
        return cls(name, positive, negative, DC(level_a))

    def value_at(self, time_s: float) -> float:
        return self.waveform.value_at(time_s)
