"""SPICE-level circuit simulation substrate.

Modified-nodal-analysis assembly, Newton DC operating point, adaptive
backward-Euler / trapezoidal transient analysis, an alpha-power-law FinFET
compact model, waveform measurements and SPICE netlist I/O.
"""

from .dc import (
    ConvergenceError,
    DCResult,
    DCSweepResult,
    NewtonOptions,
    dc_operating_point,
    dc_sweep,
)
from .elements import (
    DC,
    Capacitor,
    CircuitElement,
    CurrentSource,
    ElementError,
    PiecewiseLinear,
    Pulse,
    Resistor,
    TwoTerminal,
    VoltageSource,
    Waveform,
)
from .mna import (
    DEFAULT_GMIN_S,
    CachedFactorSolver,
    JacobianTemplate,
    MNAAssembler,
    MNAError,
    NonlinearStamp,
)
from .mosfet import MOSFET, OperatingPoint
from .netlist import Circuit, GROUND_NAMES, NetlistError, is_ground
from .spice_io import SpiceFormatError, read_spice, write_spice
from .transient import (
    StopCondition,
    TransientOptions,
    TransientSolver,
    run_transient,
)
from .waveform import MeasurementError, TransientResult

__all__ = [
    "Capacitor",
    "Circuit",
    "CircuitElement",
    "ConvergenceError",
    "CurrentSource",
    "DC",
    "DCResult",
    "DCSweepResult",
    "DEFAULT_GMIN_S",
    "ElementError",
    "GROUND_NAMES",
    "CachedFactorSolver",
    "JacobianTemplate",
    "MNAAssembler",
    "MNAError",
    "MOSFET",
    "MeasurementError",
    "NetlistError",
    "NewtonOptions",
    "NonlinearStamp",
    "OperatingPoint",
    "PiecewiseLinear",
    "Pulse",
    "Resistor",
    "SpiceFormatError",
    "StopCondition",
    "TransientOptions",
    "TransientResult",
    "TransientSolver",
    "TwoTerminal",
    "VoltageSource",
    "Waveform",
    "dc_operating_point",
    "dc_sweep",
    "is_ground",
    "read_spice",
    "run_transient",
    "write_spice",
]
