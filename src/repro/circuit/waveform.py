"""Transient-simulation results and waveform measurements.

A :class:`TransientResult` stores the accepted time points and the node
voltages at each point, and offers the measurements the SRAM study needs:
threshold-crossing times and differential (sense-amplifier style)
crossing times, both with linear interpolation between time points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


class MeasurementError(ValueError):
    """Raised when a waveform measurement cannot be evaluated."""


@dataclass
class TransientResult:
    """Voltages versus time for every circuit node.

    Attributes
    ----------
    times_s:
        Accepted simulation time points (seconds), strictly increasing.
    voltages:
        Mapping node name → array of voltages, one entry per time point.
    converged:
        Whether every accepted step converged (the solver raises otherwise,
        so this is informational).
    stop_reason:
        Why the simulation ended: ``"tstop"``, ``"stop-condition"``.
    """

    times_s: np.ndarray
    voltages: Dict[str, np.ndarray]
    converged: bool = True
    stop_reason: str = "tstop"

    def __post_init__(self) -> None:
        self.times_s = np.asarray(self.times_s, dtype=float)
        if self.times_s.ndim != 1 or self.times_s.size == 0:
            raise MeasurementError("a transient result needs at least one time point")
        for node, values in self.voltages.items():
            array = np.asarray(values, dtype=float)
            if array.shape != self.times_s.shape:
                raise MeasurementError(
                    f"node {node!r}: waveform length {array.shape} does not match "
                    f"time axis {self.times_s.shape}"
                )
            self.voltages[node] = array

    # -- access -----------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return list(self.voltages)

    @property
    def end_time_s(self) -> float:
        return float(self.times_s[-1])

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node]
        except KeyError:
            raise MeasurementError(
                f"node {node!r} was not recorded; recorded nodes: {self.nodes[:20]}"
            ) from None

    def voltage_at(self, node: str, time_s: float) -> float:
        """Voltage of ``node`` at ``time_s`` (linear interpolation)."""
        waveform = self.voltage(node)
        return float(np.interp(time_s, self.times_s, waveform))

    def final_voltage(self, node: str) -> float:
        return float(self.voltage(node)[-1])

    # -- measurements --------------------------------------------------------------

    def crossing_time_s(
        self,
        node: str,
        level_v: float,
        direction: str = "falling",
        start_time_s: float = 0.0,
    ) -> Optional[float]:
        """First time ``node`` crosses ``level_v`` in the given direction.

        Returns ``None`` when the waveform never crosses the level after
        ``start_time_s``.
        """
        if direction not in ("rising", "falling"):
            raise MeasurementError("direction must be 'rising' or 'falling'")
        values = self.voltage(node)
        times = self.times_s
        for index in range(1, len(times)):
            if times[index] < start_time_s:
                continue
            previous, current = values[index - 1], values[index]
            if direction == "falling" and previous > level_v >= current:
                pass
            elif direction == "rising" and previous < level_v <= current:
                pass
            else:
                continue
            if current == previous:
                return float(times[index])
            fraction = (level_v - previous) / (current - previous)
            return float(times[index - 1] + fraction * (times[index] - times[index - 1]))
        return None

    def differential_crossing_time_s(
        self,
        node_a: str,
        node_b: str,
        threshold_v: float,
        start_time_s: float = 0.0,
    ) -> Optional[float]:
        """First time ``|V(node_a) − V(node_b)|`` reaches ``threshold_v``.

        This is the sense-amplifier firing condition of the paper
        (``|Vbl − Vblb| = 0.07 V``).
        """
        if threshold_v <= 0.0:
            raise MeasurementError("the differential threshold must be positive")
        difference = np.abs(self.voltage(node_a) - self.voltage(node_b))
        times = self.times_s
        for index in range(1, len(times)):
            if times[index] < start_time_s:
                continue
            previous, current = difference[index - 1], difference[index]
            if previous < threshold_v <= current:
                if current == previous:
                    return float(times[index])
                fraction = (threshold_v - previous) / (current - previous)
                return float(
                    times[index - 1] + fraction * (times[index] - times[index - 1])
                )
        return None

    def crossover_time_s(
        self,
        node_a: str,
        node_b: str,
        start_time_s: float = 0.0,
    ) -> Optional[float]:
        """First time ``V(node_a)`` and ``V(node_b)`` cross each other.

        This is the cell-flip instant of a write: the internal ``q`` and
        ``qb`` waveforms start complementary, converge and swap order.
        Returns ``None`` when the difference never changes sign after
        ``start_time_s``.
        """
        difference = self.voltage(node_a) - self.voltage(node_b)
        times = self.times_s
        for index in range(1, len(times)):
            if times[index] < start_time_s:
                continue
            previous, current = difference[index - 1], difference[index]
            if previous == 0.0:
                return float(times[index - 1])
            if previous * current > 0.0:
                continue
            fraction = (0.0 - previous) / (current - previous)
            return float(
                times[index - 1] + fraction * (times[index] - times[index - 1])
            )
        return None

    def delay_between(
        self,
        trigger_node: str,
        trigger_level_v: float,
        target_node: str,
        target_level_v: float,
        trigger_direction: str = "rising",
        target_direction: str = "falling",
    ) -> Optional[float]:
        """Classic SPICE ``.measure TRIG ... TARG ...`` style delay."""
        trigger = self.crossing_time_s(trigger_node, trigger_level_v, trigger_direction)
        if trigger is None:
            return None
        target = self.crossing_time_s(
            target_node, target_level_v, target_direction, start_time_s=trigger
        )
        if target is None:
            return None
        return target - trigger

    def sample(self, node: str, times_s: Sequence[float]) -> np.ndarray:
        """Resample a node waveform onto an arbitrary time grid."""
        return np.interp(np.asarray(times_s, dtype=float), self.times_s, self.voltage(node))
