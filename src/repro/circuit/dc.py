"""DC operating-point analysis.

Newton-Raphson on the static MNA system

    F(x) = G·x + I_nl(x) − b = 0

with a damped update and a gmin-stepping fallback for stubborn circuits
(large gmin makes the system nearly linear; it is then reduced in decades
while re-converging, a standard SPICE continuation strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .mna import CachedFactorSolver, MNAAssembler, MNAError
from .netlist import Circuit


class ConvergenceError(RuntimeError):
    """Raised when the DC operating point cannot be found."""


@dataclass
class DCResult:
    """Result of a DC operating-point analysis."""

    voltages: Dict[str, float]
    iterations: int
    converged: bool
    max_residual_a: float

    def voltage(self, node: str) -> float:
        try:
            return self.voltages[node]
        except KeyError:
            raise MNAError(f"node {node!r} not in the DC solution") from None


@dataclass
class NewtonOptions:
    """Newton-iteration tuning knobs shared by the DC and transient solvers."""

    max_iterations: int = 100
    abs_tolerance_a: float = 1e-9
    rel_tolerance: float = 1e-6
    damping: float = 1.0
    max_voltage_step_v: float = 0.3


def _newton_solve(
    assembler: MNAAssembler,
    b: np.ndarray,
    x0: np.ndarray,
    options: NewtonOptions,
) -> tuple[np.ndarray, int, bool, float]:
    """Newton iteration on ``G x + I_nl(x) = b`` starting from ``x0``.

    The linear solves go through a :class:`CachedFactorSolver`, so the LU
    factorisation of ``G`` is computed once and reused for every iteration
    of a linear circuit (and whenever the device stamps are unchanged).
    """
    solver = CachedFactorSolver(assembler)
    g_matrix = assembler.conductance_matrix
    x = x0.copy()
    max_residual = float("inf")
    for iteration in range(1, options.max_iterations + 1):
        stamp = assembler.nonlinear_stamp(x)
        residual = g_matrix.dot(x) + stamp.residual - b
        max_residual = float(np.max(np.abs(residual))) if residual.size else 0.0
        if max_residual < options.abs_tolerance_a:
            return x, iteration, True, max_residual
        try:
            delta = solver.solve(0.0, stamp, -residual)
        except RuntimeError:
            # Exactly singular Jacobian at this gmin: report non-convergence
            # so the caller's gmin-stepping fallback can regularise and retry
            # instead of aborting the whole operating-point search.
            return x, iteration, False, max_residual
        delta = np.asarray(delta).ravel()
        # Limit the per-iteration voltage step for robustness.
        node_delta = delta[: assembler.n_nodes]
        max_step = float(np.max(np.abs(node_delta))) if node_delta.size else 0.0
        scale = options.damping
        if max_step > options.max_voltage_step_v > 0.0:
            scale *= options.max_voltage_step_v / max_step
        x = x + scale * delta
        # Convergence on the update as well (helps linear circuits finish in
        # one extra iteration).
        if max_step * scale < options.rel_tolerance * max(1.0, float(np.max(np.abs(x[: assembler.n_nodes]), initial=0.0))):
            stamp = assembler.nonlinear_stamp(x)
            residual = g_matrix.dot(x) + stamp.residual - b
            max_residual = float(np.max(np.abs(residual))) if residual.size else 0.0
            if max_residual < options.abs_tolerance_a * 10.0:
                return x, iteration, True, max_residual
    return x, options.max_iterations, False, max_residual


def dc_operating_point(
    circuit: Circuit,
    initial_voltages: Optional[Dict[str, float]] = None,
    options: Optional[NewtonOptions] = None,
    gmin_s: float = 1e-12,
) -> DCResult:
    """Find the DC operating point of a circuit.

    Parameters
    ----------
    circuit:
        The circuit to solve; capacitors are open in DC.
    initial_voltages:
        Optional initial guess per node (greatly helps bistable circuits
        such as the SRAM cell pick the intended state).
    options:
        Newton options.
    gmin_s:
        Baseline gmin; the gmin-stepping fallback starts three decades
        higher when plain Newton fails.
    """
    chosen_options = options if options is not None else NewtonOptions()

    for gmin_attempt in (gmin_s, gmin_s * 1e3, gmin_s * 1e6):
        assembler = MNAAssembler(circuit, gmin_s=gmin_attempt)
        b = assembler.source_vector(0.0)
        x0 = assembler.initial_solution(initial_voltages)
        # Seed the voltage-source branch targets so the first iteration does
        # not start from a wildly inconsistent point.
        for offset, source in enumerate(assembler.voltage_sources):
            x0[assembler.n_nodes + offset] = 0.0
        solution, iterations, converged, max_residual = _newton_solve(
            assembler, b, x0, chosen_options
        )
        if converged and gmin_attempt == gmin_s:
            return DCResult(
                voltages=assembler.solution_to_dict(solution),
                iterations=iterations,
                converged=True,
                max_residual_a=max_residual,
            )
        if converged:
            # Found a solution at elevated gmin: walk gmin back down using the
            # converged solution as the new starting point.
            current = solution
            for step_gmin in (gmin_attempt / 10.0, gmin_attempt / 100.0, gmin_s):
                step_assembler = MNAAssembler(circuit, gmin_s=step_gmin)
                b = step_assembler.source_vector(0.0)
                current, iterations, converged, max_residual = _newton_solve(
                    step_assembler, b, current, chosen_options
                )
                if not converged:
                    break
            if converged:
                return DCResult(
                    voltages=step_assembler.solution_to_dict(current),
                    iterations=iterations,
                    converged=True,
                    max_residual_a=max_residual,
                )

    raise ConvergenceError(
        "DC operating point did not converge "
        f"(last max residual {max_residual:.3e} A)"
    )
