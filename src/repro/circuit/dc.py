"""DC operating-point and swept-source (continuation) analysis.

Newton-Raphson on the static MNA system

    F(x) = G·x + I_nl(x) − b = 0

with a damped update and two continuation fallbacks for stubborn circuits:

* **gmin stepping** — a large gmin makes the system nearly linear; it is
  then reduced in decades while re-converging (the standard SPICE
  strategy);
* **source stepping** — every independent source is ramped from zero to
  its full value, re-converging at each step from the previous solution.
  This is what rescues bistable circuits (the cross-coupled SRAM cell)
  started from a flat 0 V guess, where plain Newton and gmin stepping can
  both stall on the unstable ridge between the two states.

:func:`dc_sweep` builds on the same machinery: it sweeps the DC value of
one voltage source across a grid, warm-starting every point from the
previous solution.  That continuation is what the SRAM noise-margin
butterfly curves are traced with.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..obs.convergence import (
    record_convergence,
    record_rescue,
    residual_recorder,
)
from ..obs.trace import span
from .mna import CachedFactorSolver, MNAAssembler, MNAError
from .netlist import Circuit


class ConvergenceError(RuntimeError):
    """Raised when the DC operating point cannot be found."""


# -- retry rescue ladder ----------------------------------------------------------------
#
# When the campaign engine retries a failed work item it escalates the
# solver's robustness instead of repeating the identical attempt: a
# larger Newton iteration budget, and a small deterministic jitter on the
# caller's initial guess so a retry does not start on exactly the
# unstable ridge that defeated the first attempt.  The escalation level
# is thread-local state (set via :func:`solver_rescue`) rather than a
# parameter, because the solver sits many call layers below the retry
# loop (campaign -> operation -> simulator -> transient/DC) and every
# intermediate layer would otherwise have to forward it.

_rescue_state = threading.local()
_singular_state = threading.local()


def rescue_level() -> int:
    """The active escalation level (0 = normal solve, no escalation)."""
    return getattr(_rescue_state, "level", 0)


def _rescue_seed() -> int:
    return getattr(_rescue_state, "seed", 0)


@contextmanager
def solver_rescue(level: int, seed: int = 0) -> Iterator[None]:
    """Escalate solver robustness for the body (used by item retries).

    ``level`` scales the Newton iteration budget by ``1 + level`` (DC)
    and the transient step budget likewise, and perturbs user-supplied
    initial guesses by up to ``5 mV × level`` with an rng seeded from
    ``seed`` — deterministic per (seed, level), so retries are
    reproducible.  Level 0 restores normal behaviour.
    """
    previous = (rescue_level(), _rescue_seed())
    _rescue_state.level = max(0, int(level))
    _rescue_state.seed = int(seed)
    try:
        yield
    finally:
        _rescue_state.level, _rescue_state.seed = previous


def _perturbed_initial_voltages(
    initial_voltages: Optional[Dict[str, float]],
) -> Optional[Dict[str, float]]:
    level = rescue_level()
    if not level or not initial_voltages:
        return initial_voltages
    rng = np.random.default_rng((_rescue_seed() * 1_000_003 + level) % 2**32)
    jitter_v = 0.005 * level
    return {
        name: float(value) + float(rng.uniform(-jitter_v, jitter_v))
        for name, value in sorted(initial_voltages.items())
    }


def _saw_singular() -> bool:
    return getattr(_singular_state, "seen", False)


@dataclass
class DCResult:
    """Result of a DC operating-point analysis."""

    voltages: Dict[str, float]
    iterations: int
    converged: bool
    max_residual_a: float

    def voltage(self, node: str) -> float:
        try:
            return self.voltages[node]
        except KeyError:
            raise MNAError(f"node {node!r} not in the DC solution") from None


@dataclass
class NewtonOptions:
    """Newton-iteration tuning knobs shared by the DC and transient solvers."""

    max_iterations: int = 100
    abs_tolerance_a: float = 1e-9
    rel_tolerance: float = 1e-6
    damping: float = 1.0
    max_voltage_step_v: float = 0.3


def _newton_solve(
    assembler: MNAAssembler,
    b: np.ndarray,
    x0: np.ndarray,
    options: NewtonOptions,
) -> tuple[np.ndarray, int, bool, float]:
    """Newton iteration on ``G x + I_nl(x) = b`` starting from ``x0``.

    The linear solves go through the dense backend for small systems
    (bitwise-shared with the batched solver tier) and through a
    :class:`CachedFactorSolver` above the dense threshold, where the LU
    factorisation of ``G`` is reused whenever the device stamps are
    unchanged.
    """
    dense = assembler.dense_system() if assembler.use_dense_solver else None
    solver = None if dense is not None else CachedFactorSolver(assembler)
    g_matrix = None if dense is not None else assembler.conductance_matrix
    x = x0.copy()
    max_residual = float("inf")
    # Residual decay telemetry: one module-global check while disabled
    # (the common case), a bounded reservoir submission when on.
    recorder = residual_recorder()
    residual_log: Optional[List[float]] = [] if recorder is not None else None
    # Adaptive damping: a full Newton step can limit-cycle across the kinks
    # of the compact model (the linear/saturation hand-off) without the
    # residual ever dropping below tolerance.  Halving the step whenever
    # the residual stops improving breaks the cycle; the damping recovers
    # geometrically once progress resumes.
    damping = options.damping
    previous_residual: Optional[float] = None
    for iteration in range(1, options.max_iterations + 1):
        stamp = assembler.nonlinear_stamp(x)
        g_dot_x = dense.g_dense @ x if dense is not None else g_matrix.dot(x)
        residual = g_dot_x + stamp.residual - b
        max_residual = float(np.max(np.abs(residual))) if residual.size else 0.0
        if residual_log is not None:
            residual_log.append(max_residual)
        if max_residual < options.abs_tolerance_a:
            if recorder is not None:
                recorder.record("dc", residual_log, True)
            return x, iteration, True, max_residual
        if previous_residual is not None:
            if max_residual >= previous_residual:
                damping = max(damping * 0.5, options.damping / 256.0)
            else:
                damping = min(damping * 1.5, options.damping)
        previous_residual = max_residual
        try:
            if dense is not None:
                delta = dense.solve(np.asarray(stamp.values), -residual)
            else:
                delta = solver.solve(0.0, stamp, -residual)
        except (RuntimeError, np.linalg.LinAlgError):
            # Exactly singular Jacobian at this gmin: report non-convergence
            # so the caller's gmin-stepping fallback can regularise and retry
            # instead of aborting the whole operating-point search.  The
            # thread-local flag lets the final ConvergenceError say so,
            # which is what failure classification keys on.
            _singular_state.seen = True
            if recorder is not None:
                recorder.record("dc", residual_log, False)
            return x, iteration, False, max_residual
        delta = np.asarray(delta).ravel()
        # Limit the per-iteration voltage step for robustness.
        node_delta = delta[: assembler.n_nodes]
        max_step = float(np.max(np.abs(node_delta))) if node_delta.size else 0.0
        scale = damping
        if max_step > options.max_voltage_step_v > 0.0:
            scale *= options.max_voltage_step_v / max_step
        x = x + scale * delta
        # Convergence on the update as well (helps linear circuits finish in
        # one extra iteration).
        if max_step * scale < options.rel_tolerance * max(1.0, float(np.max(np.abs(x[: assembler.n_nodes]), initial=0.0))):
            stamp = assembler.nonlinear_stamp(x)
            g_dot_x = dense.g_dense @ x if dense is not None else g_matrix.dot(x)
            residual = g_dot_x + stamp.residual - b
            max_residual = float(np.max(np.abs(residual))) if residual.size else 0.0
            if max_residual < options.abs_tolerance_a * 10.0:
                if recorder is not None:
                    recorder.record("dc", residual_log, True)
                return x, iteration, True, max_residual
    if recorder is not None:
        recorder.record("dc", residual_log, False)
    return x, options.max_iterations, False, max_residual


def _source_vector_with_overrides(
    assembler: MNAAssembler,
    source_overrides: Optional[Mapping[str, float]],
) -> np.ndarray:
    """The t=0 source vector with selected voltage sources overridden.

    ``source_overrides`` maps voltage-source *names* to DC values; the
    overridden value replaces the source's own waveform value.  This is the
    hook the swept-source analysis uses, so a sweep never has to rebuild
    the circuit per point.
    """
    b = assembler.source_vector(0.0)
    if source_overrides:
        for name, value in source_overrides.items():
            b[assembler.branch_index(name)] = float(value)
    return b


def _source_stepping(
    circuit: Circuit,
    b_full: np.ndarray,
    options: NewtonOptions,
    gmin_s: float,
) -> tuple[Optional[np.ndarray], int, float, Optional[MNAAssembler]]:
    """Ramp every independent source from zero to full value (continuation).

    Starts from the all-off state (``x = 0`` solves the system exactly at
    ``b = 0``) and ramps ``b`` to its full value, re-converging at every
    step from the previous one — the sources enter the MNA system only
    through ``b``, so scaling ``b`` scales every independent source
    together and the ramp follows a physical turn-on trajectory.  A step
    that fails is retried with the increment halved (up to a bounded
    number of refinements), which lets the ramp creep past fold points
    where a coarse step would jump over the surviving solution branch.

    Returns ``(solution, iterations, max_residual, assembler)`` with
    ``solution=None`` when even the refined ramp fails.
    """
    assembler = MNAAssembler(circuit, gmin_s=gmin_s)
    current = np.zeros(assembler.size)
    total_iterations = 0
    max_residual = float("inf")
    alpha = 0.0
    step = 0.1
    min_step = 1.0 / 1024.0
    while alpha < 1.0:
        attempt = min(1.0, alpha + step)
        candidate, iterations, converged, max_residual = _newton_solve(
            assembler, attempt * b_full, current, options
        )
        total_iterations += iterations
        if converged:
            current = candidate
            alpha = attempt
            step = min(step * 2.0, 0.1)
            continue
        step /= 2.0
        if step < min_step:
            return None, total_iterations, max_residual, assembler
    return current, total_iterations, max_residual, assembler


def _pseudo_transient(
    circuit: Circuit,
    b_full: np.ndarray,
    x0: np.ndarray,
    options: NewtonOptions,
    gmin_s: float,
) -> tuple[Optional[np.ndarray], int, float, Optional[MNAAssembler]]:
    """Pseudo-transient continuation: anchor Newton to the previous iterate.

    Each level solves ``F(x) + g_pt·(x − x_anchor) = 0`` — the backward-
    Euler step of a fictitious grounded capacitor at every node — and the
    anchor conductance ``g_pt`` decays by decades towards zero.  Unlike
    plain Newton or source stepping, this follows the *dynamics* of the
    circuit, so it walks across fold points (where one branch of a
    bistable circuit ceases to exist) onto the surviving branch instead of
    diverging.  The final level solves the original system exactly.
    """
    x = x0.copy()
    total_iterations = 0
    max_residual = float("inf")
    g_pt = 1e-2
    for _outer in range(200):
        assembler = MNAAssembler(circuit, gmin_s=gmin_s + g_pt)
        b_pt = b_full.copy()
        b_pt[: assembler.n_nodes] += g_pt * x[: assembler.n_nodes]
        solution, iterations, converged, _residual = _newton_solve(
            assembler, b_pt, x, options
        )
        total_iterations += iterations
        if not converged:
            # Pseudo-step too large (too small an anchor): tighten it.
            g_pt *= 10.0
            if g_pt > 1e4:
                return None, total_iterations, max_residual, assembler
            continue
        x = solution
        # Switched evolution/relaxation: grow the pseudo-step as long as
        # the anchored solves succeed, then finish with the exact system.
        g_pt *= 0.1
        if g_pt < 1e-12:
            assembler = MNAAssembler(circuit, gmin_s=gmin_s)
            solution, iterations, converged, max_residual = _newton_solve(
                assembler, b_full, x, options
            )
            total_iterations += iterations
            if converged:
                return solution, total_iterations, max_residual, assembler
            # The exact solve still bounced: keep evolving from here with
            # a fresh, tighter pseudo-step.
            g_pt = 1e-4
    return None, total_iterations, max_residual, assembler


def dc_operating_point(
    circuit: Circuit,
    initial_voltages: Optional[Dict[str, float]] = None,
    options: Optional[NewtonOptions] = None,
    gmin_s: float = 1e-12,
    source_overrides: Optional[Mapping[str, float]] = None,
) -> DCResult:
    """Find the DC operating point of a circuit.

    Parameters
    ----------
    circuit:
        The circuit to solve; capacitors are open in DC.
    initial_voltages:
        Optional initial guess per node (greatly helps bistable circuits
        such as the SRAM cell pick the intended state).
    options:
        Newton options.
    gmin_s:
        Baseline gmin; the gmin-stepping fallback starts three decades
        higher when plain Newton fails, and source stepping is the last
        resort after the gmin ladder is exhausted.
    source_overrides:
        Optional mapping of voltage-source names to DC values that replace
        the sources' own waveform values (used by :func:`dc_sweep`).
    """
    with span("solver.dc") as dc_span:
        try:
            result = _dc_operating_point(
                circuit, initial_voltages, options, gmin_s, source_overrides
            )
        except ConvergenceError:
            record_convergence("dc", 0, False)
            raise
        dc_span.annotate(iterations=result.iterations, converged=result.converged)
        record_convergence("dc", result.iterations, result.converged)
        return result


def _dc_operating_point(
    circuit: Circuit,
    initial_voltages: Optional[Dict[str, float]],
    options: Optional[NewtonOptions],
    gmin_s: float,
    source_overrides: Optional[Mapping[str, float]],
) -> DCResult:
    chosen_options = options if options is not None else NewtonOptions()
    level = rescue_level()
    if level:
        chosen_options = replace(
            chosen_options,
            max_iterations=chosen_options.max_iterations * (1 + level),
        )
        initial_voltages = _perturbed_initial_voltages(initial_voltages)
    _singular_state.seen = False

    for gmin_attempt in (gmin_s, gmin_s * 1e3, gmin_s * 1e6):
        if gmin_attempt != gmin_s:
            record_rescue("dc", "gmin_step")
        assembler = MNAAssembler(circuit, gmin_s=gmin_attempt)
        b = _source_vector_with_overrides(assembler, source_overrides)
        x0 = assembler.initial_solution(initial_voltages)
        # Seed the voltage-source branch targets so the first iteration does
        # not start from a wildly inconsistent point.
        for offset, source in enumerate(assembler.voltage_sources):
            x0[assembler.n_nodes + offset] = 0.0
        solution, iterations, converged, max_residual = _newton_solve(
            assembler, b, x0, chosen_options
        )
        if converged and gmin_attempt == gmin_s:
            return DCResult(
                voltages=assembler.solution_to_dict(solution),
                iterations=iterations,
                converged=True,
                max_residual_a=max_residual,
            )
        if converged:
            # Found a solution at elevated gmin: walk gmin back down using the
            # converged solution as the new starting point.
            current = solution
            for step_gmin in (gmin_attempt / 10.0, gmin_attempt / 100.0, gmin_s):
                step_assembler = MNAAssembler(circuit, gmin_s=step_gmin)
                b = _source_vector_with_overrides(step_assembler, source_overrides)
                current, iterations, converged, max_residual = _newton_solve(
                    step_assembler, b, current, chosen_options
                )
                if not converged:
                    break
            if converged:
                return DCResult(
                    voltages=step_assembler.solution_to_dict(current),
                    iterations=iterations,
                    converged=True,
                    max_residual_a=max_residual,
                )

    # Fallback: source stepping at the baseline gmin.  The ramp tracks a
    # physical turn-on trajectory, so bistable circuits land in a consistent
    # state instead of oscillating around the unstable ridge.
    assembler = MNAAssembler(circuit, gmin_s=gmin_s)
    b_full = _source_vector_with_overrides(assembler, source_overrides)
    record_rescue("dc", "source_step")
    solution, iterations, max_residual, step_assembler = _source_stepping(
        circuit, b_full, chosen_options, gmin_s
    )
    if solution is not None:
        return DCResult(
            voltages=step_assembler.solution_to_dict(solution),
            iterations=iterations,
            converged=True,
            max_residual_a=max_residual,
        )

    # Last resort: pseudo-transient continuation from the caller's guess
    # (needed when the guessed state has ceased to exist — e.g. just past
    # the fold of a bistable cell — and Newton must cross onto the
    # surviving branch).
    x0 = assembler.initial_solution(initial_voltages)
    record_rescue("dc", "pseudo_transient")
    solution, iterations, max_residual, pt_assembler = _pseudo_transient(
        circuit, b_full, x0, chosen_options, gmin_s
    )
    if solution is not None:
        return DCResult(
            voltages=pt_assembler.solution_to_dict(solution),
            iterations=iterations,
            converged=True,
            max_residual_a=max_residual,
        )

    singular_note = " after a singular Jacobian was encountered" if _saw_singular() else ""
    raise ConvergenceError(
        f"DC operating point did not converge{singular_note} "
        f"(last max residual {max_residual:.3e} A)"
    )


@dataclass
class DCSweepResult:
    """Result of a swept-source DC analysis.

    Attributes
    ----------
    source_name:
        The swept voltage source.
    values:
        The swept DC values, in sweep order.
    voltages:
        Mapping node name → array of DC voltages, one per sweep point.
    iterations_total:
        Newton iterations summed over the whole sweep.
    """

    source_name: str
    values: np.ndarray
    voltages: Dict[str, np.ndarray]
    iterations_total: int

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node]
        except KeyError:
            raise MNAError(f"node {node!r} not in the DC sweep") from None

    def crossing_value(
        self, node: str, level_v: float, direction: str = "falling"
    ) -> Optional[float]:
        """First swept-source value at which ``node`` crosses ``level_v``.

        Linear interpolation between bracketing sweep points; ``None`` when
        the node never crosses the level.  Used to locate trip points
        (e.g. the write-margin flip) on a continuation sweep.
        """
        if direction not in ("rising", "falling"):
            raise MNAError("direction must be 'rising' or 'falling'")
        waveform = self.voltage(node)
        for index in range(1, len(self.values)):
            previous, current = waveform[index - 1], waveform[index]
            if direction == "falling" and previous > level_v >= current:
                pass
            elif direction == "rising" and previous < level_v <= current:
                pass
            else:
                continue
            fraction = (level_v - previous) / (current - previous)
            return float(
                self.values[index - 1]
                + fraction * (self.values[index] - self.values[index - 1])
            )
        return None


def _sweep_point_rescue(
    circuit: Circuit,
    assembler: MNAAssembler,
    b: np.ndarray,
    current: np.ndarray,
    value: float,
    source_name: str,
    options: NewtonOptions,
    gmin_s: float,
) -> tuple[np.ndarray, int]:
    """Recover one sweep point whose warm start failed.

    Warm start lost the branch (possible right at a fold).  The
    branch-faithful rescue is pseudo-transient continuation anchored at
    the previous point: it relaxes along the circuit dynamics, so it
    stays on the current branch while it exists and crosses onto the
    surviving one exactly when it folds — unlike the gmin ladder, which
    can hop branches early.  Shared verbatim by the scalar sweep and the
    batched tier's per-straggler fallback, so a rescued lane reproduces
    the scalar trajectory bit-for-bit.
    """
    node_names = assembler.node_names
    record_rescue("dc_sweep", "sweep_point")
    solution, iterations, _residual, _asm = _pseudo_transient(
        circuit, b, current, options, gmin_s
    )
    if solution is None:
        point = dc_operating_point(
            circuit,
            initial_voltages={
                node: float(current[assembler.index_of(node)])
                for node in node_names
            },
            options=options,
            gmin_s=gmin_s,
            source_overrides={source_name: float(value)},
        )
        iterations += point.iterations
        solution = assembler.initial_solution(
            {node: point.voltages[node] for node in node_names}
        )
    return solution, iterations


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float],
    initial_voltages: Optional[Dict[str, float]] = None,
    options: Optional[NewtonOptions] = None,
    gmin_s: float = 1e-12,
) -> DCSweepResult:
    """Sweep the DC value of one voltage source, with continuation.

    The first point is solved with the full robustness ladder of
    :func:`dc_operating_point`; every following point warm-starts Newton
    from the previous solution (the continuation that lets the butterfly
    sweeps walk through the steep VTC transition without losing the
    branch).  A point that fails the warm start falls back to the full
    ladder before the sweep gives up.

    Parameters
    ----------
    circuit:
        The circuit; must contain a voltage source named ``source_name``.
    source_name:
        The voltage source whose DC value is swept (its own waveform value
        is ignored).
    values:
        The sweep grid, visited in order (continuation follows the order,
        so a monotone grid behaves like a slow physical ramp).
    initial_voltages:
        Optional initial guess for the *first* point.
    options, gmin_s:
        Newton knobs shared with :func:`dc_operating_point`.
    """
    grid = np.asarray(list(values), dtype=float)
    if grid.ndim != 1 or grid.size == 0:
        raise ConvergenceError("a DC sweep needs at least one source value")
    chosen_options = options if options is not None else NewtonOptions()

    with span("solver.dc_sweep", points=int(grid.size)) as sweep_span:
        result = _dc_sweep(
            circuit, source_name, grid, initial_voltages, chosen_options, gmin_s
        )
        sweep_span.annotate(iterations=result.iterations_total)
        record_convergence("dc_sweep", result.iterations_total, True)
        return result


def _dc_sweep(
    circuit: Circuit,
    source_name: str,
    grid: np.ndarray,
    initial_voltages: Optional[Dict[str, float]],
    chosen_options: NewtonOptions,
    gmin_s: float,
) -> DCSweepResult:
    assembler = MNAAssembler(circuit, gmin_s=gmin_s)
    assembler.branch_index(source_name)  # raises early for a bad source name

    first = dc_operating_point(
        circuit,
        initial_voltages=initial_voltages,
        options=chosen_options,
        gmin_s=gmin_s,
        source_overrides={source_name: float(grid[0])},
    )
    node_names = assembler.node_names
    history: Dict[str, List[float]] = {
        node: [first.voltages[node]] for node in node_names
    }
    iterations_total = first.iterations

    current = assembler.initial_solution(
        {node: first.voltages[node] for node in node_names}
    )
    for value in grid[1:]:
        b = assembler.source_vector(0.0)
        b[assembler.branch_index(source_name)] = float(value)
        solution, iterations, converged, _residual = _newton_solve(
            assembler, b, current, chosen_options
        )
        iterations_total += iterations
        if not converged:
            solution, iterations = _sweep_point_rescue(
                circuit,
                assembler,
                b,
                current,
                float(value),
                source_name,
                chosen_options,
                gmin_s,
            )
            iterations_total += iterations
        current = solution
        for node in node_names:
            history[node].append(float(current[assembler.index_of(node)]))

    return DCSweepResult(
        source_name=source_name,
        values=grid,
        voltages={node: np.asarray(values) for node, values in history.items()},
        iterations_total=iterations_total,
    )
