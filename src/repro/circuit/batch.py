"""Batched solver tier: lockstep Newton/transient over stacked work items.

The campaign hot path solves thousands of *small, same-shaped* circuits —
butterfly sweeps and write-margin sweeps differ only in element values, not
topology.  This module stacks such lanes into ``(N, n, n)`` dense systems
and iterates them jointly: one vectorised MOSFET kernel call, one batched
``numpy.linalg.solve`` and one scatter per Newton *tick* replace N Python
device loops and N separate solves.

Parity is by construction, not by tolerance.  Every array expression below
is the element-wise twin of the scalar solver it shadows
(:func:`repro.circuit.dc._newton_solve`, :func:`repro.circuit.dc.dc_sweep`,
:meth:`repro.circuit.transient.TransientSolver.run`): same operations, same
order, same numpy ufuncs.  The decisive primitives were verified bitwise on
the batched shapes — ``np.linalg.solve`` over a stacked batch equals the
per-item solve, batched matmul equals the per-item matvec, and
``np.bincount`` accumulates equal indices sequentially in emission order,
reproducing the scalar ``+=`` sequence.  A lane therefore follows exactly
the iterate trajectory the scalar oracle would, converges on the same tick
with the same iteration count, and lands on the same bits.

Control flow is per lane, iterations are shared.  Each DC lane runs a
*generator* that mirrors the scalar control flow — including the full
rescue ladder (gmin stepping, source stepping, pseudo-transient
continuation) — statement for statement, yielding one Newton target
``(assembler, b, x0)`` wherever the scalar code would call
``_newton_solve`` and receiving the converged (or failed) iterate back.
The group engine advances every active lane's current target by one
Newton iteration per tick, so a lane deep inside a fold rescue iterates
in the same vectorised tick as a lane cruising along its sweep — nothing
serialises.  Robustness state stays per lane: converged lanes freeze,
damping and step limiting are per-lane arrays, and the gmin variants a
rescue needs are cheap :meth:`~repro.circuit.mna.MNAAssembler.clone_with_gmin`
clones.  Lanes above the dense-solver size threshold (and lanes under an
active rescue escalation) run the scalar path outright, counted in
``SolverStats.scalar_fallbacks``.

Transient lanes are driven differently: the adaptive step controller makes
time points lane-specific, so each lane runs a generator that mirrors the
scalar solver's control flow statement-for-statement and *yields* at every
device-stamp evaluation.  The driver gathers all pending evaluations into
one kernel call per tick and keeps the linear solves on each lane's own
:class:`~repro.circuit.mna.CachedFactorSolver` — heterogeneous topologies
batch fine because only the element-wise kernel is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..obs.convergence import lane_group_label, record_convergence, record_rescue
from .dc import (
    ConvergenceError,
    DCResult,
    DCSweepResult,
    NewtonOptions,
    _source_vector_with_overrides,
    dc_operating_point,
    dc_sweep,
    rescue_level,
)
from .mna import MNAAssembler, NonlinearStamp, solver_stats
from .mosfet import DeviceParams, batch_operating_points
from .netlist import Circuit
from .transient import StopCondition, TransientSolver
from .waveform import TransientResult

#: A lane outcome: the analysis result, or the exception that lane raised.
#: Batched entry points never let one lane's failure poison its batch —
#: exceptions are captured per lane and re-raised by the caller per item.
LaneOutcome = Union[DCResult, DCSweepResult, TransientResult, BaseException]


@dataclass(frozen=True)
class SweepLaneSpec:
    """One :func:`~repro.circuit.dc.dc_sweep` call, as batch input."""

    circuit: Circuit
    source_name: str
    values: Sequence[float]
    initial_voltages: Optional[Dict[str, float]] = None
    options: Optional[NewtonOptions] = None
    gmin_s: float = 1e-12


@dataclass(frozen=True)
class OperatingPointLaneSpec:
    """One :func:`~repro.circuit.dc.dc_operating_point` call, as batch input."""

    circuit: Circuit
    initial_voltages: Optional[Dict[str, float]] = None
    options: Optional[NewtonOptions] = None
    gmin_s: float = 1e-12
    source_overrides: Optional[Mapping[str, float]] = None


@dataclass(frozen=True)
class TransientLaneSpec:
    """One :meth:`TransientSolver.run` call, as batch input.

    The solver is constructed by the caller (it owns the Jacobian-template
    donation policy); the batch driver only orchestrates its time loop.
    """

    solver: TransientSolver
    initial_voltages: Optional[Dict[str, float]] = None
    stop_condition: Optional[StopCondition] = None


# -- DC lane generators -----------------------------------------------------------------
#
# Statement-for-statement mirrors of the scalar functions in dc.py, with
# every _newton_solve call replaced by ``yield (assembler, b, x0)`` and the
# thread-local singular flag replaced by per-generator accumulation (the
# engine reports per-target singular events in the result tuple).  Keep
# them in sync with dc.py: any change to the scalar ladder must be
# mirrored here, or batched DC analyses lose bit-parity with the scalar
# oracle.

_TargetRequest = Tuple[MNAAssembler, np.ndarray, np.ndarray]
#: (x, iterations, converged, max_residual, saw_singular)
_TargetResult = Tuple[np.ndarray, int, bool, float, bool]
_DCGen = Generator[_TargetRequest, _TargetResult, Union[DCResult, DCSweepResult]]


class _AssemblerCache:
    """Per-circuit cache of gmin variants of one base assembler.

    The rescue ladders revisit a handful of gmin values; each variant is
    a :meth:`~repro.circuit.mna.MNAAssembler.clone_with_gmin` of the base
    (bitwise identical to, and ~15x cheaper than, a fresh construction),
    built once and memoised together with its dense backend.
    """

    def __init__(self, base: MNAAssembler) -> None:
        self.base = base
        self._variants: Dict[float, MNAAssembler] = {base.gmin_s: base}

    def get(self, gmin_s: float) -> MNAAssembler:
        variant = self._variants.get(gmin_s)
        if variant is None:
            variant = self.base.clone_with_gmin(gmin_s)
            self._variants[gmin_s] = variant
        return variant


def _gen_source_stepping(
    cache: _AssemblerCache,
    b_full: np.ndarray,
    options: NewtonOptions,
    gmin_s: float,
) -> Generator[
    _TargetRequest,
    _TargetResult,
    Tuple[Optional[np.ndarray], int, float, MNAAssembler, bool],
]:
    """Generator mirror of :func:`~repro.circuit.dc._source_stepping`."""
    assembler = cache.get(gmin_s)
    current = np.zeros(assembler.size)
    total_iterations = 0
    max_residual = float("inf")
    saw_singular = False
    alpha = 0.0
    step = 0.1
    min_step = 1.0 / 1024.0
    while alpha < 1.0:
        attempt = min(1.0, alpha + step)
        candidate, iterations, converged, max_residual, singular = yield (
            assembler,
            attempt * b_full,
            current,
        )
        saw_singular |= singular
        total_iterations += iterations
        if converged:
            current = candidate
            alpha = attempt
            step = min(step * 2.0, 0.1)
            continue
        step /= 2.0
        if step < min_step:
            return None, total_iterations, max_residual, assembler, saw_singular
    return current, total_iterations, max_residual, assembler, saw_singular


def _gen_pseudo_transient(
    cache: _AssemblerCache,
    b_full: np.ndarray,
    x0: np.ndarray,
    options: NewtonOptions,
    gmin_s: float,
) -> Generator[
    _TargetRequest,
    _TargetResult,
    Tuple[Optional[np.ndarray], int, float, MNAAssembler, bool],
]:
    """Generator mirror of :func:`~repro.circuit.dc._pseudo_transient`."""
    x = x0.copy()
    total_iterations = 0
    max_residual = float("inf")
    saw_singular = False
    g_pt = 1e-2
    for _outer in range(200):
        assembler = cache.get(gmin_s + g_pt)
        b_pt = b_full.copy()
        b_pt[: assembler.n_nodes] += g_pt * x[: assembler.n_nodes]
        solution, iterations, converged, _residual, singular = yield (
            assembler,
            b_pt,
            x,
        )
        saw_singular |= singular
        total_iterations += iterations
        if not converged:
            g_pt *= 10.0
            if g_pt > 1e4:
                return None, total_iterations, max_residual, assembler, saw_singular
            continue
        x = solution
        g_pt *= 0.1
        if g_pt < 1e-12:
            assembler = cache.get(gmin_s)
            solution, iterations, converged, max_residual, singular = yield (
                assembler,
                b_full,
                x,
            )
            saw_singular |= singular
            total_iterations += iterations
            if converged:
                return solution, total_iterations, max_residual, assembler, saw_singular
            g_pt = 1e-4
    return None, total_iterations, max_residual, assembler, saw_singular


def _gen_operating_point(
    cache: _AssemblerCache,
    initial_voltages: Optional[Dict[str, float]],
    options: NewtonOptions,
    gmin_s: float,
    source_overrides: Optional[Mapping[str, float]],
) -> _DCGen:
    """Generator mirror of :func:`~repro.circuit.dc.dc_operating_point`.

    Covers escalation level 0 only — the batch entry points route lanes
    under an active :func:`~repro.circuit.dc.solver_rescue` to the scalar
    path outright.
    """
    saw_singular = False
    max_residual = float("inf")
    for gmin_attempt in (gmin_s, gmin_s * 1e3, gmin_s * 1e6):
        if gmin_attempt != gmin_s:
            record_rescue("batch_dc", "gmin_step")
        assembler = cache.get(gmin_attempt)
        b = _source_vector_with_overrides(assembler, source_overrides)
        # (dc_operating_point re-zeroes the branch entries of x0 here;
        # initial_solution already leaves them zero.)
        x0 = assembler.initial_solution(initial_voltages)
        solution, iterations, converged, max_residual, singular = yield (
            assembler,
            b,
            x0,
        )
        saw_singular |= singular
        if converged and gmin_attempt == gmin_s:
            return DCResult(
                voltages=assembler.solution_to_dict(solution),
                iterations=iterations,
                converged=True,
                max_residual_a=max_residual,
            )
        if converged:
            # Found a solution at elevated gmin: walk gmin back down using
            # the converged solution as the new starting point.
            current = solution
            for step_gmin in (gmin_attempt / 10.0, gmin_attempt / 100.0, gmin_s):
                step_assembler = cache.get(step_gmin)
                b = _source_vector_with_overrides(step_assembler, source_overrides)
                current, iterations, converged, max_residual, singular = yield (
                    step_assembler,
                    b,
                    current,
                )
                saw_singular |= singular
                if not converged:
                    break
            if converged:
                return DCResult(
                    voltages=step_assembler.solution_to_dict(current),
                    iterations=iterations,
                    converged=True,
                    max_residual_a=max_residual,
                )

    assembler = cache.get(gmin_s)
    b_full = _source_vector_with_overrides(assembler, source_overrides)
    record_rescue("batch_dc", "source_step")
    solution, iterations, max_residual, step_assembler, singular = yield from (
        _gen_source_stepping(cache, b_full, options, gmin_s)
    )
    saw_singular |= singular
    if solution is not None:
        return DCResult(
            voltages=step_assembler.solution_to_dict(solution),
            iterations=iterations,
            converged=True,
            max_residual_a=max_residual,
        )

    x0 = assembler.initial_solution(initial_voltages)
    record_rescue("batch_dc", "pseudo_transient")
    solution, iterations, max_residual, pt_assembler, singular = yield from (
        _gen_pseudo_transient(cache, b_full, x0, options, gmin_s)
    )
    saw_singular |= singular
    if solution is not None:
        return DCResult(
            voltages=pt_assembler.solution_to_dict(solution),
            iterations=iterations,
            converged=True,
            max_residual_a=max_residual,
        )

    singular_note = (
        " after a singular Jacobian was encountered" if saw_singular else ""
    )
    raise ConvergenceError(
        f"DC operating point did not converge{singular_note} "
        f"(last max residual {max_residual:.3e} A)"
    )


def _gen_sweep_rescue(
    cache: _AssemblerCache,
    assembler: MNAAssembler,
    b: np.ndarray,
    current: np.ndarray,
    value: float,
    source_name: str,
    options: NewtonOptions,
    gmin_s: float,
) -> Generator[_TargetRequest, _TargetResult, Tuple[np.ndarray, int]]:
    """Generator mirror of :func:`~repro.circuit.dc._sweep_point_rescue`."""
    node_names = assembler.node_names
    record_rescue("batch_dc_sweep", "sweep_point")
    solution, iterations, _residual, _asm, _singular = yield from (
        _gen_pseudo_transient(cache, b, current, options, gmin_s)
    )
    if solution is None:
        point = yield from _gen_operating_point(
            cache,
            initial_voltages={
                node: float(current[assembler.index_of(node)])
                for node in node_names
            },
            options=options,
            gmin_s=gmin_s,
            source_overrides={source_name: float(value)},
        )
        iterations += point.iterations
        solution = assembler.initial_solution(
            {node: point.voltages[node] for node in node_names}
        )
    return solution, iterations


def _gen_dc_sweep(
    cache: _AssemblerCache,
    spec: SweepLaneSpec,
    grid: np.ndarray,
    options: NewtonOptions,
) -> _DCGen:
    """Generator mirror of :func:`~repro.circuit.dc.dc_sweep`."""
    assembler = cache.base
    first = yield from _gen_operating_point(
        cache,
        initial_voltages=spec.initial_voltages,
        options=options,
        gmin_s=spec.gmin_s,
        source_overrides={spec.source_name: float(grid[0])},
    )
    node_names = assembler.node_names
    iterations_total = first.iterations

    current = assembler.initial_solution(
        {node: first.voltages[node] for node in node_names}
    )
    # Hoisted per-point invariants (the scalar loop recomputes these per
    # point, but they are deterministic: b0 is the t=0 source vector and
    # the node indices never change, so copying is bitwise identical; the
    # history is recorded as node-voltage snapshots and split per node at
    # the end — a pure float64 passthrough).
    b0 = assembler.source_vector(0.0)
    branch = assembler.branch_index(spec.source_name)
    node_pos = np.array(
        [assembler.index_of(node) for node in node_names], dtype=np.int64
    )
    snapshots: List[np.ndarray] = [current[node_pos]]
    for value in grid[1:]:
        b = b0.copy()
        b[branch] = float(value)
        solution, iterations, converged, _residual, _singular = yield (
            assembler,
            b,
            current,
        )
        iterations_total += iterations
        if not converged:
            solution, iterations = yield from _gen_sweep_rescue(
                cache,
                assembler,
                b,
                current,
                float(value),
                spec.source_name,
                options,
                spec.gmin_s,
            )
            iterations_total += iterations
        current = solution
        snapshots.append(current[node_pos])

    stacked = np.stack(snapshots)
    return DCSweepResult(
        source_name=spec.source_name,
        values=grid,
        voltages={
            node: np.ascontiguousarray(stacked[:, k])
            for k, node in enumerate(node_names)
        },
        iterations_total=iterations_total,
    )


# -- DC lockstep engine -----------------------------------------------------------------
#
# All lanes of a group share one structural shape, so each tick evaluates
# the active lanes' stamps in one kernel call and solves their Jacobians
# in one batched dense solve.  Per-lane control state (damping, previous
# residual, iteration count, singular flag) lives in flat arrays indexed
# by lane; the generators above supply each lane's sequence of targets.


class _DCLane:
    """One generator-driven DC lane and its captured outcome."""

    __slots__ = ("index", "gen", "base", "options", "outcome")

    def __init__(
        self,
        index: int,
        gen: _DCGen,
        base: MNAAssembler,
        options: NewtonOptions,
    ) -> None:
        self.index = index
        self.gen = gen
        self.base = base
        self.options = options
        self.outcome: Optional[LaneOutcome] = None


def _structural_key(assembler: MNAAssembler) -> Tuple[int, int, int, int, int]:
    plan = assembler.batch_plan()
    return (
        assembler.size,
        assembler.n_nodes,
        plan.n_devices,
        int(plan.res_pos.size),
        int(plan.stamp_rows.size),
    )


class _DCGroup:
    """Lockstep Newton over one structurally identical set of lanes."""

    def __init__(self, lanes: List[_DCLane]) -> None:
        self.lanes = lanes
        solver_stats().batch_lanes += len(lanes)
        first = lanes[0].base
        self.size = first.size
        self.n_nodes = first.n_nodes
        self.n_devices = first.batch_plan().n_devices
        plans = [lane.base.batch_plan() for lane in lanes]
        # Per-lane gather/scatter tables.  Lanes share lengths (the
        # structural key) but not necessarily index patterns, so every
        # table is 2-D and gathered with take_along_axis per tick.  The
        # tables are gmin-independent, so one set serves every target a
        # lane's rescue ladder produces.
        self.drain_idx = np.stack([p.drain_idx for p in plans])
        self.gate_idx = np.stack([p.gate_idx for p in plans])
        self.source_idx = np.stack([p.source_idx for p in plans])
        self.res_pos = np.stack([p.res_pos for p in plans])
        self.res_dev = np.stack([p.res_dev for p in plans])
        self.res_sign = np.stack([p.res_sign for p in plans])
        self.stamp_flat = np.stack([p.stamp_flat for p in plans])
        self.stamp_kind = np.stack([p.stamp_kind for p in plans])
        self.stamp_dev = np.stack([p.stamp_dev for p in plans])
        self.p_polarity = np.stack([p.params.polarity for p in plans])
        self.p_vth = np.stack([p.params.vth_v for p in plans])
        self.p_k = np.stack([p.params.k_a for p in plans])
        self.p_alpha = np.stack([p.params.alpha for p in plans])
        self.p_lambda = np.stack([p.params.lambda_per_v for p in plans])
        opts = [lane.options for lane in lanes]
        self.abs_tol = np.array([o.abs_tolerance_a for o in opts])
        self.rel_tol = np.array([o.rel_tolerance for o in opts])
        self.damping0 = np.array([o.damping for o in opts])
        self.vstep_limit = np.array([o.max_voltage_step_v for o in opts])
        self.max_iter = np.array([o.max_iterations for o in opts], dtype=np.int64)

        n = len(lanes)
        self.g_stack = np.zeros((n, self.size, self.size))
        self.x = np.zeros((n, self.size))
        self.b = np.zeros((n, self.size))
        self.damping = self.damping0.copy()
        self.prev_res = np.full(n, np.nan)
        self.iter = np.zeros(n, dtype=np.int64)
        self.singular = np.zeros(n, dtype=bool)
        self.last_mr = np.full(n, np.inf)
        #: Static gather tables keyed by the active-lane tuple.  The active
        #: set only changes when a lane finishes its whole analysis, so the
        #: per-tick index gathers amortise to nothing.  Only gmin- and
        #: state-independent plan data may live here — x, b and g_stack
        #: change per target and are gathered fresh each tick.
        self._tables: Dict[bytes, Dict[str, object]] = {}
        self.active: List[int] = []
        for i in range(n):
            if self._resume(i, None):
                self.active.append(i)
        #: The active set as an index array, rebuilt lazily — it only
        #: changes when a lane finishes its whole analysis.
        self._act_arr = np.asarray(self.active, dtype=np.int64)
        self._act_dirty = False
        #: Scratch for the extended kernel-eval state; the trailing
        #: column is the implicit ground entry and must stay zero.
        self._x_ext = np.zeros((n, self.size + 1))

    # -- lane transitions ---------------------------------------------------------

    def _resume(self, i: int, result: Optional[_TargetResult]) -> bool:
        """Advance lane ``i``'s generator; install its next Newton target.

        Returns ``False`` when the generator finished (result or exception
        captured as the lane outcome).
        """
        lane = self.lanes[i]
        try:
            target = lane.gen.send(result)
        except StopIteration as done:
            lane.outcome = done.value
            return False
        except Exception as exc:  # noqa: BLE001 - lane isolation by design
            lane.outcome = exc
            return False
        assembler, b, x0 = target
        self.g_stack[i] = assembler.dense_system().g_dense
        self.b[i] = b
        self.x[i] = x0
        self.damping[i] = self.damping0[i]
        self.prev_res[i] = np.nan
        self.iter[i] = 0
        self.singular[i] = False
        self.last_mr[i] = np.inf
        return True

    def _resolve(self, i: int, converged: bool, iterations: int) -> None:
        """Report lane ``i``'s finished target back to its generator."""
        result: _TargetResult = (
            self.x[i].copy(),
            int(iterations),
            converged,
            float(self.last_mr[i]),
            bool(self.singular[i]),
        )
        if not self._resume(i, result):
            self.active.remove(i)
            self._act_dirty = True

    # -- batched helpers ----------------------------------------------------------

    def _tables_for(self, act: np.ndarray) -> Dict[str, object]:
        """Static gather tables for one set of lanes (memoised).

        The main tick always passes the full active set, whose tuple is
        stable across target transitions; secondary-check subsets slice
        these tables positionally instead of re-gathering.
        """
        key = act.tobytes()
        tbl = self._tables.get(key)
        if tbl is None:
            if len(self._tables) > 64:
                self._tables.clear()
            na = act.size
            kind = self.stamp_kind[act]
            tbl = {
                "rows": np.arange(na)[:, None],
                "drain": self.drain_idx[act],
                "gate": self.gate_idx[act],
                "source": self.source_idx[act],
                "res_dev": self.res_dev[act],
                "res_sign": self.res_sign[act],
                "res_pos": self.res_pos[act],
                "res_flat": (
                    self.res_pos[act] + (np.arange(na) * self.size)[:, None]
                ).reshape(-1),
                "stamp_dev": self.stamp_dev[act],
                "stamp_kind": kind,
                # Static decomposition of the stamp-kind dispatch: kind
                # 0..5 is (±gds, ±gm, ±(gds+gm)); picking the component
                # with choose and applying the sign by an exact ±1.0
                # multiply reproduces the nested-where values bit for bit.
                "stamp_pick": np.array([0, 1, 2, 0, 1, 2], dtype=np.int64)[kind],
                "stamp_sign": np.array([1.0, 1.0, -1.0, -1.0, -1.0, 1.0])[kind],
                "stamp_flat": self.stamp_flat[act],
                "p_polarity": self.p_polarity[act],
                "p_vth": self.p_vth[act],
                "p_k": self.p_k[act],
                "p_alpha": self.p_alpha[act],
                "p_lambda": self.p_lambda[act],
            }
            tbl["params_full"] = self._params_from(tbl, slice(None))
            self._tables[key] = tbl
        return tbl

    @staticmethod
    def _params_from(tbl: Dict[str, object], sel) -> DeviceParams:
        return DeviceParams(
            polarity=tbl["p_polarity"][sel].reshape(-1),
            vth_v=tbl["p_vth"][sel].reshape(-1),
            k_a=tbl["p_k"][sel].reshape(-1),
            alpha=tbl["p_alpha"][sel].reshape(-1),
            lambda_per_v=tbl["p_lambda"][sel].reshape(-1),
        )

    def _eval_devices(
        self, act: np.ndarray, x_sel: np.ndarray, sel=slice(None)
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Kernel-evaluate the devices of ``act[sel]`` lanes at ``x_sel``."""
        stats = solver_stats()
        n_sel = x_sel.shape[0]
        stats.stamp_evals += 1
        stats.stamp_device_evals += n_sel * self.n_devices
        tbl = self._tables_for(act)
        x_ext = self._x_ext[:n_sel]
        x_ext[:, :-1] = x_sel
        rows = tbl["rows"][:n_sel]
        vd = x_ext[rows, tbl["drain"][sel]]
        vg = x_ext[rows, tbl["gate"][sel]]
        vs = x_ext[rows, tbl["source"][sel]]
        params = (
            tbl["params_full"]
            if isinstance(sel, slice)
            else self._params_from(tbl, sel)
        )
        ids, gm, gds = batch_operating_points(
            vd.reshape(-1),
            vg.reshape(-1),
            vs.reshape(-1),
            params,
        )
        shape = (n_sel, self.n_devices)
        return ids.reshape(shape), gm.reshape(shape), gds.reshape(shape)

    def _residual(
        self, act: np.ndarray, x_sel: np.ndarray, ids: np.ndarray, sel=slice(None)
    ) -> np.ndarray:
        """``G·x + I_nl(x) − b`` per lane, matching the scalar op order."""
        # bincount accumulates equal indices sequentially in input order,
        # reproducing the scalar per-device "+ids at drain, −ids at source"
        # emission sequence bitwise.
        tbl = self._tables_for(act)
        n_sel = x_sel.shape[0]
        rows = tbl["rows"][:n_sel]
        weights = ids[rows, tbl["res_dev"][sel]] * tbl["res_sign"][sel]
        if isinstance(sel, slice):
            flat = tbl["res_flat"]
        else:
            flat = (
                tbl["res_pos"][sel] + (np.arange(n_sel) * self.size)[:, None]
            ).reshape(-1)
        res_nl = np.bincount(
            flat,
            weights=weights.reshape(-1),
            minlength=n_sel * self.size,
        ).reshape(n_sel, self.size)
        lane_idx = act[sel]
        g_dot_x = np.matmul(self.g_stack[lane_idx], x_sel[:, :, None])[:, :, 0]
        return g_dot_x + res_nl - self.b[lane_idx]

    def _stamp_values(
        self, act: np.ndarray, gm: np.ndarray, gds: np.ndarray
    ) -> np.ndarray:
        """Jacobian stamp values in scalar emission order, per lane."""
        tbl = self._tables_for(act)
        rows = tbl["rows"]
        dev = tbl["stamp_dev"]
        gds_e = gds[rows, dev]
        gm_e = gm[rows, dev]
        # choose is pure selection and the ±1.0 multiply is an exact IEEE
        # negation, so this matches the former nested-where bit for bit.
        picked = np.choose(tbl["stamp_pick"], (gds_e, gm_e, gds_e + gm_e))
        return picked * tbl["stamp_sign"]

    def _matrices(
        self, act: np.ndarray, cont: np.ndarray, stamp_values: np.ndarray
    ) -> np.ndarray:
        """Dense Jacobians of the ``act[cont]`` lanes."""
        tbl = self._tables_for(act)
        n_sel = stamp_values.shape[0]
        flat = tbl["stamp_flat"][cont] + (
            np.arange(n_sel) * self.size * self.size
        )[:, None]
        scatter = np.bincount(
            flat.reshape(-1),
            weights=stamp_values.reshape(-1),
            minlength=n_sel * self.size * self.size,
        ).reshape(n_sel, self.size, self.size)
        return self.g_stack[act[cont]] + scatter

    # -- the tick ----------------------------------------------------------------

    def run(self) -> None:
        while self.active:
            self._tick()

    def _tick(self) -> None:
        stats = solver_stats()
        if self._act_dirty:
            self._act_arr = np.asarray(self.active, dtype=np.int64)
            self._act_dirty = False
        act = self._act_arr
        stats.batch_ticks += 1
        stats.batch_lane_iterations += act.size
        stats.batch_lane_slots += len(self.lanes)
        self.iter[act] += 1
        x_act = self.x[act]
        ids, gm, gds = self._eval_devices(act, x_act)
        residual = self._residual(act, x_act, ids)
        max_res = np.abs(residual).max(axis=1)
        self.last_mr[act] = max_res
        for pos in np.nonzero(max_res < self.abs_tol[act])[0]:
            i = int(act[pos])
            self._resolve(i, True, int(self.iter[i]))

        cont = max_res >= self.abs_tol[act]
        # NaN residuals fall through to the solve exactly as the scalar
        # loop does (NaN < tol and NaN >= prev are both False).
        cont |= np.isnan(max_res)
        if not cont.any():
            return
        idx = act[cont]
        x_c = x_act[cont]
        res_c = residual[cont]
        mr_c = max_res[cont]

        has_prev = ~np.isnan(self.prev_res[idx])
        d = self.damping[idx]
        with np.errstate(invalid="ignore"):
            worse = mr_c >= self.prev_res[idx]
        stepped = np.where(
            worse,
            np.maximum(d * 0.5, self.damping0[idx] / 256.0),
            np.minimum(d * 1.5, self.damping0[idx]),
        )
        self.damping[idx] = np.where(has_prev, stepped, d)
        self.prev_res[idx] = mr_c

        stamp_values = self._stamp_values(act, gm, gds)[cont]
        matrices = self._matrices(act, cont, stamp_values)
        stats.factorizations += idx.size
        stats.dense_solves += idx.size
        singular = np.zeros(idx.size, dtype=bool)
        try:
            delta = np.linalg.solve(matrices, -res_c[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            # One singular lane poisons the stacked call; redo per lane
            # (bitwise identical to the batched solve) and mark offenders.
            delta = np.zeros((idx.size, self.size))
            for j in range(idx.size):
                try:
                    delta[j] = np.linalg.solve(matrices[j], -res_c[j])
                except np.linalg.LinAlgError:
                    singular[j] = True
        for j in np.nonzero(singular)[0]:
            i = int(idx[j])
            # The scalar loop reports the pre-solve iterate and residual
            # and lets the caller's gmin ladder regularise and retry.
            self.singular[i] = True
            self._resolve(i, False, int(self.iter[i]))
        if singular.any():
            keep = ~singular
            idx = idx[keep]
            if idx.size == 0:
                return
            x_c = x_c[keep]
            delta = delta[keep]

        node_delta = delta[:, : self.n_nodes]
        max_step = np.abs(node_delta).max(axis=1)
        limit = self.vstep_limit[idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                (max_step > limit) & (limit > 0.0),
                self.damping[idx] * (limit / max_step),
                self.damping[idx],
            )
        x_new = x_c + scale[:, None] * delta
        self.x[idx] = x_new

        # Secondary convergence check on the update (scalar loop's "helps
        # linear circuits finish in one extra iteration" branch).
        x_node_max = np.abs(x_new[:, : self.n_nodes]).max(axis=1)
        with np.errstate(invalid="ignore"):
            update_small = max_step * scale < self.rel_tol[idx] * np.maximum(
                1.0, x_node_max
            )
        still = np.ones(idx.size, dtype=bool)
        if update_small.any():
            sub = idx[update_small]
            sub_pos = np.nonzero(cont)[0][update_small]
            ids2, _gm2, _gds2 = self._eval_devices(
                act, x_new[update_small], sub_pos
            )
            res2 = self._residual(act, x_new[update_small], ids2, sub_pos)
            mr2 = np.abs(res2).max(axis=1)
            # The scalar path overwrites max_residual here whether or not
            # the check passes.
            self.last_mr[sub] = mr2
            passed = mr2 < self.abs_tol[sub] * 10.0
            for j in np.nonzero(passed)[0]:
                self._resolve(int(sub[j]), True, int(self.iter[int(sub[j])]))
            keep = np.ones(idx.size, dtype=bool)
            keep[np.nonzero(update_small)[0][passed]] = False
            still = keep

        for i in idx[still]:
            i = int(i)
            if self.iter[i] >= self.max_iter[i]:
                self._resolve(i, False, int(self.max_iter[i]))


def _run_dc_lockstep(lanes: List[_DCLane]) -> None:
    groups: Dict[Tuple[int, int, int, int, int], List[_DCLane]] = {}
    for lane in lanes:
        groups.setdefault(_structural_key(lane.base), []).append(lane)
    for members in groups.values():
        _DCGroup(members).run()
        # Convergence telemetry per *lane outcome* (not per lockstep
        # target — a sweep lane yields hundreds of targets, and the
        # registry lock must stay off that path).
        label = lane_group_label(len(members))
        for lane in members:
            outcome = lane.outcome
            if isinstance(outcome, DCSweepResult):
                record_convergence(
                    "batch_dc_sweep", outcome.iterations_total, True, lane_group=label
                )
            elif isinstance(outcome, DCResult):
                record_convergence(
                    "batch_dc", outcome.iterations, True, lane_group=label
                )
            elif isinstance(outcome, BaseException):
                record_convergence("batch_dc", 0, False, lane_group=label)


def batch_dc_sweep(specs: Sequence[SweepLaneSpec]) -> List[LaneOutcome]:
    """Run many :func:`~repro.circuit.dc.dc_sweep` calls in lockstep.

    Returns one outcome per spec, in order: a
    :class:`~repro.circuit.dc.DCSweepResult` bitwise identical to the
    scalar call, or the exception the scalar call would have raised.
    Lanes above the dense-solver threshold and every lane under an active
    rescue escalation run the scalar path directly.
    """
    outcomes: List[Optional[LaneOutcome]] = [None] * len(specs)
    lanes: List[_DCLane] = []
    stats = solver_stats()
    for index, spec in enumerate(specs):
        try:
            grid = np.asarray(list(spec.values), dtype=float)
            if grid.ndim != 1 or grid.size == 0:
                raise ConvergenceError("a DC sweep needs at least one source value")
            options = spec.options if spec.options is not None else NewtonOptions()
            assembler = MNAAssembler(spec.circuit, gmin_s=spec.gmin_s)
            assembler.branch_index(spec.source_name)
            if rescue_level() or not assembler.use_dense_solver:
                stats.scalar_fallbacks += 1
                outcomes[index] = dc_sweep(
                    spec.circuit,
                    spec.source_name,
                    spec.values,
                    initial_voltages=spec.initial_voltages,
                    options=spec.options,
                    gmin_s=spec.gmin_s,
                )
                continue
            cache = _AssemblerCache(assembler)
            lanes.append(
                _DCLane(
                    index,
                    _gen_dc_sweep(cache, spec, grid, options),
                    assembler,
                    options,
                )
            )
        except Exception as exc:  # noqa: BLE001 - lane isolation by design
            outcomes[index] = exc
    _run_dc_lockstep(lanes)
    for lane in lanes:
        outcomes[lane.index] = lane.outcome
    return outcomes


def batch_dc_operating_points(
    specs: Sequence[OperatingPointLaneSpec],
) -> List[LaneOutcome]:
    """Run many :func:`~repro.circuit.dc.dc_operating_point` calls in lockstep.

    Every Newton solve of every lane — including those deep inside the
    gmin/source-stepping/pseudo-transient rescue ladder — runs in the
    shared lockstep tick; results and iteration counts match the scalar
    calls exactly.
    """
    outcomes: List[Optional[LaneOutcome]] = [None] * len(specs)
    lanes: List[_DCLane] = []
    stats = solver_stats()
    for index, spec in enumerate(specs):
        try:
            options = spec.options if spec.options is not None else NewtonOptions()
            assembler = MNAAssembler(spec.circuit, gmin_s=spec.gmin_s)
            if rescue_level() or not assembler.use_dense_solver:
                stats.scalar_fallbacks += 1
                outcomes[index] = dc_operating_point(
                    spec.circuit,
                    initial_voltages=spec.initial_voltages,
                    options=spec.options,
                    gmin_s=spec.gmin_s,
                    source_overrides=spec.source_overrides,
                )
                continue
            cache = _AssemblerCache(assembler)
            lanes.append(
                _DCLane(
                    index,
                    _gen_operating_point(
                        cache,
                        spec.initial_voltages,
                        options,
                        spec.gmin_s,
                        spec.source_overrides,
                    ),
                    assembler,
                    options,
                )
            )
        except Exception as exc:  # noqa: BLE001 - lane isolation by design
            outcomes[index] = exc
    _run_dc_lockstep(lanes)
    for lane in lanes:
        outcomes[lane.index] = lane.outcome
    return outcomes


# -- transient lockstep driver ----------------------------------------------------------
#
# The generator below is a statement-for-statement transformation of
# TransientSolver.run + _newton_step with every nonlinear_stamp(x) call
# replaced by ``yield x``.  Keep the two in sync: any change to
# transient.py's control flow must be mirrored here, or batched transients
# lose bit-parity with the scalar solver.

_StampRequest = np.ndarray


def _lane_stamp(assembler: MNAAssembler,
                ids: np.ndarray, gm: np.ndarray, gds: np.ndarray) -> NonlinearStamp:
    """Assemble one lane's :class:`NonlinearStamp` from kernel outputs.

    Emission order and accumulation order follow the assembler's batch
    plan, which is built in ``nonlinear_stamp`` iteration order — the
    values array and residual are bitwise identical to the scalar method.
    """
    plan = assembler.batch_plan()
    weights = ids[plan.res_dev] * plan.res_sign
    residual = np.bincount(
        plan.res_pos, weights=weights, minlength=assembler.size
    )
    gds_e = gds[plan.stamp_dev]
    gm_e = gm[plan.stamp_dev]
    sum_e = gds_e + gm_e
    kind = plan.stamp_kind
    values = np.where(
        kind == 0,
        gds_e,
        np.where(
            kind == 1,
            gm_e,
            np.where(
                kind == 2,
                -sum_e,
                np.where(kind == 3, -gds_e, np.where(kind == 4, -gm_e, sum_e)),
            ),
        ),
    )
    return NonlinearStamp(
        rows=list(plan.stamp_rows),
        cols=list(plan.stamp_cols),
        values=values,
        residual=residual,
    )


def _transient_lane(
    spec: TransientLaneSpec,
) -> Generator[_StampRequest, NonlinearStamp, TransientResult]:
    """Generator mirror of :meth:`TransientSolver.run` (see note above)."""
    solver = spec.solver
    options = solver.options
    assembler = solver.assembler
    newton = options.newton
    cache = solver.solver_cache
    g_matrix = assembler.conductance_matrix
    c_matrix = assembler.capacitance_matrix

    x = assembler.initial_solution(spec.initial_voltages)
    record_nodes = (
        options.record_nodes if options.record_nodes is not None else assembler.node_names
    )
    for node in record_nodes:
        assembler.index_of(node)

    times: List[float] = [0.0]
    history: Dict[str, List[float]] = {
        node: [
            float(x[assembler.index_of(node)])
            if assembler.index_of(node) is not None
            else 0.0
        ]
        for node in record_nodes
    }

    time_s = 0.0
    dt_s = options.dt_initial_s
    stop_reason = "tstop"
    steps = 0
    level = rescue_level()
    max_steps = options.max_steps * (1 + level)
    dt_min_s = options.dt_min_s / (10.0 ** level)

    while time_s < options.t_stop_s:
        if steps >= max_steps:
            raise ConvergenceError(
                f"transient exceeded {max_steps} accepted steps "
                f"before t_stop (reached t={time_s:.3e} s of "
                f"{options.t_stop_s:.3e} s)"
            )
        dt_s = min(dt_s, options.t_stop_s - time_s)

        # ---- inlined _newton_step(x, time_s + dt_s, dt_s, x) ----
        step_time_s = time_s + dt_s
        c_dot_prev_over_dt = c_matrix.dot(x) / dt_s
        b_now = assembler.source_vector(step_time_s)
        if options.method == "trapezoidal":
            c_factor = 2.0 / dt_s
            b_prev = assembler.source_vector(step_time_s - dt_s)
            stamp_prev = yield x
            history_term = (
                c_dot_prev_over_dt * 2.0
                - g_matrix.dot(x)
                - stamp_prev.residual
                + b_prev
            )
            rhs_const = b_now + history_term
        else:
            c_factor = 1.0 / dt_s
            rhs_const = b_now + c_dot_prev_over_dt
        static = cache.static_matrix(c_factor)

        solution: Optional[np.ndarray] = None
        x_iter = x.copy()
        for _iteration in range(newton.max_iterations):
            stamp = yield x_iter
            residual = static.dot(x_iter) + stamp.residual - rhs_const
            max_residual = (
                float(np.max(np.abs(residual))) if residual.size else 0.0
            )
            if max_residual < newton.abs_tolerance_a:
                solution = x_iter
                break
            try:
                delta = cache.solve(c_factor, stamp, -residual)
            except RuntimeError:
                solver._singular_seen = True
                solution = None
                break
            delta = np.asarray(delta).ravel()
            if not np.all(np.isfinite(delta)):
                solution = None
                break
            node_delta = delta[: assembler.n_nodes]
            max_step = (
                float(np.max(np.abs(node_delta))) if node_delta.size else 0.0
            )
            scale = 1.0
            if max_step > newton.max_voltage_step_v > 0.0:
                scale = newton.max_voltage_step_v / max_step
            x_iter = x_iter + scale * delta
        else:
            # Budget exhausted: one last residual check with the final iterate.
            stamp = yield x_iter
            residual = static.dot(x_iter) + stamp.residual - rhs_const
            if float(np.max(np.abs(residual))) < newton.abs_tolerance_a * 100.0:
                solution = x_iter
        # ---- end _newton_step ----

        if solution is None:
            dt_s *= options.dt_shrink
            if dt_s < dt_min_s:
                singular_note = (
                    " after a singular Jacobian was encountered"
                    if solver._singular_seen
                    else ""
                )
                raise ConvergenceError(
                    f"transient step at t={time_s:.3e} s failed below the "
                    f"minimum step size ({dt_min_s:.1e} s){singular_note}"
                )
            continue

        steps += 1
        time_s += dt_s
        x = solution
        times.append(time_s)
        voltages_now: Dict[str, float] = {}
        for node in record_nodes:
            index = assembler.index_of(node)
            value = 0.0 if index is None else float(x[index])
            history[node].append(value)
            voltages_now[node] = value

        if spec.stop_condition is not None and spec.stop_condition(
            time_s, voltages_now
        ):
            stop_reason = "stop-condition"
            break

        dt_s = min(dt_s * options.dt_growth, options.dt_max_s)

    return TransientResult(
        times_s=np.asarray(times),
        voltages={node: np.asarray(values) for node, values in history.items()},
        converged=True,
        stop_reason=stop_reason,
    )


def batch_run_transients(specs: Sequence[TransientLaneSpec]) -> List[LaneOutcome]:
    """Run many transient analyses with their device stamps batched.

    Every active lane's pending stamp evaluation is concatenated into one
    vectorised kernel call per tick; the implicit solves stay on each
    lane's own :class:`~repro.circuit.mna.CachedFactorSolver`, so lanes
    with different topologies (read ladders, write columns) batch
    together.  Waveforms are bitwise identical to per-lane
    :meth:`TransientSolver.run` calls.
    """
    outcomes: List[Optional[LaneOutcome]] = [None] * len(specs)
    gens: Dict[int, Generator[_StampRequest, NonlinearStamp, TransientResult]] = {}
    pending: Dict[int, np.ndarray] = {}
    stats = solver_stats()
    for index, spec in enumerate(specs):
        gen = _transient_lane(spec)
        try:
            pending[index] = gen.send(None)
            gens[index] = gen
        except StopIteration as done:
            outcomes[index] = done.value
        except (ConvergenceError, RuntimeError, np.linalg.LinAlgError) as exc:
            outcomes[index] = exc

    stats.batch_lanes += len(gens)
    while pending:
        order = sorted(pending)
        requests = [pending.pop(i) for i in order]
        plans = [specs[i].solver.assembler.batch_plan() for i in order]
        counts = [plan.n_devices for plan in plans]
        stats.batch_ticks += 1
        stats.batch_lane_iterations += len(order)
        # This driver re-queues every unfinished lane each tick, so slots
        # equal iterations here; the counter stays coherent with the DC
        # lockstep engine's occupancy ratio.
        stats.batch_lane_slots += len(order)
        stats.stamp_evals += 1
        stats.stamp_device_evals += sum(counts)
        vd_parts: List[np.ndarray] = []
        vg_parts: List[np.ndarray] = []
        vs_parts: List[np.ndarray] = []
        for x, plan in zip(requests, plans):
            x_ext = np.concatenate([x, [0.0]])
            vd_parts.append(x_ext[plan.drain_idx])
            vg_parts.append(x_ext[plan.gate_idx])
            vs_parts.append(x_ext[plan.source_idx])
        params = DeviceParams.stack([plan.params for plan in plans])
        ids, gm, gds = batch_operating_points(
            np.concatenate(vd_parts),
            np.concatenate(vg_parts),
            np.concatenate(vs_parts),
            params,
        )
        offsets = np.cumsum([0] + counts)
        for pos, i in enumerate(order):
            lo, hi = offsets[pos], offsets[pos + 1]
            stamp = _lane_stamp(
                specs[i].solver.assembler, ids[lo:hi], gm[lo:hi], gds[lo:hi]
            )
            gen = gens[i]
            try:
                pending[i] = gen.send(stamp)
            except StopIteration as done:
                outcomes[i] = done.value
                del gens[i]
            except (ConvergenceError, RuntimeError, np.linalg.LinAlgError) as exc:
                outcomes[i] = exc
                del gens[i]
    label = lane_group_label(len(specs))
    for outcome in outcomes:
        if isinstance(outcome, TransientResult):
            record_convergence(
                "batch_transient",
                max(0, len(outcome.times_s) - 1),
                True,
                lane_group=label,
            )
        elif isinstance(outcome, BaseException):
            record_convergence("batch_transient", 0, False, lane_group=label)
    return outcomes


# -- prepared measurements --------------------------------------------------------------
#
# The measurement layers (read/write columns, butterfly margins, the
# operation registry) split each measurement into *prepare* — build the
# circuits and lane specs — and *finish* — turn solved lanes back into a
# measurement.  The scalar entry points run prepare → run_lane_scalar →
# finish, the campaign's batched tier runs prepare for a whole chunk and
# solves every lane of every item in shared batches; both feed the same
# finish, so the two tiers share one code path end to end.

#: Any lane spec a :class:`PreparedWork` may carry.
LaneSpec = Union[SweepLaneSpec, OperatingPointLaneSpec, TransientLaneSpec]


@dataclass
class PreparedWork:
    """A deferred measurement: lane specs plus a ``finish`` continuation.

    ``finish`` receives the lane results in ``lanes`` order and returns
    the measurement.  A prepared item may carry zero lanes (a memo hit):
    ``finish`` is then called with an empty list.
    """

    lanes: List[LaneSpec] = field(default_factory=list)
    finish: Callable[[Sequence[Any]], Any] = lambda results: None

    def mapped(self, wrap: Callable[[Any], Any]) -> "PreparedWork":
        """A new prepared item whose finish post-processes this one's."""
        inner = self.finish
        return PreparedWork(
            lanes=self.lanes, finish=lambda results: wrap(inner(results))
        )

    def run_scalar(self) -> Any:
        """Solve the lanes with the scalar oracle and finish."""
        return self.finish([run_lane_scalar(lane) for lane in self.lanes])


def run_lane_scalar(lane: LaneSpec) -> Union[DCResult, DCSweepResult, TransientResult]:
    """Solve one lane spec through the scalar solver it shadows."""
    if isinstance(lane, SweepLaneSpec):
        return dc_sweep(
            lane.circuit,
            lane.source_name,
            lane.values,
            initial_voltages=lane.initial_voltages,
            options=lane.options,
            gmin_s=lane.gmin_s,
        )
    if isinstance(lane, OperatingPointLaneSpec):
        return dc_operating_point(
            lane.circuit,
            initial_voltages=lane.initial_voltages,
            options=lane.options,
            gmin_s=lane.gmin_s,
            source_overrides=lane.source_overrides,
        )
    return lane.solver.run(
        initial_voltages=lane.initial_voltages,
        stop_condition=lane.stop_condition,
    )


def solve_prepared(items: Sequence[PreparedWork]) -> List[Any]:
    """Solve many prepared measurements with their lanes batched jointly.

    All sweep lanes across all items go into one :func:`batch_dc_sweep`
    call (likewise operating points and transients), so same-topology
    work from *different* items stacks into shared lockstep groups — the
    batching is global over the chunk, not per measurement.

    Returns one entry per item: the ``finish`` value, or the exception
    that item hit (its first failed lane, or what ``finish`` raised).
    Items never poison each other.
    """
    sweep_refs: List[Tuple[int, int]] = []
    op_refs: List[Tuple[int, int]] = []
    transient_refs: List[Tuple[int, int]] = []
    sweep_specs: List[SweepLaneSpec] = []
    op_specs: List[OperatingPointLaneSpec] = []
    transient_specs: List[TransientLaneSpec] = []
    lane_results: List[List[Any]] = []
    for item_index, item in enumerate(items):
        lane_results.append([None] * len(item.lanes))
        for lane_index, lane in enumerate(item.lanes):
            if isinstance(lane, SweepLaneSpec):
                sweep_refs.append((item_index, lane_index))
                sweep_specs.append(lane)
            elif isinstance(lane, OperatingPointLaneSpec):
                op_refs.append((item_index, lane_index))
                op_specs.append(lane)
            else:
                transient_refs.append((item_index, lane_index))
                transient_specs.append(lane)
    for refs, outcomes in (
        (sweep_refs, batch_dc_sweep(sweep_specs) if sweep_specs else []),
        (op_refs, batch_dc_operating_points(op_specs) if op_specs else []),
        (transient_refs, batch_run_transients(transient_specs) if transient_specs else []),
    ):
        for (item_index, lane_index), outcome in zip(refs, outcomes):
            lane_results[item_index][lane_index] = outcome

    results: List[Any] = []
    for item, outcomes in zip(items, lane_results):
        failed = next(
            (o for o in outcomes if isinstance(o, BaseException)), None
        )
        if failed is not None:
            results.append(failed)
            continue
        try:
            results.append(item.finish(outcomes))
        except Exception as exc:  # noqa: BLE001 - item isolation by design
            results.append(exc)
    return results
