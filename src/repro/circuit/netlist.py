"""Circuit netlist container.

A :class:`Circuit` is a named collection of elements connected between
named nodes.  Node ``"0"`` (alias ``"gnd"``) is the global ground.  The
circuit only stores topology; matrix assembly lives in
:mod:`repro.circuit.mna` and the solvers in :mod:`repro.circuit.dc` /
:mod:`repro.circuit.transient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .elements import CircuitElement, TwoTerminal

#: Node names treated as the global ground.
GROUND_NAMES = ("0", "gnd", "GND", "vss!", "VSS!")


class NetlistError(ValueError):
    """Raised for malformed circuits."""


def is_ground(node: str) -> bool:
    """Whether a node name refers to the global ground."""
    return node in GROUND_NAMES


class Circuit:
    """A flat netlist of circuit elements.

    Parameters
    ----------
    title:
        Free-form description, stored for netlist export.
    """

    def __init__(self, title: str = "untitled") -> None:
        self.title = title
        self._elements: Dict[str, CircuitElement] = {}

    # -- element management ----------------------------------------------------

    def add(self, element: CircuitElement) -> CircuitElement:
        """Add an element; its name must be unique within the circuit."""
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._elements[element.name] = element
        return element

    def add_all(self, elements: Iterable[CircuitElement]) -> None:
        for element in elements:
            self.add(element)

    def element(self, name: str) -> CircuitElement:
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(
                f"no element named {name!r}; elements: {sorted(self._elements)[:20]}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[CircuitElement]:
        return iter(self._elements.values())

    @property
    def elements(self) -> List[CircuitElement]:
        return list(self._elements.values())

    def elements_of_type(self, element_type: type) -> List[CircuitElement]:
        return [element for element in self._elements.values() if isinstance(element, element_type)]

    # -- node management ---------------------------------------------------------

    def nodes(self) -> List[str]:
        """All non-ground node names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for element in self._elements.values():
            for node in element.nodes():
                if not is_ground(node):
                    seen.setdefault(node, None)
        return list(seen)

    def node_count(self) -> int:
        return len(self.nodes())

    def connected_elements(self, node: str) -> List[CircuitElement]:
        return [
            element
            for element in self._elements.values()
            if node in element.nodes()
        ]

    def validate(self) -> None:
        """Basic sanity checks: every node must connect at least two terminals
        (or one terminal plus ground-referenced elements), and the circuit
        must reference ground somewhere."""
        if not self._elements:
            raise NetlistError("the circuit has no elements")
        touches_ground = any(
            any(is_ground(node) for node in element.nodes())
            for element in self._elements.values()
        )
        if not touches_ground:
            raise NetlistError("the circuit never references ground ('0')")
        connection_count: Dict[str, int] = {}
        for element in self._elements.values():
            for node in element.nodes():
                if is_ground(node):
                    continue
                connection_count[node] = connection_count.get(node, 0) + 1
        floating = sorted(
            node for node, count in connection_count.items() if count < 2
        )
        if floating:
            raise NetlistError(
                "floating nodes (connected to a single terminal): "
                f"{floating[:10]}{'...' if len(floating) > 10 else ''}"
            )

    # -- convenience summaries ----------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Element count per class name plus the node count."""
        counts: Dict[str, int] = {}
        for element in self._elements.values():
            counts[type(element).__name__] = counts.get(type(element).__name__, 0) + 1
        counts["nodes"] = self.node_count()
        return counts

    def total_capacitance_on(self, node: str) -> float:
        """Sum of capacitor values attached to ``node`` (diagnostics only)."""
        from .elements import Capacitor

        total = 0.0
        for element in self.elements_of_type(Capacitor):
            if node in element.nodes():
                total += element.capacitance_f
        return total
