"""SPICE-compatible netlist export and a small netlist parser.

The paper's flow stores "netlists (with parasitics)" produced by the LPE
tool; this module provides the equivalent interchange: any
:class:`~repro.circuit.netlist.Circuit` can be written as a SPICE deck
(resistors, capacitors, sources, MOSFETs as ``.model``-less M-cards with
inline parameters), and a structural subset (R, C, V DC, I DC) can be read
back — enough to round-trip extracted RC networks through external tools
or into an external SPICE for cross-checking.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

from ..technology.transistors import DeviceType, FinFETParameters
from .elements import (
    DC,
    Capacitor,
    CurrentSource,
    PiecewiseLinear,
    Pulse,
    Resistor,
    VoltageSource,
    Waveform,
)
from .mosfet import MOSFET
from .netlist import Circuit, NetlistError


class SpiceFormatError(ValueError):
    """Raised for netlists that cannot be exported or parsed."""


def _format_value(value: float) -> str:
    """Engineering-style formatting with enough digits for round-tripping."""
    return f"{value:.9g}"


def _format_waveform(waveform: Waveform) -> str:
    if isinstance(waveform, DC):
        return f"DC {_format_value(waveform.level)}"
    if isinstance(waveform, Pulse):
        return (
            "PULSE("
            + " ".join(
                _format_value(value)
                for value in (
                    waveform.initial,
                    waveform.pulsed,
                    waveform.delay_s,
                    waveform.rise_s,
                    waveform.fall_s,
                    waveform.width_s,
                    waveform.period_s,
                )
            )
            + ")"
        )
    if isinstance(waveform, PiecewiseLinear):
        flat = " ".join(
            f"{_format_value(time)} {_format_value(value)}"
            for time, value in waveform.points
        )
        return f"PWL({flat})"
    raise SpiceFormatError(f"cannot format waveform of type {type(waveform).__name__}")


def write_spice(circuit: Circuit, destination: Union[str, Path, TextIO, None] = None) -> str:
    """Write a circuit as a SPICE deck; returns the text.

    When ``destination`` is a path or file object the text is also written
    there.
    """
    lines: List[str] = [f"* {circuit.title}"]
    for element in circuit:
        if isinstance(element, Resistor):
            lines.append(
                f"R{element.name} {element.positive} {element.negative} "
                f"{_format_value(element.resistance_ohm)}"
            )
        elif isinstance(element, Capacitor):
            suffix = ""
            if element.initial_voltage_v is not None:
                suffix = f" IC={_format_value(element.initial_voltage_v)}"
            lines.append(
                f"C{element.name} {element.positive} {element.negative} "
                f"{_format_value(element.capacitance_f)}{suffix}"
            )
        elif isinstance(element, VoltageSource):
            lines.append(
                f"V{element.name} {element.positive} {element.negative} "
                f"{_format_waveform(element.waveform)}"
            )
        elif isinstance(element, CurrentSource):
            lines.append(
                f"I{element.name} {element.positive} {element.negative} "
                f"{_format_waveform(element.waveform)}"
            )
        elif isinstance(element, MOSFET):
            p = element.parameters
            model_type = "nmos" if p.device_type is DeviceType.NMOS else "pmos"
            lines.append(
                f"M{element.name} {element.drain} {element.gate} {element.source} "
                f"{element.source} {model_type} nfins={element.nfins} "
                f"vth={_format_value(p.vth_v)} alpha={_format_value(p.alpha)} "
                f"k={_format_value(p.k_a_per_valpha)}"
            )
        else:
            raise SpiceFormatError(
                f"element {element.name!r} of type {type(element).__name__} "
                "has no SPICE representation"
            )
    lines.append(".end")
    text = "\n".join(lines) + "\n"

    if destination is None:
        return text
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text, encoding="utf-8")
        return text
    destination.write(text)
    return text


def _parse_number(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    suffixes = {
        "t": 1e12, "g": 1e9, "meg": 1e6, "k": 1e3,
        "m": 1e-3, "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15, "a": 1e-18,
    }
    lowered = token.lower()
    for suffix in ("meg",):
        if lowered.endswith(suffix):
            return float(lowered[: -len(suffix)]) * suffixes[suffix]
    if lowered and lowered[-1] in suffixes and suffixes.get(lowered[-1]) is not None:
        try:
            return float(lowered[:-1]) * suffixes[lowered[-1]]
        except ValueError:
            pass
    try:
        return float(lowered)
    except ValueError:
        raise SpiceFormatError(f"cannot parse number {token!r}") from None


def read_spice(source: Union[str, Path, TextIO], title: str = "imported") -> Circuit:
    """Parse a structural SPICE subset (R, C, V DC, I DC) into a circuit.

    Lines starting with ``*`` are comments; ``.``-cards are ignored except
    ``.end``.  MOSFET cards are rejected (the inline-parameter format is a
    write-only convenience).
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        text = Path(source).read_text(encoding="utf-8")
    elif isinstance(source, str):
        text = source
    elif isinstance(source, Path):
        text = source.read_text(encoding="utf-8")
    else:
        text = source.read()

    circuit = Circuit(title=title)
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("*"):
            continue
        if line.lower().startswith(".end"):
            break
        if line.startswith("."):
            continue
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        name = card[1:] if len(card) > 1 else card
        if kind == "R":
            if len(tokens) < 4:
                raise SpiceFormatError(f"malformed resistor card: {line!r}")
            circuit.add(Resistor(name, tokens[1], tokens[2], _parse_number(tokens[3])))
        elif kind == "C":
            if len(tokens) < 4:
                raise SpiceFormatError(f"malformed capacitor card: {line!r}")
            initial: Optional[float] = None
            for token in tokens[4:]:
                if token.upper().startswith("IC="):
                    initial = _parse_number(token.split("=", 1)[1])
            circuit.add(
                Capacitor(name, tokens[1], tokens[2], _parse_number(tokens[3]), initial)
            )
        elif kind == "V":
            if len(tokens) < 4:
                raise SpiceFormatError(f"malformed voltage-source card: {line!r}")
            level_token = tokens[4] if tokens[3].upper() == "DC" and len(tokens) > 4 else tokens[3]
            if level_token.upper() == "DC":
                raise SpiceFormatError(f"missing DC level in: {line!r}")
            circuit.add(VoltageSource.dc(name, tokens[1], tokens[2], _parse_number(level_token)))
        elif kind == "I":
            if len(tokens) < 4:
                raise SpiceFormatError(f"malformed current-source card: {line!r}")
            level_token = tokens[4] if tokens[3].upper() == "DC" and len(tokens) > 4 else tokens[3]
            circuit.add(CurrentSource.dc(name, tokens[1], tokens[2], _parse_number(level_token)))
        elif kind == "M":
            raise SpiceFormatError(
                "MOSFET cards cannot be re-imported; rebuild devices via the API"
            )
        else:
            raise SpiceFormatError(f"unsupported card {card!r}")
    return circuit
