"""Alpha-power-law FinFET compact model.

The study needs a transistor model that is (a) smooth enough for Newton
iteration, (b) calibrated to N10-class drive currents and capacitances and
(c) honest about the physics that matters for the bit-line discharge: the
pass-gate/pull-down series path behaves like a saturated current source
early in the discharge and like a resistor near the end.

The drain current follows Sakurai's alpha-power law with

* a softplus-smoothed overdrive (so the device turns off smoothly and the
  Jacobian never becomes exactly singular),
* the classic quadratic linear-region interpolation below ``Vdsat``,
* channel-length modulation in saturation, and
* symmetric operation (drain and source swap when ``Vds < 0``).

Gate, drain and source capacitances are taken as constant per-fin values
from :class:`repro.technology.transistors.FinFETParameters`; the circuit
builder adds them as explicit linear capacitors, keeping the nonlinear
element purely resistive (a standard quasi-static simplification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..technology.transistors import DeviceType, FinFETParameters
from .elements import CircuitElement, ElementError

#: Smoothing width (volts) of the softplus overdrive.
OVERDRIVE_SMOOTHING_V = 0.02

#: Central-difference step of :meth:`MOSFET.operating_point` (volts).
DERIVATIVE_STEP_V = 1e-6


@dataclass(frozen=True)
class OperatingPoint:
    """Drain current and small-signal conductances at a bias point."""

    ids_a: float
    gm_s: float
    gds_s: float
    vgs_v: float
    vds_v: float

    @property
    def saturated(self) -> bool:
        """Rough saturation flag (|Vds| above the effective overdrive)."""
        return abs(self.vds_v) >= max(abs(self.vgs_v), 1e-12)


def _softplus(value: float, width: float) -> float:
    """Numerically safe softplus: ``width * ln(1 + exp(value / width))``.

    Uses numpy's scalar ufuncs (not ``math``) so each branch is bitwise
    identical to the vectorised evaluation in :func:`batch_drain_currents`
    — the batched solver tier relies on exact agreement with this scalar
    reference path.
    """
    scaled = value / width
    if scaled > 40.0:
        return value
    if scaled < -40.0:
        return width * np.exp(scaled)
    return width * np.log1p(np.exp(scaled))


class MOSFET(CircuitElement):
    """A FinFET between drain, gate and source (bulk tied to source).

    Parameters
    ----------
    name:
        Element name.
    drain, gate, source:
        Node names.
    parameters:
        The compact-model parameters.
    nfins:
        Number of fins (parallel multiplier).
    """

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        parameters: FinFETParameters,
        nfins: int = 1,
    ) -> None:
        super().__init__(name)
        if nfins < 1:
            raise ElementError(f"MOSFET {name!r}: nfins must be at least 1")
        self.drain = drain
        self.gate = gate
        self.source = source
        self.parameters = parameters
        self.nfins = nfins

    def nodes(self) -> Tuple[str, ...]:
        return (self.drain, self.gate, self.source)

    # -- current equations -------------------------------------------------------

    @property
    def _polarity(self) -> float:
        return 1.0 if self.parameters.device_type is DeviceType.NMOS else -1.0

    def _forward_current(self, vgs: float, vds: float) -> float:
        """Drain current for ``vds >= 0`` of the equivalent N-type device."""
        p = self.parameters
        overdrive = _softplus(vgs - p.vth_v, OVERDRIVE_SMOOTHING_V)
        if overdrive <= 0.0:
            return 0.0
        # np.power, not ``**``: float.__pow__ takes a different libm path
        # and would break bit-parity with the batched kernel.
        idsat = p.k_a_per_valpha * self.nfins * np.power(overdrive, p.alpha)
        vdsat = max(overdrive, 1e-9)
        clm = 1.0 + p.lambda_per_v * vds
        if vds >= vdsat:
            return idsat * clm
        ratio = vds / vdsat
        return idsat * (2.0 - ratio) * ratio * clm

    def drain_current_a(self, v_drain: float, v_gate: float, v_source: float) -> float:
        """Terminal drain current (positive into the drain for NMOS conduction)."""
        polarity = self._polarity
        vds = polarity * (v_drain - v_source)
        if vds >= 0.0:
            vgs = polarity * (v_gate - v_source)
            return polarity * self._forward_current(vgs, vds)
        # Symmetric operation: the physical source is the higher-potential
        # terminal for NMOS (lower for PMOS); swap and negate.
        vgs = polarity * (v_gate - v_drain)
        return -polarity * self._forward_current(vgs, -vds)

    def operating_point(
        self, v_drain: float, v_gate: float, v_source: float
    ) -> OperatingPoint:
        """Current and conductances via central finite differences.

        Finite differences keep the model code simple and are accurate to
        ~1e-6 relative for the smooth equations above; the Newton solver
        only needs a descent direction, not exact derivatives.
        """
        delta = DERIVATIVE_STEP_V
        ids = self.drain_current_a(v_drain, v_gate, v_source)
        gm = (
            self.drain_current_a(v_drain, v_gate + delta, v_source)
            - self.drain_current_a(v_drain, v_gate - delta, v_source)
        ) / (2.0 * delta)
        gds = (
            self.drain_current_a(v_drain + delta, v_gate, v_source)
            - self.drain_current_a(v_drain - delta, v_gate, v_source)
        ) / (2.0 * delta)
        return OperatingPoint(
            ids_a=ids,
            gm_s=gm,
            gds_s=gds,
            vgs_v=v_gate - v_source,
            vds_v=v_drain - v_source,
        )

    # -- capacitances -------------------------------------------------------------

    def terminal_capacitances_f(self) -> Dict[str, float]:
        """Constant lumped capacitances from each terminal to ground."""
        p = self.parameters
        return {
            self.gate: p.cgate_f_per_fin * self.nfins,
            self.drain: p.cdrain_f_per_fin * self.nfins,
            self.source: p.csource_f_per_fin * self.nfins,
        }

    # -- convenience ----------------------------------------------------------------

    def on_current_a(self, vdd_v: float) -> float:
        """Saturation current at ``Vgs = Vds = Vdd`` (sign-free magnitude)."""
        return abs(
            self.drain_current_a(
                v_drain=vdd_v if self._polarity > 0 else 0.0,
                v_gate=vdd_v if self._polarity > 0 else 0.0,
                v_source=0.0 if self._polarity > 0 else vdd_v,
            )
        )


# -- batched evaluation -------------------------------------------------------------
#
# The batched solver tier evaluates every device of every stacked work item
# in one vectorised pass.  Each expression below is the element-wise twin of
# the scalar methods above (same operations, same order, same numpy ufuncs),
# so the two paths produce bitwise-identical currents and conductances — the
# property the rtol<=1e-12 parity gate rests on.


@dataclass(frozen=True)
class DeviceParams:
    """Per-device compact-model parameters as flat arrays.

    One entry per MOSFET instance; ``k_a`` folds in the fin multiplier
    (``k_a_per_valpha * nfins``), matching the scalar product order.
    """

    polarity: np.ndarray
    vth_v: np.ndarray
    k_a: np.ndarray
    alpha: np.ndarray
    lambda_per_v: np.ndarray

    def __len__(self) -> int:
        return self.polarity.shape[0]

    @classmethod
    def from_devices(cls, devices: Sequence[MOSFET]) -> "DeviceParams":
        return cls(
            polarity=np.array([d._polarity for d in devices]),
            vth_v=np.array([d.parameters.vth_v for d in devices]),
            k_a=np.array(
                [d.parameters.k_a_per_valpha * d.nfins for d in devices]
            ),
            alpha=np.array([d.parameters.alpha for d in devices]),
            lambda_per_v=np.array([d.parameters.lambda_per_v for d in devices]),
        )

    @classmethod
    def stack(cls, items: Sequence["DeviceParams"]) -> "DeviceParams":
        """Concatenate per-item parameter sets into one batch-flat set."""
        return cls(
            polarity=np.concatenate([p.polarity for p in items]),
            vth_v=np.concatenate([p.vth_v for p in items]),
            k_a=np.concatenate([p.k_a for p in items]),
            alpha=np.concatenate([p.alpha for p in items]),
            lambda_per_v=np.concatenate([p.lambda_per_v for p in items]),
        )

    def tile(self, repeats: int) -> "DeviceParams":
        return DeviceParams(
            polarity=np.tile(self.polarity, repeats),
            vth_v=np.tile(self.vth_v, repeats),
            k_a=np.tile(self.k_a, repeats),
            alpha=np.tile(self.alpha, repeats),
            lambda_per_v=np.tile(self.lambda_per_v, repeats),
        )


def _batch_softplus(value: np.ndarray, width: float) -> np.ndarray:
    """Vectorised :func:`_softplus`; selected branches match it bitwise."""
    scaled = value / width
    big = scaled > 40.0
    small = scaled < -40.0
    # Zero the large inputs before exp so inactive lanes cannot overflow;
    # lanes that take the mid/small branches see their true exp(scaled).
    exp_scaled = np.exp(np.where(big, 0.0, scaled))
    mid = width * np.log1p(exp_scaled)
    return np.where(big, value, np.where(small, width * exp_scaled, mid))


def _batch_forward_current(
    vgs: np.ndarray, vds: np.ndarray, params: DeviceParams
) -> np.ndarray:
    """Vectorised :meth:`MOSFET._forward_current` (``vds >= 0`` assumed)."""
    overdrive = _batch_softplus(vgs - params.vth_v, OVERDRIVE_SMOOTHING_V)
    idsat = params.k_a * np.power(overdrive, params.alpha)
    vdsat = np.maximum(overdrive, 1e-9)
    clm = 1.0 + params.lambda_per_v * vds
    ratio = vds / vdsat
    linear = idsat * (2.0 - ratio) * ratio * clm
    current = np.where(vds >= vdsat, idsat * clm, linear)
    return np.where(overdrive <= 0.0, 0.0, current)


def batch_drain_currents(
    v_drain: np.ndarray,
    v_gate: np.ndarray,
    v_source: np.ndarray,
    params: DeviceParams,
) -> np.ndarray:
    """Vectorised :meth:`MOSFET.drain_current_a` over device lanes."""
    polarity = params.polarity
    vds_raw = polarity * (v_drain - v_source)
    forward = vds_raw >= 0.0
    # Symmetric operation: swap drain/source on the reverse lanes.
    vgs = polarity * (np.where(forward, v_gate - v_source, v_gate - v_drain))
    vds = np.where(forward, vds_raw, -vds_raw)
    current = _batch_forward_current(vgs, vds, params)
    return np.where(forward, polarity, -polarity) * current


def batch_operating_points(
    v_drain: np.ndarray,
    v_gate: np.ndarray,
    v_source: np.ndarray,
    params: DeviceParams,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :meth:`MOSFET.operating_point`: ``(ids, gm, gds)`` arrays.

    Evaluates the five central-difference bias points as one stacked kernel
    call; every element reproduces the scalar method bitwise.
    """
    delta = DERIVATIVE_STEP_V
    n = v_drain.shape[0]
    vd5 = np.empty((5, n))
    vg5 = np.empty((5, n))
    vd5[:3] = v_drain
    vd5[3] = v_drain + delta
    vd5[4] = v_drain - delta
    vg5[0] = v_gate
    vg5[1] = v_gate + delta
    vg5[2] = v_gate - delta
    vg5[3:] = v_gate
    ids5 = batch_drain_currents(vd5, vg5, v_source, params)
    ids = ids5[0]
    gm = (ids5[1] - ids5[2]) / (2.0 * delta)
    gds = (ids5[3] - ids5[4]) / (2.0 * delta)
    return ids, gm, gds
