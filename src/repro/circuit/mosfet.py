"""Alpha-power-law FinFET compact model.

The study needs a transistor model that is (a) smooth enough for Newton
iteration, (b) calibrated to N10-class drive currents and capacitances and
(c) honest about the physics that matters for the bit-line discharge: the
pass-gate/pull-down series path behaves like a saturated current source
early in the discharge and like a resistor near the end.

The drain current follows Sakurai's alpha-power law with

* a softplus-smoothed overdrive (so the device turns off smoothly and the
  Jacobian never becomes exactly singular),
* the classic quadratic linear-region interpolation below ``Vdsat``,
* channel-length modulation in saturation, and
* symmetric operation (drain and source swap when ``Vds < 0``).

Gate, drain and source capacitances are taken as constant per-fin values
from :class:`repro.technology.transistors.FinFETParameters`; the circuit
builder adds them as explicit linear capacitors, keeping the nonlinear
element purely resistive (a standard quasi-static simplification).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..technology.transistors import DeviceType, FinFETParameters
from .elements import CircuitElement, ElementError

#: Smoothing width (volts) of the softplus overdrive.
OVERDRIVE_SMOOTHING_V = 0.02


@dataclass(frozen=True)
class OperatingPoint:
    """Drain current and small-signal conductances at a bias point."""

    ids_a: float
    gm_s: float
    gds_s: float
    vgs_v: float
    vds_v: float

    @property
    def saturated(self) -> bool:
        """Rough saturation flag (|Vds| above the effective overdrive)."""
        return abs(self.vds_v) >= max(abs(self.vgs_v), 1e-12)


def _softplus(value: float, width: float) -> float:
    """Numerically safe softplus: ``width * ln(1 + exp(value / width))``."""
    scaled = value / width
    if scaled > 40.0:
        return value
    if scaled < -40.0:
        return width * math.exp(scaled)
    return width * math.log1p(math.exp(scaled))


class MOSFET(CircuitElement):
    """A FinFET between drain, gate and source (bulk tied to source).

    Parameters
    ----------
    name:
        Element name.
    drain, gate, source:
        Node names.
    parameters:
        The compact-model parameters.
    nfins:
        Number of fins (parallel multiplier).
    """

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        parameters: FinFETParameters,
        nfins: int = 1,
    ) -> None:
        super().__init__(name)
        if nfins < 1:
            raise ElementError(f"MOSFET {name!r}: nfins must be at least 1")
        self.drain = drain
        self.gate = gate
        self.source = source
        self.parameters = parameters
        self.nfins = nfins

    def nodes(self) -> Tuple[str, ...]:
        return (self.drain, self.gate, self.source)

    # -- current equations -------------------------------------------------------

    @property
    def _polarity(self) -> float:
        return 1.0 if self.parameters.device_type is DeviceType.NMOS else -1.0

    def _forward_current(self, vgs: float, vds: float) -> float:
        """Drain current for ``vds >= 0`` of the equivalent N-type device."""
        p = self.parameters
        overdrive = _softplus(vgs - p.vth_v, OVERDRIVE_SMOOTHING_V)
        if overdrive <= 0.0:
            return 0.0
        idsat = p.k_a_per_valpha * self.nfins * overdrive**p.alpha
        vdsat = max(overdrive, 1e-9)
        clm = 1.0 + p.lambda_per_v * vds
        if vds >= vdsat:
            return idsat * clm
        ratio = vds / vdsat
        return idsat * (2.0 - ratio) * ratio * clm

    def drain_current_a(self, v_drain: float, v_gate: float, v_source: float) -> float:
        """Terminal drain current (positive into the drain for NMOS conduction)."""
        polarity = self._polarity
        vds = polarity * (v_drain - v_source)
        if vds >= 0.0:
            vgs = polarity * (v_gate - v_source)
            return polarity * self._forward_current(vgs, vds)
        # Symmetric operation: the physical source is the higher-potential
        # terminal for NMOS (lower for PMOS); swap and negate.
        vgs = polarity * (v_gate - v_drain)
        return -polarity * self._forward_current(vgs, -vds)

    def operating_point(
        self, v_drain: float, v_gate: float, v_source: float
    ) -> OperatingPoint:
        """Current and conductances via central finite differences.

        Finite differences keep the model code simple and are accurate to
        ~1e-6 relative for the smooth equations above; the Newton solver
        only needs a descent direction, not exact derivatives.
        """
        delta = 1e-6
        ids = self.drain_current_a(v_drain, v_gate, v_source)
        gm = (
            self.drain_current_a(v_drain, v_gate + delta, v_source)
            - self.drain_current_a(v_drain, v_gate - delta, v_source)
        ) / (2.0 * delta)
        gds = (
            self.drain_current_a(v_drain + delta, v_gate, v_source)
            - self.drain_current_a(v_drain - delta, v_gate, v_source)
        ) / (2.0 * delta)
        return OperatingPoint(
            ids_a=ids,
            gm_s=gm,
            gds_s=gds,
            vgs_v=v_gate - v_source,
            vds_v=v_drain - v_source,
        )

    # -- capacitances -------------------------------------------------------------

    def terminal_capacitances_f(self) -> Dict[str, float]:
        """Constant lumped capacitances from each terminal to ground."""
        p = self.parameters
        return {
            self.gate: p.cgate_f_per_fin * self.nfins,
            self.drain: p.cdrain_f_per_fin * self.nfins,
            self.source: p.csource_f_per_fin * self.nfins,
        }

    # -- convenience ----------------------------------------------------------------

    def on_current_a(self, vdd_v: float) -> float:
        """Saturation current at ``Vgs = Vds = Vdd`` (sign-free magnitude)."""
        return abs(
            self.drain_current_a(
                v_drain=vdd_v if self._polarity > 0 else 0.0,
                v_gate=vdd_v if self._polarity > 0 else 0.0,
                v_source=0.0 if self._polarity > 0 else vdd_v,
            )
        )
