"""Modified nodal analysis (MNA) assembly.

The assembler maps a :class:`~repro.circuit.netlist.Circuit` onto the MNA
unknown vector ``x = [node voltages, voltage-source branch currents]`` and
produces:

* ``G`` — the constant conductance matrix (resistors, gmin, voltage-source
  incidence rows/columns);
* ``C`` — the constant capacitance matrix;
* ``b(t)`` — the source vector at a given time;
* per-Newton-iteration stamps of the nonlinear devices (MOSFETs), i.e. the
  Jacobian contributions and the residual currents.

Sparse matrices (scipy) are used throughout so that kilobit bit-line
ladders with thousands of nodes stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from .elements import Capacitor, CurrentSource, Resistor, VoltageSource
from .mosfet import MOSFET
from .netlist import Circuit, NetlistError, is_ground

#: Minimum conductance from every node to ground, for numerical robustness.
DEFAULT_GMIN_S = 1e-12


class MNAError(RuntimeError):
    """Raised when the MNA system cannot be assembled or is singular."""


@dataclass
class NonlinearStamp:
    """Jacobian triplets and residual currents of the nonlinear devices."""

    rows: List[int]
    cols: List[int]
    values: List[float]
    residual: np.ndarray


class MNAAssembler:
    """Maps a circuit onto MNA matrices.

    Parameters
    ----------
    circuit:
        The circuit to assemble; it is validated on construction.
    gmin_s:
        Conductance added from every node to ground.
    """

    def __init__(self, circuit: Circuit, gmin_s: float = DEFAULT_GMIN_S) -> None:
        circuit.validate()
        self.circuit = circuit
        self.gmin_s = gmin_s

        self._node_names: List[str] = circuit.nodes()
        self._node_index: Dict[str, int] = {
            name: index for index, name in enumerate(self._node_names)
        }
        self.voltage_sources: List[VoltageSource] = list(
            circuit.elements_of_type(VoltageSource)
        )
        self.current_sources: List[CurrentSource] = list(
            circuit.elements_of_type(CurrentSource)
        )
        self.mosfets: List[MOSFET] = list(circuit.elements_of_type(MOSFET))
        self.resistors: List[Resistor] = list(circuit.elements_of_type(Resistor))
        self.capacitors: List[Capacitor] = list(circuit.elements_of_type(Capacitor))

        self.n_nodes = len(self._node_names)
        self.n_branches = len(self.voltage_sources)
        self.size = self.n_nodes + self.n_branches

        self._g_matrix = self._build_conductance_matrix()
        self._c_matrix = self._build_capacitance_matrix()

    # -- index helpers -------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    def index_of(self, node: str) -> Optional[int]:
        """MNA index of a node (``None`` for ground)."""
        if is_ground(node):
            return None
        try:
            return self._node_index[node]
        except KeyError:
            raise MNAError(f"unknown node {node!r}") from None

    def branch_index(self, source_name: str) -> int:
        for offset, source in enumerate(self.voltage_sources):
            if source.name == source_name:
                return self.n_nodes + offset
        raise MNAError(f"no voltage source named {source_name!r}")

    # -- static matrices -------------------------------------------------------------

    def _build_conductance_matrix(self) -> sparse.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []

        def stamp(row: Optional[int], col: Optional[int], value: float) -> None:
            if row is None or col is None:
                return
            rows.append(row)
            cols.append(col)
            values.append(value)

        for resistor in self.resistors:
            conductance = resistor.conductance_s
            p = self.index_of(resistor.positive)
            n = self.index_of(resistor.negative)
            stamp(p, p, conductance)
            stamp(n, n, conductance)
            stamp(p, n, -conductance)
            stamp(n, p, -conductance)

        if self.gmin_s > 0.0:
            for index in range(self.n_nodes):
                rows.append(index)
                cols.append(index)
                values.append(self.gmin_s)

        for offset, source in enumerate(self.voltage_sources):
            branch = self.n_nodes + offset
            p = self.index_of(source.positive)
            n = self.index_of(source.negative)
            if p is not None:
                rows.extend([p, branch])
                cols.extend([branch, p])
                values.extend([1.0, 1.0])
            if n is not None:
                rows.extend([n, branch])
                cols.extend([branch, n])
                values.extend([-1.0, -1.0])

        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(self.size, self.size)
        )

    def _build_capacitance_matrix(self) -> sparse.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        for capacitor in self.capacitors:
            if capacitor.capacitance_f == 0.0:
                continue
            p = self.index_of(capacitor.positive)
            n = self.index_of(capacitor.negative)
            c = capacitor.capacitance_f
            if p is not None:
                rows.append(p)
                cols.append(p)
                values.append(c)
            if n is not None:
                rows.append(n)
                cols.append(n)
                values.append(c)
            if p is not None and n is not None:
                rows.extend([p, n])
                cols.extend([n, p])
                values.extend([-c, -c])
        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(self.size, self.size)
        )

    @property
    def conductance_matrix(self) -> sparse.csr_matrix:
        return self._g_matrix

    @property
    def capacitance_matrix(self) -> sparse.csr_matrix:
        return self._c_matrix

    # -- sources -----------------------------------------------------------------------

    def source_vector(self, time_s: float) -> np.ndarray:
        """The right-hand-side source vector at ``time_s``."""
        b = np.zeros(self.size)
        for offset, source in enumerate(self.voltage_sources):
            b[self.n_nodes + offset] = source.value_at(time_s)
        for source in self.current_sources:
            value = source.value_at(time_s)
            p = self.index_of(source.positive)
            n = self.index_of(source.negative)
            if p is not None:
                b[p] -= value
            if n is not None:
                b[n] += value
        return b

    # -- nonlinear stamps ------------------------------------------------------------------

    @staticmethod
    def _device_stamp_pairs(
        d: Optional[int], g: Optional[int], s: Optional[int]
    ) -> Tuple[Tuple[Optional[int], Optional[int]], ...]:
        """The (row, col) emission order of one MOSFET's Jacobian stamp.

        Single source of truth shared by :meth:`nonlinear_stamp` and
        :meth:`nonlinear_positions` — the factorisation cache maps stamp
        values to CSC positions by this order, so the two must never
        diverge.
        """
        return ((d, d), (d, g), (d, s), (s, d), (s, g), (s, s))

    def nonlinear_positions(self) -> Tuple[List[int], List[int]]:
        """The fixed (row, col) sequence :meth:`nonlinear_stamp` emits.

        The Jacobian contributions of the MOSFETs always land on the same
        matrix positions in the same order — only the values change between
        Newton iterations.  The factorisation cache exploits this to map
        stamp values straight into a prebuilt CSC data array.
        """
        rows: List[int] = []
        cols: List[int] = []
        for device in self.mosfets:
            d = self.index_of(device.drain)
            g = self.index_of(device.gate)
            s = self.index_of(device.source)
            for row, col in self._device_stamp_pairs(d, g, s):
                if row is None or col is None:
                    continue
                rows.append(row)
                cols.append(col)
        return rows, cols

    def _voltage_at(self, solution: np.ndarray, node: str) -> float:
        index = self.index_of(node)
        return 0.0 if index is None else float(solution[index])

    def nonlinear_stamp(self, solution: np.ndarray) -> NonlinearStamp:
        """Linearised companion stamps of all MOSFETs around ``solution``."""
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        residual = np.zeros(self.size)

        def add(row: Optional[int], col: Optional[int], value: float) -> None:
            if row is None or col is None:
                return
            rows.append(row)
            cols.append(col)
            values.append(value)

        for device in self.mosfets:
            v_drain = self._voltage_at(solution, device.drain)
            v_gate = self._voltage_at(solution, device.gate)
            v_source = self._voltage_at(solution, device.source)
            op = device.operating_point(v_drain, v_gate, v_source)

            d = self.index_of(device.drain)
            g = self.index_of(device.gate)
            s = self.index_of(device.source)

            if d is not None:
                residual[d] += op.ids_a
            if s is not None:
                residual[s] -= op.ids_a

            gds = op.gds_s
            gm = op.gm_s
            stamp_values = (gds, gm, -(gds + gm), -gds, -gm, gds + gm)
            for (row, col), value in zip(
                self._device_stamp_pairs(d, g, s), stamp_values
            ):
                add(row, col, value)

        return NonlinearStamp(rows=rows, cols=cols, values=values, residual=residual)

    # -- solution helpers ----------------------------------------------------------------------

    def solution_to_dict(self, solution: np.ndarray) -> Dict[str, float]:
        """Map an MNA solution vector to a node-name → voltage dictionary."""
        voltages = {name: float(solution[index]) for name, index in self._node_index.items()}
        voltages["0"] = 0.0
        return voltages

    def initial_solution(self, initial_voltages: Optional[Dict[str, float]] = None) -> np.ndarray:
        """Build an initial solution vector from a node-voltage dictionary."""
        solution = np.zeros(self.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                if is_ground(node):
                    continue
                index = self._node_index.get(node)
                if index is None:
                    raise MNAError(
                        f"initial condition given for unknown node {node!r}"
                    )
                solution[index] = value
        return solution


class JacobianTemplate:
    """One fixed CSC sparsity pattern for every Newton Jacobian of a circuit.

    The pattern is the union of the nonzeros of ``G``, ``C`` and the MOSFET
    stamp positions, ordered column-major with sorted rows — i.e. a valid
    CSC structure that never changes.  ``G`` and ``C`` are pre-scattered
    into template-aligned data arrays, and the per-iteration stamp values
    are injected through a precomputed position map, so assembling
    ``G + C/dt + J_nl`` costs one vector add instead of two sparse-matrix
    additions and a CSR→CSC conversion.

    ``like`` accepts the template of a *same-topology* circuit (identical
    element construction order, only R/C/device values differing — e.g.
    the same bit-line ladder at a different patterning corner): the
    expensive sort/unique structure analysis is skipped and only the value
    arrays are rebuilt.  The donor is verified position-by-position, so a
    mismatched donor silently falls back to a full build.
    """

    def __init__(
        self, assembler: MNAAssembler, like: Optional["JacobianTemplate"] = None
    ) -> None:
        self.size = assembler.size
        g_coo = assembler.conductance_matrix.tocoo()
        c_coo = assembler.capacitance_matrix.tocoo()
        nl_rows, nl_cols = assembler.nonlinear_positions()

        rows = np.concatenate([g_coo.row, c_coo.row, np.asarray(nl_rows, dtype=np.int64)])
        cols = np.concatenate([g_coo.col, c_coo.col, np.asarray(nl_cols, dtype=np.int64)])
        keys = cols.astype(np.int64) * self.size + rows.astype(np.int64)

        self.structure_reused = (
            like is not None
            and like.size == self.size
            and like._coo_keys.shape == keys.shape
            and np.array_equal(like._coo_keys, keys)
        )
        if self.structure_reused:
            inverse = like._inverse
            self.indices = like.indices
            self.indptr = like.indptr
            self.nnz = like.nnz
        else:
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            self.indices = (unique_keys % self.size).astype(np.int32)
            unique_cols = unique_keys // self.size
            self.indptr = np.searchsorted(
                unique_cols, np.arange(self.size + 1)
            ).astype(np.int32)
            self.nnz = int(unique_keys.size)
        #: COO position keys and their template positions, kept so a later
        #: same-topology template can verify and adopt this structure.
        self._coo_keys = keys
        self._inverse = inverse

        n_g = g_coo.nnz
        n_c = c_coo.nnz
        self.g_data = np.zeros(self.nnz)
        np.add.at(self.g_data, inverse[:n_g], g_coo.data)
        self.c_data = np.zeros(self.nnz)
        np.add.at(self.c_data, inverse[n_g : n_g + n_c], c_coo.data)
        #: Template position of each stamp triplet, in emission order.
        self.nl_positions = inverse[n_g + n_c :].copy()

    def matrix(self, data: np.ndarray) -> sparse.csc_matrix:
        """Wrap a template-aligned data vector as a CSC matrix (no copy)."""
        return sparse.csc_matrix(
            (data, self.indices, self.indptr), shape=(self.size, self.size)
        )

    def static_data(self, c_factor: float = 0.0) -> np.ndarray:
        """Data vector of ``G + c_factor·C`` (``c_factor`` is 1/dt, 2/dt or 0)."""
        if c_factor == 0.0:
            return self.g_data.copy()
        return self.g_data + c_factor * self.c_data


class CachedFactorSolver:
    """Sparse-LU reuse across Newton iterations and time steps.

    Keyed by the capacitance scale ``c_factor`` (0 for DC, ``1/dt`` for
    backward Euler, ``2/dt`` for trapezoidal): the static matrix
    ``G + c_factor·C`` and — while the nonlinear stamp values are unchanged
    — its :func:`~scipy.sparse.linalg.splu` factorisation are cached, so a
    linear circuit refactorises only when ``dt`` changes and a nonlinear
    one skips all matrix assembly overhead.
    """

    #: Distinct c_factor entries kept before the cache is reset (the
    #: adaptive step controller revisits a small set of dt values).
    MAX_CACHE = 32

    def __init__(
        self, assembler: MNAAssembler, like: Optional[JacobianTemplate] = None
    ) -> None:
        self.assembler = assembler
        self.template = JacobianTemplate(assembler, like=like)
        self._static: Dict[float, Tuple[np.ndarray, sparse.csc_matrix]] = {}
        self._lu: Dict[float, Tuple[Optional[np.ndarray], object]] = {}
        self.n_factorizations = 0
        self.n_solves = 0

    def _static_entry(self, c_factor: float) -> Tuple[np.ndarray, sparse.csc_matrix]:
        entry = self._static.get(c_factor)
        if entry is None:
            if len(self._static) >= self.MAX_CACHE:
                self._static.clear()
                self._lu.clear()
            data = self.template.static_data(c_factor)
            entry = (data, self.template.matrix(data))
            self._static[c_factor] = entry
        return entry

    def static_matrix(self, c_factor: float = 0.0) -> sparse.csc_matrix:
        """``G + c_factor·C`` in template CSC form (cached per factor)."""
        return self._static_entry(c_factor)[1]

    def solve(
        self, c_factor: float, stamp: NonlinearStamp, rhs: np.ndarray
    ) -> np.ndarray:
        """Solve ``(G + c_factor·C + J_nl) x = rhs``, reusing factorisations.

        The LU of the previous call with the same ``c_factor`` is reused
        when the stamp values are identical — always the case for circuits
        without nonlinear devices, where the Jacobian is the static matrix.
        """
        static_data, _ = self._static_entry(c_factor)
        values = np.asarray(stamp.values)
        cached = self._lu.get(c_factor)
        lu = None
        if cached is not None:
            cached_values, cached_lu = cached
            if cached_values is None:
                if values.size == 0:
                    lu = cached_lu
            elif cached_values.shape == values.shape and np.array_equal(
                cached_values, values
            ):
                lu = cached_lu
        if lu is None:
            if values.size:
                data = static_data.copy()
                np.add.at(data, self.template.nl_positions, values)
            else:
                data = static_data
            lu = splu(self.template.matrix(data))
            self.n_factorizations += 1
            self._lu[c_factor] = (values.copy() if values.size else None, lu)
        self.n_solves += 1
        return lu.solve(rhs)
