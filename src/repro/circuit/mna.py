"""Modified nodal analysis (MNA) assembly.

The assembler maps a :class:`~repro.circuit.netlist.Circuit` onto the MNA
unknown vector ``x = [node voltages, voltage-source branch currents]`` and
produces:

* ``G`` — the constant conductance matrix (resistors, gmin, voltage-source
  incidence rows/columns);
* ``C`` — the constant capacitance matrix;
* ``b(t)`` — the source vector at a given time;
* per-Newton-iteration stamps of the nonlinear devices (MOSFETs), i.e. the
  Jacobian contributions and the residual currents.

Sparse matrices (scipy) are used throughout so that kilobit bit-line
ladders with thousands of nodes stay fast.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from .elements import Capacitor, CurrentSource, Resistor, VoltageSource
from .mosfet import MOSFET, DeviceParams
from .netlist import Circuit, NetlistError, is_ground

#: Minimum conductance from every node to ground, for numerical robustness.
DEFAULT_GMIN_S = 1e-12

#: Largest MNA system solved through the dense LAPACK backend.  Small
#: systems (SRAM cell butterflies, write-margin columns) factor faster as
#: dense matrices, and — decisively — ``numpy.linalg.solve`` over a stacked
#: ``(N, n, n)`` batch is bitwise identical per item to the single-system
#: call, which makes the dense backend shareable between the scalar oracle
#: and the batched solver tier.  Large ladder circuits stay on sparse LU.
DENSE_SOLVER_MAX_UNKNOWNS = 64


class MNAError(RuntimeError):
    """Raised when the MNA system cannot be assembled or is singular."""


@dataclass
class SolverStats:
    """Cheap per-thread observability counters for the solver tier.

    ``factorizations`` counts every matrix factorisation (sparse LU or a
    dense solve, which factors internally); ``refactorizations`` is the
    subset that replaced a still-cached factorisation because the stamp
    values moved; ``stamp_evals`` counts nonlinear stamp evaluations and
    ``stamp_device_evals`` the device lanes inside them (a batched call
    evaluates many lanes per eval); ``batch_ticks``/``batch_lane_iterations``
    describe the batched tier's lockstep loop.  ``batch_lanes`` counts
    lanes launched into lockstep groups and ``batch_lane_slots`` the
    lane slots offered across ticks (active or not), so
    ``batch_lane_iterations / batch_lane_slots`` is the active-lane
    fraction and ``scalar_fallbacks / batch_lanes`` the demotion rate.
    """

    factorizations: int = 0
    refactorizations: int = 0
    dense_solves: int = 0
    sparse_solves: int = 0
    stamp_evals: int = 0
    stamp_device_evals: int = 0
    batch_ticks: int = 0
    batch_lane_iterations: int = 0
    batch_lanes: int = 0
    batch_lane_slots: int = 0
    scalar_fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "factorizations": self.factorizations,
            "refactorizations": self.refactorizations,
            "dense_solves": self.dense_solves,
            "sparse_solves": self.sparse_solves,
            "stamp_evals": self.stamp_evals,
            "stamp_device_evals": self.stamp_device_evals,
            "batch_ticks": self.batch_ticks,
            "batch_lane_iterations": self.batch_lane_iterations,
            "batch_lanes": self.batch_lanes,
            "batch_lane_slots": self.batch_lane_slots,
            "scalar_fallbacks": self.scalar_fallbacks,
        }

    def snapshot(self) -> "SolverStats":
        return SolverStats(**self.as_dict())

    def delta_since(self, before: "SolverStats") -> "SolverStats":
        return SolverStats(
            **{
                key: value - getattr(before, key)
                for key, value in self.as_dict().items()
            }
        )


_stats_state = threading.local()


def solver_stats() -> SolverStats:
    """The current thread's solver counters (created on first use)."""
    stats = getattr(_stats_state, "stats", None)
    if stats is None:
        stats = SolverStats()
        _stats_state.stats = stats
    return stats


def reset_solver_stats() -> SolverStats:
    """Reset the current thread's counters and return the fresh object."""
    stats = SolverStats()
    _stats_state.stats = stats
    return stats


@dataclass
class NonlinearStamp:
    """Jacobian triplets and residual currents of the nonlinear devices."""

    rows: List[int]
    cols: List[int]
    values: List[float]
    residual: np.ndarray


@dataclass(frozen=True)
class BatchPlan:
    """Precomputed gather/scatter indices for vectorised stamp evaluation.

    Built once per assembler; lets the batched tier evaluate every MOSFET
    of every stacked lane in one kernel call and scatter the results with
    ``numpy.bincount`` (whose sequential accumulation reproduces the
    per-device add order of :meth:`MNAAssembler.nonlinear_stamp` bitwise).

    Terminal indices use ``size`` as the ground sentinel — voltages are
    gathered from the solution vector extended by one trailing zero.
    """

    size: int
    n_devices: int
    params: DeviceParams
    drain_idx: np.ndarray
    gate_idx: np.ndarray
    source_idx: np.ndarray
    #: Residual scatter (per device ``+ids`` at drain then ``-ids`` at
    #: source, ground entries skipped) in scalar emission order.
    res_pos: np.ndarray
    res_dev: np.ndarray
    res_sign: np.ndarray
    #: Jacobian stamp scatter in :meth:`_device_stamp_pairs` emission
    #: order; ``stamp_kind`` selects among the six per-device values
    #: ``(gds, gm, -(gds+gm), -gds, -gm, gds+gm)``.
    stamp_rows: np.ndarray
    stamp_cols: np.ndarray
    stamp_kind: np.ndarray
    stamp_dev: np.ndarray

    @property
    def stamp_flat(self) -> np.ndarray:
        """Row-major flat positions of the stamp entries (dense scatter)."""
        return self.stamp_rows * self.size + self.stamp_cols


class DenseSystem:
    """Dense DC backend of one assembler (systems below the size threshold).

    Holds ``G`` as a dense array plus the flat stamp-scatter positions, so
    a Newton iteration assembles ``A = G + scatter(stamp values)`` and the
    residual term ``G·x`` with plain dense ops — the exact operations the
    batched tier applies per lane, which keeps the two tiers bit-identical.

    ``G`` is scattered straight from the assembler's triplet arrays with
    ``np.add.at`` (bitwise identical to ``csr.toarray()`` — scipy's
    duplicate summation is insertion-ordered via a stable sort), so cheap
    gmin-ladder clones never have to materialise a sparse matrix at all.
    """

    def __init__(self, assembler: "MNAAssembler") -> None:
        self.size = assembler.size
        rows, cols, values = assembler._g_triplets
        self.g_dense = np.zeros((self.size, self.size))
        np.add.at(self.g_dense, (np.asarray(rows), np.asarray(cols)), values)
        self._stamp_flat = assembler.batch_plan().stamp_flat

    def matrix(self, stamp_values: np.ndarray) -> np.ndarray:
        """``G + J_nl`` as a dense array for one Newton iteration."""
        scatter = np.bincount(
            self._stamp_flat,
            weights=stamp_values,
            minlength=self.size * self.size,
        ).reshape(self.size, self.size)
        return self.g_dense + scatter

    def solve(self, stamp_values: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(G + J_nl) x = rhs`` densely (raises ``LinAlgError``)."""
        stats = solver_stats()
        stats.factorizations += 1
        stats.dense_solves += 1
        return np.linalg.solve(self.matrix(stamp_values), rhs)


class MNAAssembler:
    """Maps a circuit onto MNA matrices.

    Parameters
    ----------
    circuit:
        The circuit to assemble; it is validated on construction.
    gmin_s:
        Conductance added from every node to ground.
    """

    def __init__(self, circuit: Circuit, gmin_s: float = DEFAULT_GMIN_S) -> None:
        circuit.validate()
        self.circuit = circuit
        self.gmin_s = gmin_s

        self._node_names: List[str] = circuit.nodes()
        self._node_index: Dict[str, int] = {
            name: index for index, name in enumerate(self._node_names)
        }
        self.voltage_sources: List[VoltageSource] = list(
            circuit.elements_of_type(VoltageSource)
        )
        self.current_sources: List[CurrentSource] = list(
            circuit.elements_of_type(CurrentSource)
        )
        self.mosfets: List[MOSFET] = list(circuit.elements_of_type(MOSFET))
        self.resistors: List[Resistor] = list(circuit.elements_of_type(Resistor))
        self.capacitors: List[Capacitor] = list(circuit.elements_of_type(Capacitor))

        self.n_nodes = len(self._node_names)
        self.n_branches = len(self.voltage_sources)
        self.size = self.n_nodes + self.n_branches

        self._g_triplets = self._build_g_triplets()
        self._c_triplets = self._build_c_triplets()
        self._g_matrix: Optional[sparse.csr_matrix] = None
        self._c_matrix: Optional[sparse.csr_matrix] = None
        self._batch_plan: Optional[BatchPlan] = None
        self._dense_system: Optional[DenseSystem] = None

    def clone_with_gmin(self, gmin_s: float) -> "MNAAssembler":
        """A cheap same-circuit assembler that differs only in ``gmin_s``.

        The gmin ladder and pseudo-transient rescue revisit the same circuit
        at many gmin values; a full construction re-validates the netlist
        and rebuilds every element list, which dominates rescue cost.  The
        clone shares the immutable pieces (node order, element lists, ``C``
        triplets, batch plan) and rebuilds only the ``G`` triplets, whose
        values are the only thing gmin touches.  The resulting matrices are
        bitwise identical to ``MNAAssembler(circuit, gmin_s)``.
        """
        clone = object.__new__(MNAAssembler)
        clone.circuit = self.circuit
        clone.gmin_s = gmin_s
        clone._node_names = self._node_names
        clone._node_index = self._node_index
        clone.voltage_sources = self.voltage_sources
        clone.current_sources = self.current_sources
        clone.mosfets = self.mosfets
        clone.resistors = self.resistors
        clone.capacitors = self.capacitors
        clone.n_nodes = self.n_nodes
        clone.n_branches = self.n_branches
        clone.size = self.size
        clone._g_triplets = clone._build_g_triplets()
        clone._c_triplets = self._c_triplets
        clone._g_matrix = None
        clone._c_matrix = self._c_matrix
        clone._batch_plan = self.batch_plan()
        clone._dense_system = None
        return clone

    # -- index helpers -------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    def index_of(self, node: str) -> Optional[int]:
        """MNA index of a node (``None`` for ground)."""
        if is_ground(node):
            return None
        try:
            return self._node_index[node]
        except KeyError:
            raise MNAError(f"unknown node {node!r}") from None

    def branch_index(self, source_name: str) -> int:
        for offset, source in enumerate(self.voltage_sources):
            if source.name == source_name:
                return self.n_nodes + offset
        raise MNAError(f"no voltage source named {source_name!r}")

    # -- static matrices -------------------------------------------------------------

    def _build_g_triplets(self) -> Tuple[List[int], List[int], List[float]]:
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []

        def stamp(row: Optional[int], col: Optional[int], value: float) -> None:
            if row is None or col is None:
                return
            rows.append(row)
            cols.append(col)
            values.append(value)

        for resistor in self.resistors:
            conductance = resistor.conductance_s
            p = self.index_of(resistor.positive)
            n = self.index_of(resistor.negative)
            stamp(p, p, conductance)
            stamp(n, n, conductance)
            stamp(p, n, -conductance)
            stamp(n, p, -conductance)

        if self.gmin_s > 0.0:
            for index in range(self.n_nodes):
                rows.append(index)
                cols.append(index)
                values.append(self.gmin_s)

        for offset, source in enumerate(self.voltage_sources):
            branch = self.n_nodes + offset
            p = self.index_of(source.positive)
            n = self.index_of(source.negative)
            if p is not None:
                rows.extend([p, branch])
                cols.extend([branch, p])
                values.extend([1.0, 1.0])
            if n is not None:
                rows.extend([n, branch])
                cols.extend([branch, n])
                values.extend([-1.0, -1.0])

        return rows, cols, values

    def _build_c_triplets(self) -> Tuple[List[int], List[int], List[float]]:
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        for capacitor in self.capacitors:
            if capacitor.capacitance_f == 0.0:
                continue
            p = self.index_of(capacitor.positive)
            n = self.index_of(capacitor.negative)
            c = capacitor.capacitance_f
            if p is not None:
                rows.append(p)
                cols.append(p)
                values.append(c)
            if n is not None:
                rows.append(n)
                cols.append(n)
                values.append(c)
            if p is not None and n is not None:
                rows.extend([p, n])
                cols.extend([n, p])
                values.extend([-c, -c])
        return rows, cols, values

    @property
    def conductance_matrix(self) -> sparse.csr_matrix:
        if self._g_matrix is None:
            rows, cols, values = self._g_triplets
            self._g_matrix = sparse.csr_matrix(
                (values, (rows, cols)), shape=(self.size, self.size)
            )
        return self._g_matrix

    @property
    def capacitance_matrix(self) -> sparse.csr_matrix:
        if self._c_matrix is None:
            rows, cols, values = self._c_triplets
            self._c_matrix = sparse.csr_matrix(
                (values, (rows, cols)), shape=(self.size, self.size)
            )
        return self._c_matrix

    # -- sources -----------------------------------------------------------------------

    def source_vector(self, time_s: float) -> np.ndarray:
        """The right-hand-side source vector at ``time_s``."""
        b = np.zeros(self.size)
        for offset, source in enumerate(self.voltage_sources):
            b[self.n_nodes + offset] = source.value_at(time_s)
        for source in self.current_sources:
            value = source.value_at(time_s)
            p = self.index_of(source.positive)
            n = self.index_of(source.negative)
            if p is not None:
                b[p] -= value
            if n is not None:
                b[n] += value
        return b

    # -- nonlinear stamps ------------------------------------------------------------------

    @staticmethod
    def _device_stamp_pairs(
        d: Optional[int], g: Optional[int], s: Optional[int]
    ) -> Tuple[Tuple[Optional[int], Optional[int]], ...]:
        """The (row, col) emission order of one MOSFET's Jacobian stamp.

        Single source of truth shared by :meth:`nonlinear_stamp` and
        :meth:`nonlinear_positions` — the factorisation cache maps stamp
        values to CSC positions by this order, so the two must never
        diverge.
        """
        return ((d, d), (d, g), (d, s), (s, d), (s, g), (s, s))

    def nonlinear_positions(self) -> Tuple[List[int], List[int]]:
        """The fixed (row, col) sequence :meth:`nonlinear_stamp` emits.

        The Jacobian contributions of the MOSFETs always land on the same
        matrix positions in the same order — only the values change between
        Newton iterations.  The factorisation cache exploits this to map
        stamp values straight into a prebuilt CSC data array.
        """
        rows: List[int] = []
        cols: List[int] = []
        for device in self.mosfets:
            d = self.index_of(device.drain)
            g = self.index_of(device.gate)
            s = self.index_of(device.source)
            for row, col in self._device_stamp_pairs(d, g, s):
                if row is None or col is None:
                    continue
                rows.append(row)
                cols.append(col)
        return rows, cols

    def batch_plan(self) -> BatchPlan:
        """Precomputed device gather/scatter arrays (built once, cached)."""
        if self._batch_plan is not None:
            return self._batch_plan

        ground = self.size
        drain, gate, source = [], [], []
        res_pos, res_dev, res_sign = [], [], []
        stamp_rows, stamp_cols, stamp_kind, stamp_dev = [], [], [], []
        for lane, device in enumerate(self.mosfets):
            d = self.index_of(device.drain)
            g = self.index_of(device.gate)
            s = self.index_of(device.source)
            drain.append(ground if d is None else d)
            gate.append(ground if g is None else g)
            source.append(ground if s is None else s)
            if d is not None:
                res_pos.append(d)
                res_dev.append(lane)
                res_sign.append(1.0)
            if s is not None:
                res_pos.append(s)
                res_dev.append(lane)
                res_sign.append(-1.0)
            for kind, (row, col) in enumerate(self._device_stamp_pairs(d, g, s)):
                if row is None or col is None:
                    continue
                stamp_rows.append(row)
                stamp_cols.append(col)
                stamp_kind.append(kind)
                stamp_dev.append(lane)

        self._batch_plan = BatchPlan(
            size=self.size,
            n_devices=len(self.mosfets),
            params=DeviceParams.from_devices(self.mosfets),
            drain_idx=np.asarray(drain, dtype=np.int64),
            gate_idx=np.asarray(gate, dtype=np.int64),
            source_idx=np.asarray(source, dtype=np.int64),
            res_pos=np.asarray(res_pos, dtype=np.int64),
            res_dev=np.asarray(res_dev, dtype=np.int64),
            res_sign=np.asarray(res_sign),
            stamp_rows=np.asarray(stamp_rows, dtype=np.int64),
            stamp_cols=np.asarray(stamp_cols, dtype=np.int64),
            stamp_kind=np.asarray(stamp_kind, dtype=np.int64),
            stamp_dev=np.asarray(stamp_dev, dtype=np.int64),
        )
        return self._batch_plan

    def dense_system(self) -> DenseSystem:
        """The dense DC backend of this assembler (built once, cached)."""
        if self._dense_system is None:
            self._dense_system = DenseSystem(self)
        return self._dense_system

    @property
    def use_dense_solver(self) -> bool:
        """Whether DC solves of this system go through the dense backend."""
        return self.size <= DENSE_SOLVER_MAX_UNKNOWNS

    def _voltage_at(self, solution: np.ndarray, node: str) -> float:
        index = self.index_of(node)
        return 0.0 if index is None else float(solution[index])

    def nonlinear_stamp(self, solution: np.ndarray) -> NonlinearStamp:
        """Linearised companion stamps of all MOSFETs around ``solution``."""
        stats = solver_stats()
        stats.stamp_evals += 1
        stats.stamp_device_evals += len(self.mosfets)
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        residual = np.zeros(self.size)

        def add(row: Optional[int], col: Optional[int], value: float) -> None:
            if row is None or col is None:
                return
            rows.append(row)
            cols.append(col)
            values.append(value)

        for device in self.mosfets:
            v_drain = self._voltage_at(solution, device.drain)
            v_gate = self._voltage_at(solution, device.gate)
            v_source = self._voltage_at(solution, device.source)
            op = device.operating_point(v_drain, v_gate, v_source)

            d = self.index_of(device.drain)
            g = self.index_of(device.gate)
            s = self.index_of(device.source)

            if d is not None:
                residual[d] += op.ids_a
            if s is not None:
                residual[s] -= op.ids_a

            gds = op.gds_s
            gm = op.gm_s
            stamp_values = (gds, gm, -(gds + gm), -gds, -gm, gds + gm)
            for (row, col), value in zip(
                self._device_stamp_pairs(d, g, s), stamp_values
            ):
                add(row, col, value)

        return NonlinearStamp(rows=rows, cols=cols, values=values, residual=residual)

    # -- solution helpers ----------------------------------------------------------------------

    def solution_to_dict(self, solution: np.ndarray) -> Dict[str, float]:
        """Map an MNA solution vector to a node-name → voltage dictionary."""
        voltages = {name: float(solution[index]) for name, index in self._node_index.items()}
        voltages["0"] = 0.0
        return voltages

    def initial_solution(self, initial_voltages: Optional[Dict[str, float]] = None) -> np.ndarray:
        """Build an initial solution vector from a node-voltage dictionary."""
        solution = np.zeros(self.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                if is_ground(node):
                    continue
                index = self._node_index.get(node)
                if index is None:
                    raise MNAError(
                        f"initial condition given for unknown node {node!r}"
                    )
                solution[index] = value
        return solution


class JacobianTemplate:
    """One fixed CSC sparsity pattern for every Newton Jacobian of a circuit.

    The pattern is the union of the nonzeros of ``G``, ``C`` and the MOSFET
    stamp positions, ordered column-major with sorted rows — i.e. a valid
    CSC structure that never changes.  ``G`` and ``C`` are pre-scattered
    into template-aligned data arrays, and the per-iteration stamp values
    are injected through a precomputed position map, so assembling
    ``G + C/dt + J_nl`` costs one vector add instead of two sparse-matrix
    additions and a CSR→CSC conversion.

    ``like`` accepts the template of a *same-topology* circuit (identical
    element construction order, only R/C/device values differing — e.g.
    the same bit-line ladder at a different patterning corner): the
    expensive sort/unique structure analysis is skipped and only the value
    arrays are rebuilt.  The donor is verified position-by-position, so a
    mismatched donor silently falls back to a full build.
    """

    def __init__(
        self, assembler: MNAAssembler, like: Optional["JacobianTemplate"] = None
    ) -> None:
        self.size = assembler.size
        g_coo = assembler.conductance_matrix.tocoo()
        c_coo = assembler.capacitance_matrix.tocoo()
        nl_rows, nl_cols = assembler.nonlinear_positions()

        rows = np.concatenate([g_coo.row, c_coo.row, np.asarray(nl_rows, dtype=np.int64)])
        cols = np.concatenate([g_coo.col, c_coo.col, np.asarray(nl_cols, dtype=np.int64)])
        keys = cols.astype(np.int64) * self.size + rows.astype(np.int64)

        self.structure_reused = (
            like is not None
            and like.size == self.size
            and like._coo_keys.shape == keys.shape
            and np.array_equal(like._coo_keys, keys)
        )
        if self.structure_reused:
            inverse = like._inverse
            self.indices = like.indices
            self.indptr = like.indptr
            self.nnz = like.nnz
        else:
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            self.indices = (unique_keys % self.size).astype(np.int32)
            unique_cols = unique_keys // self.size
            self.indptr = np.searchsorted(
                unique_cols, np.arange(self.size + 1)
            ).astype(np.int32)
            self.nnz = int(unique_keys.size)
        #: COO position keys and their template positions, kept so a later
        #: same-topology template can verify and adopt this structure.
        self._coo_keys = keys
        self._inverse = inverse

        n_g = g_coo.nnz
        n_c = c_coo.nnz
        self.g_data = np.zeros(self.nnz)
        np.add.at(self.g_data, inverse[:n_g], g_coo.data)
        self.c_data = np.zeros(self.nnz)
        np.add.at(self.c_data, inverse[n_g : n_g + n_c], c_coo.data)
        #: Template position of each stamp triplet, in emission order.
        self.nl_positions = inverse[n_g + n_c :].copy()

    def matrix(self, data: np.ndarray) -> sparse.csc_matrix:
        """Wrap a template-aligned data vector as a CSC matrix (no copy)."""
        return sparse.csc_matrix(
            (data, self.indices, self.indptr), shape=(self.size, self.size)
        )

    def static_data(self, c_factor: float = 0.0) -> np.ndarray:
        """Data vector of ``G + c_factor·C`` (``c_factor`` is 1/dt, 2/dt or 0)."""
        if c_factor == 0.0:
            return self.g_data.copy()
        return self.g_data + c_factor * self.c_data


class CachedFactorSolver:
    """Sparse-LU reuse across Newton iterations and time steps.

    Keyed by the capacitance scale ``c_factor`` (0 for DC, ``1/dt`` for
    backward Euler, ``2/dt`` for trapezoidal): the static matrix
    ``G + c_factor·C`` and — while the nonlinear stamp values are unchanged
    — its :func:`~scipy.sparse.linalg.splu` factorisation are cached, so a
    linear circuit refactorises only when ``dt`` changes and a nonlinear
    one skips all matrix assembly overhead.
    """

    #: Distinct c_factor entries kept before the cache is reset (the
    #: adaptive step controller revisits a small set of dt values).
    MAX_CACHE = 32

    def __init__(
        self, assembler: MNAAssembler, like: Optional[JacobianTemplate] = None
    ) -> None:
        self.assembler = assembler
        self.template = JacobianTemplate(assembler, like=like)
        self._static: Dict[float, Tuple[np.ndarray, sparse.csc_matrix]] = {}
        self._lu: Dict[float, Tuple[Optional[np.ndarray], object]] = {}
        self.n_factorizations = 0
        self.n_solves = 0

    def _static_entry(self, c_factor: float) -> Tuple[np.ndarray, sparse.csc_matrix]:
        entry = self._static.get(c_factor)
        if entry is None:
            if len(self._static) >= self.MAX_CACHE:
                self._static.clear()
                self._lu.clear()
            data = self.template.static_data(c_factor)
            entry = (data, self.template.matrix(data))
            self._static[c_factor] = entry
        return entry

    def static_matrix(self, c_factor: float = 0.0) -> sparse.csc_matrix:
        """``G + c_factor·C`` in template CSC form (cached per factor)."""
        return self._static_entry(c_factor)[1]

    def solve(
        self, c_factor: float, stamp: NonlinearStamp, rhs: np.ndarray
    ) -> np.ndarray:
        """Solve ``(G + c_factor·C + J_nl) x = rhs``, reusing factorisations.

        The LU of the previous call with the same ``c_factor`` is reused
        when the stamp values are identical — always the case for circuits
        without nonlinear devices, where the Jacobian is the static matrix.
        """
        static_data, _ = self._static_entry(c_factor)
        values = np.asarray(stamp.values)
        cached = self._lu.get(c_factor)
        lu = None
        if cached is not None:
            cached_values, cached_lu = cached
            if cached_values is None:
                if values.size == 0:
                    lu = cached_lu
            elif cached_values.shape == values.shape and np.array_equal(
                cached_values, values
            ):
                lu = cached_lu
        if lu is None:
            if values.size:
                data = static_data.copy()
                np.add.at(data, self.template.nl_positions, values)
            else:
                data = static_data
            lu = splu(self.template.matrix(data))
            self.n_factorizations += 1
            stats = solver_stats()
            stats.factorizations += 1
            if cached is not None:
                stats.refactorizations += 1
            self._lu[c_factor] = (values.copy() if values.size else None, lu)
        self.n_solves += 1
        solver_stats().sparse_solves += 1
        return lu.solve(rhs)
