"""Modified nodal analysis (MNA) assembly.

The assembler maps a :class:`~repro.circuit.netlist.Circuit` onto the MNA
unknown vector ``x = [node voltages, voltage-source branch currents]`` and
produces:

* ``G`` — the constant conductance matrix (resistors, gmin, voltage-source
  incidence rows/columns);
* ``C`` — the constant capacitance matrix;
* ``b(t)`` — the source vector at a given time;
* per-Newton-iteration stamps of the nonlinear devices (MOSFETs), i.e. the
  Jacobian contributions and the residual currents.

Sparse matrices (scipy) are used throughout so that kilobit bit-line
ladders with thousands of nodes stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from .elements import Capacitor, CurrentSource, Resistor, VoltageSource
from .mosfet import MOSFET
from .netlist import Circuit, NetlistError, is_ground

#: Minimum conductance from every node to ground, for numerical robustness.
DEFAULT_GMIN_S = 1e-12


class MNAError(RuntimeError):
    """Raised when the MNA system cannot be assembled or is singular."""


@dataclass
class NonlinearStamp:
    """Jacobian triplets and residual currents of the nonlinear devices."""

    rows: List[int]
    cols: List[int]
    values: List[float]
    residual: np.ndarray


class MNAAssembler:
    """Maps a circuit onto MNA matrices.

    Parameters
    ----------
    circuit:
        The circuit to assemble; it is validated on construction.
    gmin_s:
        Conductance added from every node to ground.
    """

    def __init__(self, circuit: Circuit, gmin_s: float = DEFAULT_GMIN_S) -> None:
        circuit.validate()
        self.circuit = circuit
        self.gmin_s = gmin_s

        self._node_names: List[str] = circuit.nodes()
        self._node_index: Dict[str, int] = {
            name: index for index, name in enumerate(self._node_names)
        }
        self.voltage_sources: List[VoltageSource] = list(
            circuit.elements_of_type(VoltageSource)
        )
        self.current_sources: List[CurrentSource] = list(
            circuit.elements_of_type(CurrentSource)
        )
        self.mosfets: List[MOSFET] = list(circuit.elements_of_type(MOSFET))
        self.resistors: List[Resistor] = list(circuit.elements_of_type(Resistor))
        self.capacitors: List[Capacitor] = list(circuit.elements_of_type(Capacitor))

        self.n_nodes = len(self._node_names)
        self.n_branches = len(self.voltage_sources)
        self.size = self.n_nodes + self.n_branches

        self._g_matrix = self._build_conductance_matrix()
        self._c_matrix = self._build_capacitance_matrix()

    # -- index helpers -------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    def index_of(self, node: str) -> Optional[int]:
        """MNA index of a node (``None`` for ground)."""
        if is_ground(node):
            return None
        try:
            return self._node_index[node]
        except KeyError:
            raise MNAError(f"unknown node {node!r}") from None

    def branch_index(self, source_name: str) -> int:
        for offset, source in enumerate(self.voltage_sources):
            if source.name == source_name:
                return self.n_nodes + offset
        raise MNAError(f"no voltage source named {source_name!r}")

    # -- static matrices -------------------------------------------------------------

    def _build_conductance_matrix(self) -> sparse.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []

        def stamp(row: Optional[int], col: Optional[int], value: float) -> None:
            if row is None or col is None:
                return
            rows.append(row)
            cols.append(col)
            values.append(value)

        for resistor in self.resistors:
            conductance = resistor.conductance_s
            p = self.index_of(resistor.positive)
            n = self.index_of(resistor.negative)
            stamp(p, p, conductance)
            stamp(n, n, conductance)
            stamp(p, n, -conductance)
            stamp(n, p, -conductance)

        if self.gmin_s > 0.0:
            for index in range(self.n_nodes):
                rows.append(index)
                cols.append(index)
                values.append(self.gmin_s)

        for offset, source in enumerate(self.voltage_sources):
            branch = self.n_nodes + offset
            p = self.index_of(source.positive)
            n = self.index_of(source.negative)
            if p is not None:
                rows.extend([p, branch])
                cols.extend([branch, p])
                values.extend([1.0, 1.0])
            if n is not None:
                rows.extend([n, branch])
                cols.extend([branch, n])
                values.extend([-1.0, -1.0])

        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(self.size, self.size)
        )

    def _build_capacitance_matrix(self) -> sparse.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        for capacitor in self.capacitors:
            if capacitor.capacitance_f == 0.0:
                continue
            p = self.index_of(capacitor.positive)
            n = self.index_of(capacitor.negative)
            c = capacitor.capacitance_f
            if p is not None:
                rows.append(p)
                cols.append(p)
                values.append(c)
            if n is not None:
                rows.append(n)
                cols.append(n)
                values.append(c)
            if p is not None and n is not None:
                rows.extend([p, n])
                cols.extend([n, p])
                values.extend([-c, -c])
        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(self.size, self.size)
        )

    @property
    def conductance_matrix(self) -> sparse.csr_matrix:
        return self._g_matrix

    @property
    def capacitance_matrix(self) -> sparse.csr_matrix:
        return self._c_matrix

    # -- sources -----------------------------------------------------------------------

    def source_vector(self, time_s: float) -> np.ndarray:
        """The right-hand-side source vector at ``time_s``."""
        b = np.zeros(self.size)
        for offset, source in enumerate(self.voltage_sources):
            b[self.n_nodes + offset] = source.value_at(time_s)
        for source in self.current_sources:
            value = source.value_at(time_s)
            p = self.index_of(source.positive)
            n = self.index_of(source.negative)
            if p is not None:
                b[p] -= value
            if n is not None:
                b[n] += value
        return b

    # -- nonlinear stamps ------------------------------------------------------------------

    def _voltage_at(self, solution: np.ndarray, node: str) -> float:
        index = self.index_of(node)
        return 0.0 if index is None else float(solution[index])

    def nonlinear_stamp(self, solution: np.ndarray) -> NonlinearStamp:
        """Linearised companion stamps of all MOSFETs around ``solution``."""
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        residual = np.zeros(self.size)

        def add(row: Optional[int], col: Optional[int], value: float) -> None:
            if row is None or col is None:
                return
            rows.append(row)
            cols.append(col)
            values.append(value)

        for device in self.mosfets:
            v_drain = self._voltage_at(solution, device.drain)
            v_gate = self._voltage_at(solution, device.gate)
            v_source = self._voltage_at(solution, device.source)
            op = device.operating_point(v_drain, v_gate, v_source)

            d = self.index_of(device.drain)
            g = self.index_of(device.gate)
            s = self.index_of(device.source)

            if d is not None:
                residual[d] += op.ids_a
            if s is not None:
                residual[s] -= op.ids_a

            gds = op.gds_s
            gm = op.gm_s
            add(d, d, gds)
            add(d, g, gm)
            add(d, s, -(gds + gm))
            add(s, d, -gds)
            add(s, g, -gm)
            add(s, s, gds + gm)

        return NonlinearStamp(rows=rows, cols=cols, values=values, residual=residual)

    # -- solution helpers ----------------------------------------------------------------------

    def solution_to_dict(self, solution: np.ndarray) -> Dict[str, float]:
        """Map an MNA solution vector to a node-name → voltage dictionary."""
        voltages = {name: float(solution[index]) for name, index in self._node_index.items()}
        voltages["0"] = 0.0
        return voltages

    def initial_solution(self, initial_voltages: Optional[Dict[str, float]] = None) -> np.ndarray:
        """Build an initial solution vector from a node-voltage dictionary."""
        solution = np.zeros(self.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                if is_ground(node):
                    continue
                index = self._node_index.get(node)
                if index is None:
                    raise MNAError(
                        f"initial condition given for unknown node {node!r}"
                    )
                solution[index] = value
        return solution
