"""Planar geometry primitives used by the layout and extraction engines.

Only what the study needs: axis-aligned rectangles (damascene wires are
rectangles in plan view), simple rectilinear polygons, and 1-D intervals
for cross-section reasoning.  Coordinates are nanometres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


class GeometryError(ValueError):
    """Raised for degenerate or inconsistent geometry."""


@dataclass(frozen=True, order=True)
class Point:
    """A point in the layout plane."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Interval:
    """A closed 1-D interval ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise GeometryError(f"interval high < low ({self.high} < {self.low})")

    @property
    def length(self) -> float:
        return self.high - self.low

    @property
    def center(self) -> float:
        return 0.5 * (self.low + self.high)

    def contains(self, value: float, tolerance: float = 0.0) -> bool:
        return self.low - tolerance <= value <= self.high + tolerance

    def overlaps(self, other: "Interval") -> bool:
        return self.low <= other.high and other.low <= self.high

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if high < low:
            return None
        return Interval(low, high)

    def gap_to(self, other: "Interval") -> float:
        """Edge-to-edge distance to ``other`` (0 if they touch or overlap)."""
        if self.overlaps(other):
            return 0.0
        return max(other.low - self.high, self.low - other.high)

    def shifted(self, delta: float) -> "Interval":
        return Interval(self.low + delta, self.high + delta)

    def grown(self, delta: float) -> "Interval":
        """Grow (or shrink for negative delta) symmetrically by ``delta`` per side."""
        if self.length + 2.0 * delta < 0.0:
            raise GeometryError(
                f"growing interval of length {self.length} by {delta} per side "
                "would make it negative"
            )
        return Interval(self.low - delta, self.high + delta)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[x_min, x_max] × [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise GeometryError(
                f"degenerate rectangle: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @classmethod
    def from_center(
        cls, center_x: float, center_y: float, width: float, height: float
    ) -> "Rect":
        if width < 0.0 or height < 0.0:
            raise GeometryError("width and height must be non-negative")
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(center_x - half_w, center_y - half_h, center_x + half_w, center_y + half_h)

    @classmethod
    def from_points(cls, first: Point, second: Point) -> "Rect":
        return cls(
            min(first.x, second.x),
            min(first.y, second.y),
            max(first.x, second.x),
            max(first.y, second.y),
        )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(0.5 * (self.x_min + self.x_max), 0.5 * (self.y_min + self.y_max))

    @property
    def x_interval(self) -> Interval:
        return Interval(self.x_min, self.x_max)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.y_min, self.y_max)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x_min + dx, self.y_min + dy, self.x_max + dx, self.y_max + dy)

    def grown(self, delta: float) -> "Rect":
        """Grow (or shrink) the rectangle by ``delta`` on every side."""
        return Rect(
            self.x_min - delta, self.y_min - delta, self.x_max + delta, self.y_max + delta
        )

    def intersects(self, other: "Rect") -> bool:
        return (
            self.x_min <= other.x_max
            and other.x_min <= self.x_max
            and self.y_min <= other.y_max
            and other.y_min <= self.y_max
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x_min, other.x_min),
            max(self.y_min, other.y_min),
            min(self.x_max, other.x_max),
            min(self.y_max, other.y_max),
        )

    def contains_point(self, point: Point, tolerance: float = 0.0) -> bool:
        return (
            self.x_min - tolerance <= point.x <= self.x_max + tolerance
            and self.y_min - tolerance <= point.y <= self.y_max + tolerance
        )

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def corners(self) -> List[Point]:
        return [
            Point(self.x_min, self.y_min),
            Point(self.x_max, self.y_min),
            Point(self.x_max, self.y_max),
            Point(self.x_min, self.y_max),
        ]


@dataclass(frozen=True)
class Polygon:
    """A simple polygon given by its vertex loop (not self-intersecting)."""

    vertices: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise GeometryError("a polygon needs at least three vertices")

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        return cls(vertices=tuple(rect.corners()))

    @classmethod
    def from_xy(cls, coords: Sequence[Tuple[float, float]]) -> "Polygon":
        return cls(vertices=tuple(Point(x, y) for x, y in coords))

    @property
    def area(self) -> float:
        """Unsigned polygon area via the shoelace formula."""
        total = 0.0
        count = len(self.vertices)
        for index in range(count):
            current = self.vertices[index]
            following = self.vertices[(index + 1) % count]
            total += current.x * following.y - following.x * current.y
        return abs(total) / 2.0

    @property
    def perimeter(self) -> float:
        total = 0.0
        count = len(self.vertices)
        for index in range(count):
            total += self.vertices[index].distance_to(self.vertices[(index + 1) % count])
        return total

    def bounding_box(self) -> Rect:
        xs = [vertex.x for vertex in self.vertices]
        ys = [vertex.y for vertex in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon(vertices=tuple(v.translated(dx, dy) for v in self.vertices))


def bounding_box_of(rects: Iterable[Rect]) -> Rect:
    """The bounding box of a non-empty collection of rectangles."""
    rect_list = list(rects)
    if not rect_list:
        raise GeometryError("cannot compute the bounding box of nothing")
    result = rect_list[0]
    for rect in rect_list[1:]:
        result = result.union_bbox(rect)
    return result
