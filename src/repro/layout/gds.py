"""Minimal GDSII-like text export / import.

The real study consumes GDSII cell layouts.  For the reproduction a binary
GDSII writer is unnecessary, but a faithful *structured* interchange format
is still useful: examples and tests round-trip layouts through it, and it
gives downstream users a way to feed their own layouts into the LPE flow.

The format ("GDT" — GDS text) is deliberately tiny and line oriented::

    HEADER unit_nm=1.0
    CELL <cellname>
    BOUNDARY layer=<gds_layer> datatype=<dt> net=<net> role=<role>
    XY x1 y1 x2 y2 ... xn yn
    ENDEL
    ...
    ENDCELL

Only axis-aligned rectangles are emitted by the layout generators, but the
reader accepts arbitrary polygons and reduces them to their bounding box
(sufficient for the extraction flow, which reasons about straight parallel
wires).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from .geometry import GeometryError, Point, Polygon, Rect
from .layers import Layer, LayerMap, LayerPurpose, default_layer_map
from .wire import NetRole, Wire


class GDSFormatError(ValueError):
    """Raised for malformed GDT content."""


@dataclass
class GDSCell:
    """A named collection of wires (shapes with nets) — one layout cell."""

    name: str
    wires: List[Wire] = field(default_factory=list)

    def nets(self) -> List[str]:
        seen = []
        for wire in self.wires:
            if wire.net not in seen:
                seen.append(wire.net)
        return seen

    def wires_on_layer(self, layer: str) -> List[Wire]:
        return [wire for wire in self.wires if wire.layer == layer]


@dataclass
class GDSLibrary:
    """A collection of cells plus the layer map used for numbering."""

    cells: Dict[str, GDSCell] = field(default_factory=dict)
    layer_map: LayerMap = field(default_factory=default_layer_map)
    unit_nm: float = 1.0

    def add_cell(self, cell: GDSCell) -> None:
        if cell.name in self.cells:
            raise GDSFormatError(f"duplicate cell name {cell.name!r}")
        self.cells[cell.name] = cell

    def cell(self, name: str) -> GDSCell:
        try:
            return self.cells[name]
        except KeyError:
            raise GDSFormatError(
                f"no cell named {name!r}; cells: {sorted(self.cells)}"
            ) from None


def _role_to_text(role: NetRole) -> str:
    return role.value


def _role_from_text(text: str) -> NetRole:
    try:
        return NetRole(text)
    except ValueError:
        return NetRole.OTHER


def write_gdt(library: GDSLibrary, destination: Union[str, Path, TextIO]) -> None:
    """Write a :class:`GDSLibrary` in the GDT text format."""
    owns_handle = False
    if isinstance(destination, (str, Path)):
        handle: TextIO = open(destination, "w", encoding="utf-8")
        owns_handle = True
    else:
        handle = destination
    try:
        handle.write(f"HEADER unit_nm={library.unit_nm}\n")
        for cell in library.cells.values():
            handle.write(f"CELL {cell.name}\n")
            for wire in cell.wires:
                layer = library.layer_map.by_name(wire.layer)
                handle.write(
                    "BOUNDARY "
                    f"layer={layer.gds_layer} datatype={layer.gds_datatype} "
                    f"net={wire.net} role={_role_to_text(wire.role)}\n"
                )
                rect = wire.rect
                coords = [
                    rect.x_min, rect.y_min,
                    rect.x_max, rect.y_min,
                    rect.x_max, rect.y_max,
                    rect.x_min, rect.y_max,
                ]
                handle.write("XY " + " ".join(f"{value:.3f}" for value in coords) + "\n")
                handle.write("ENDEL\n")
            handle.write("ENDCELL\n")
    finally:
        if owns_handle:
            handle.close()


def dumps_gdt(library: GDSLibrary) -> str:
    """Return the GDT text of a library as a string."""
    buffer = io.StringIO()
    write_gdt(library, buffer)
    return buffer.getvalue()


def _parse_xy(line: str) -> Rect:
    parts = line.split()
    values = [float(token) for token in parts[1:]]
    if len(values) < 6 or len(values) % 2 != 0:
        raise GDSFormatError(f"bad XY record: {line!r}")
    points = [Point(values[i], values[i + 1]) for i in range(0, len(values), 2)]
    polygon = Polygon(vertices=tuple(points))
    return polygon.bounding_box()


def read_gdt(
    source: Union[str, Path, TextIO],
    layer_map: Optional[LayerMap] = None,
) -> GDSLibrary:
    """Read a GDT text stream or file back into a :class:`GDSLibrary`."""
    chosen_map = layer_map if layer_map is not None else default_layer_map()
    owns_handle = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, "r", encoding="utf-8")
        owns_handle = True
    else:
        handle = source

    library = GDSLibrary(layer_map=chosen_map)
    current_cell: Optional[GDSCell] = None
    pending: Optional[Dict[str, str]] = None
    try:
        for raw_line in handle:
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            keyword = line.split()[0]
            if keyword == "HEADER":
                fields = dict(
                    token.split("=", 1) for token in line.split()[1:] if "=" in token
                )
                library.unit_nm = float(fields.get("unit_nm", "1.0"))
            elif keyword == "CELL":
                name = line.split(maxsplit=1)[1]
                current_cell = GDSCell(name=name)
            elif keyword == "ENDCELL":
                if current_cell is None:
                    raise GDSFormatError("ENDCELL without CELL")
                library.add_cell(current_cell)
                current_cell = None
            elif keyword == "BOUNDARY":
                pending = dict(
                    token.split("=", 1) for token in line.split()[1:] if "=" in token
                )
            elif keyword == "XY":
                if current_cell is None or pending is None:
                    raise GDSFormatError("XY record outside of a BOUNDARY element")
                rect = _parse_xy(line)
                gds_layer = int(pending["layer"])
                gds_datatype = int(pending.get("datatype", "0"))
                layer = chosen_map.by_gds(gds_layer, gds_datatype)
                wire = Wire(
                    net=pending.get("net", "UNNAMED"),
                    layer=layer.name,
                    rect=rect,
                    role=_role_from_text(pending.get("role", "other")),
                )
                current_cell.wires.append(wire)
            elif keyword == "ENDEL":
                pending = None
            else:
                raise GDSFormatError(f"unknown record {keyword!r}")
    finally:
        if owns_handle:
            handle.close()

    if current_cell is not None:
        raise GDSFormatError(f"cell {current_cell.name!r} was never closed")
    return library


def loads_gdt(text: str, layer_map: Optional[LayerMap] = None) -> GDSLibrary:
    """Parse GDT text from a string."""
    return read_gdt(io.StringIO(text), layer_map=layer_map)


def library_from_wires(
    cell_name: str,
    wires: Iterable[Wire],
    layer_map: Optional[LayerMap] = None,
) -> GDSLibrary:
    """Wrap a wire list into a single-cell library ready for export."""
    library = GDSLibrary(layer_map=layer_map if layer_map is not None else default_layer_map())
    library.add_cell(GDSCell(name=cell_name, wires=list(wires)))
    return library
