"""Wires, routing tracks and cross-section track patterns.

The heart of the variability study is a set of long parallel metal1 wires
(bit lines and power rails) whose widths and positions are perturbed by the
patterning process.  Two views of the same structure are provided:

* :class:`Wire` — a plan-view rectangle on a layer carrying a net, used by
  the full layout and the GDS exporter.
* :class:`TrackPattern` — the 1-D cross-section perpendicular to the wires:
  an ordered list of :class:`Track` objects (centre position + width + net
  + role).  Patterning operates on track patterns, and the quasi-2D
  extraction consumes them.

Coordinates and dimensions are nanometres.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .geometry import GeometryError, Interval, Rect


class WireError(ValueError):
    """Raised for inconsistent wire or track definitions."""


class NetRole(str, Enum):
    """Functional role of a net in the SRAM array."""

    BITLINE = "bitline"
    BITLINE_BAR = "bitline_bar"
    WORDLINE = "wordline"
    VDD = "vdd"
    VSS = "vss"
    INTERNAL = "internal"
    OTHER = "other"

    @property
    def is_bitline_pair(self) -> bool:
        return self in (NetRole.BITLINE, NetRole.BITLINE_BAR)

    @property
    def is_supply(self) -> bool:
        return self in (NetRole.VDD, NetRole.VSS)


@dataclass(frozen=True)
class Wire:
    """A straight wire segment: a rectangle on a layer carrying a net."""

    net: str
    layer: str
    rect: Rect
    role: NetRole = NetRole.OTHER

    def __post_init__(self) -> None:
        if not self.net:
            raise WireError("wire net name cannot be empty")
        if not self.layer:
            raise WireError("wire layer name cannot be empty")
        if self.rect.area <= 0.0:
            raise WireError(f"wire on net {self.net!r} has zero area")

    @property
    def length_nm(self) -> float:
        """The long dimension of the wire."""
        return max(self.rect.width, self.rect.height)

    @property
    def width_nm(self) -> float:
        """The short dimension of the wire."""
        return min(self.rect.width, self.rect.height)

    @property
    def is_horizontal(self) -> bool:
        return self.rect.width >= self.rect.height


@dataclass(frozen=True)
class Track:
    """One routing track in a cross-section.

    Parameters
    ----------
    net:
        Net name (``"BL0"``, ``"VSS"``...).
    center_nm:
        Centre position of the track along the cross-section axis.
    width_nm:
        Drawn (or printed) line width.
    role:
        Functional role of the net.
    mask:
        Patterning mask identifier (``"A"``, ``"B"``, ``"C"``, ``"core"``,
        ``"spacer"``, ``"euv"``); assigned by the patterning option, ``None``
        for an un-decomposed nominal pattern.
    """

    net: str
    center_nm: float
    width_nm: float
    role: NetRole = NetRole.OTHER
    mask: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.net:
            raise WireError("track net name cannot be empty")
        if self.width_nm <= 0.0:
            raise WireError(
                f"track on net {self.net!r} must have positive width, got {self.width_nm}"
            )

    @property
    def left_edge_nm(self) -> float:
        return self.center_nm - self.width_nm / 2.0

    @property
    def right_edge_nm(self) -> float:
        return self.center_nm + self.width_nm / 2.0

    @property
    def extent(self) -> Interval:
        return Interval(self.left_edge_nm, self.right_edge_nm)

    def shifted(self, delta_nm: float) -> "Track":
        """Return a copy displaced by ``delta_nm`` along the cross-section."""
        return replace(self, center_nm=self.center_nm + delta_nm)

    def widened(self, delta_nm: float) -> "Track":
        """Return a copy with the width changed by ``delta_nm`` (centre fixed)."""
        new_width = self.width_nm + delta_nm
        if new_width <= 0.0:
            raise WireError(
                f"widening track {self.net!r} by {delta_nm} nm would give a "
                f"non-positive width ({new_width} nm)"
            )
        return replace(self, width_nm=new_width)

    def with_mask(self, mask: str) -> "Track":
        return replace(self, mask=mask)

    def with_edges(self, left_nm: float, right_nm: float) -> "Track":
        """Return a copy with explicit left/right printed edges."""
        if right_nm <= left_nm:
            raise WireError(
                f"track {self.net!r}: right edge ({right_nm}) must exceed left "
                f"edge ({left_nm})"
            )
        return replace(
            self,
            center_nm=0.5 * (left_nm + right_nm),
            width_nm=right_nm - left_nm,
        )


class TrackPattern:
    """An ordered cross-section of parallel tracks.

    Tracks are stored sorted by centre position.  The pattern knows how to
    report spaces between neighbours, find a net's track, and produce
    perturbed copies — everything the patterning and extraction layers
    need.
    """

    def __init__(self, tracks: Iterable[Track], wire_length_nm: float) -> None:
        track_list = sorted(tracks, key=lambda track: track.center_nm)
        if not track_list:
            raise WireError("a track pattern needs at least one track")
        if wire_length_nm <= 0.0:
            raise WireError("wire length must be positive")
        self._tracks: Tuple[Track, ...] = tuple(track_list)
        self._wire_length_nm = float(wire_length_nm)
        self._validate_no_overlap()

    def _validate_no_overlap(self) -> None:
        for left, right in zip(self._tracks, self._tracks[1:]):
            if right.left_edge_nm < left.right_edge_nm - 1e-9:
                raise WireError(
                    f"tracks {left.net!r} and {right.net!r} overlap "
                    f"({left.right_edge_nm:.3f} > {right.left_edge_nm:.3f})"
                )

    # -- basic container protocol -----------------------------------------

    def __len__(self) -> int:
        return len(self._tracks)

    def __iter__(self) -> Iterator[Track]:
        return iter(self._tracks)

    def __getitem__(self, index: int) -> Track:
        return self._tracks[index]

    @property
    def tracks(self) -> Tuple[Track, ...]:
        return self._tracks

    @property
    def wire_length_nm(self) -> float:
        """Length of the wires perpendicular to the cross-section."""
        return self._wire_length_nm

    @property
    def nets(self) -> List[str]:
        return [track.net for track in self._tracks]

    @property
    def extent(self) -> Interval:
        return Interval(self._tracks[0].left_edge_nm, self._tracks[-1].right_edge_nm)

    # -- queries ------------------------------------------------------------

    def index_of(self, net: str) -> int:
        """Index of the first track carrying ``net``."""
        for index, track in enumerate(self._tracks):
            if track.net == net:
                return index
        raise KeyError(f"no track carries net {net!r}; nets: {self.nets}")

    def track_for(self, net: str) -> Track:
        return self._tracks[self.index_of(net)]

    def tracks_with_role(self, role: NetRole) -> List[Track]:
        return [track for track in self._tracks if track.role is role]

    def neighbors_of(self, index: int) -> Tuple[Optional[Track], Optional[Track]]:
        """The tracks immediately left and right of ``index`` (``None`` at edges)."""
        if not 0 <= index < len(self._tracks):
            raise IndexError(f"track index {index} out of range")
        left = self._tracks[index - 1] if index > 0 else None
        right = self._tracks[index + 1] if index < len(self._tracks) - 1 else None
        return left, right

    def space_between(self, left_index: int, right_index: int) -> float:
        """Edge-to-edge space between two tracks (they must not overlap)."""
        left = self._tracks[left_index]
        right = self._tracks[right_index]
        if left.center_nm > right.center_nm:
            left, right = right, left
        space = right.left_edge_nm - left.right_edge_nm
        if space < 0.0:
            raise WireError(
                f"tracks {left.net!r} and {right.net!r} overlap by {-space:.3f} nm"
            )
        return space

    def spaces(self) -> List[float]:
        """All neighbour-to-neighbour spaces, left to right."""
        return [
            self.space_between(index, index + 1) for index in range(len(self._tracks) - 1)
        ]

    def pitches(self) -> List[float]:
        """Centre-to-centre pitches, left to right."""
        return [
            self._tracks[index + 1].center_nm - self._tracks[index].center_nm
            for index in range(len(self._tracks) - 1)
        ]

    def min_space(self) -> float:
        spaces = self.spaces()
        if not spaces:
            raise WireError("a single-track pattern has no spaces")
        return min(spaces)

    # -- transformations ----------------------------------------------------

    def with_tracks(self, tracks: Sequence[Track]) -> "TrackPattern":
        """A new pattern with the same wire length but different tracks."""
        return TrackPattern(tracks, wire_length_nm=self._wire_length_nm)

    def with_wire_length(self, wire_length_nm: float) -> "TrackPattern":
        return TrackPattern(self._tracks, wire_length_nm=wire_length_nm)

    def replace_track(self, index: int, new_track: Track) -> "TrackPattern":
        tracks = list(self._tracks)
        tracks[index] = new_track
        return self.with_tracks(tracks)

    def translated(self, delta_nm: float) -> "TrackPattern":
        return self.with_tracks([track.shifted(delta_nm) for track in self._tracks])

    def tiled(self, copies: int, period_nm: float) -> "TrackPattern":
        """Repeat the pattern ``copies`` times at ``period_nm`` spacing.

        Net names of the copies are suffixed with ``@k`` (k = 1..copies-1)
        so each track keeps a unique net name; the first copy keeps the
        original names.
        """
        if copies < 1:
            raise WireError("the number of copies must be at least 1")
        if period_nm <= 0.0:
            raise WireError("the tiling period must be positive")
        tracks: List[Track] = []
        for copy_index in range(copies):
            offset = copy_index * period_nm
            for track in self._tracks:
                net = track.net if copy_index == 0 else f"{track.net}@{copy_index}"
                tracks.append(replace(track, net=net, center_nm=track.center_nm + offset))
        return self.with_tracks(tracks)

    def as_wires(self, layer: str, start_nm: float = 0.0) -> List[Wire]:
        """Materialise the pattern as plan-view wires running along x."""
        wires = []
        for track in self._tracks:
            rect = Rect(
                x_min=start_nm,
                y_min=track.left_edge_nm,
                x_max=start_nm + self._wire_length_nm,
                y_max=track.right_edge_nm,
            )
            wires.append(Wire(net=track.net, layer=layer, rect=rect, role=track.role))
        return wires

    def summary(self) -> Dict[str, object]:
        """A small diagnostic dictionary (used by reports and tests)."""
        return {
            "tracks": len(self._tracks),
            "nets": self.nets,
            "wire_length_nm": self._wire_length_nm,
            "min_space_nm": self.min_space() if len(self._tracks) > 1 else None,
            "extent_nm": (self.extent.low, self.extent.high),
        }


def uniform_track_pattern(
    nets: Sequence[str],
    pitch_nm: float,
    width_nm: float,
    wire_length_nm: float,
    roles: Optional[Sequence[NetRole]] = None,
    start_center_nm: float = 0.0,
) -> TrackPattern:
    """Build a pattern of equally pitched, equally wide tracks.

    A convenience used by tests and by the simple examples; the SRAM cell
    generator builds richer patterns directly.
    """
    if pitch_nm <= 0.0:
        raise WireError("pitch must be positive")
    if width_nm <= 0.0 or width_nm >= pitch_nm:
        raise WireError("width must be positive and smaller than the pitch")
    if roles is not None and len(roles) != len(nets):
        raise WireError("roles, when given, must match the number of nets")
    tracks = []
    for index, net in enumerate(nets):
        role = roles[index] if roles is not None else NetRole.OTHER
        tracks.append(
            Track(
                net=net,
                center_nm=start_center_nm + index * pitch_nm,
                width_nm=width_nm,
                role=role,
            )
        )
    return TrackPattern(tracks, wire_length_nm=wire_length_nm)
