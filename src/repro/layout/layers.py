"""Layer map: names, GDS layer/datatype numbers and purposes.

The layout generator annotates each shape with a :class:`Layer`; the
GDS-like exporter and the extraction engine both key off the layer name.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List


class LayerError(ValueError):
    """Raised for unknown or duplicated layers."""


class LayerPurpose(str, Enum):
    """What a layer is used for in the SRAM layout."""

    DIFFUSION = "diffusion"
    GATE = "gate"
    CONTACT = "contact"
    METAL = "metal"
    VIA = "via"
    MARKER = "marker"


@dataclass(frozen=True)
class Layer:
    """A drawing layer.

    Parameters
    ----------
    name:
        Layer name (``"metal1"``, ``"via1"``...), must match the metal
        stack names for routing layers.
    gds_layer / gds_datatype:
        Numbers used by the GDS-like exporter.
    purpose:
        Functional classification.
    """

    name: str
    gds_layer: int
    gds_datatype: int = 0
    purpose: LayerPurpose = LayerPurpose.METAL

    def __post_init__(self) -> None:
        if not self.name:
            raise LayerError("layer name cannot be empty")
        if self.gds_layer < 0 or self.gds_datatype < 0:
            raise LayerError(f"layer {self.name!r}: GDS numbers cannot be negative")


class LayerMap:
    """A registry of layers addressable by name or GDS number pair."""

    def __init__(self, layers: Iterable[Layer] = ()) -> None:
        self._by_name: Dict[str, Layer] = {}
        for layer in layers:
            self.add(layer)

    def add(self, layer: Layer) -> None:
        if layer.name in self._by_name:
            raise LayerError(f"duplicate layer name {layer.name!r}")
        self._by_name[layer.name] = layer

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def names(self) -> List[str]:
        return list(self._by_name)

    def by_name(self, name: str) -> Layer:
        try:
            return self._by_name[name]
        except KeyError:
            raise LayerError(
                f"unknown layer {name!r}; known layers: {self.names}"
            ) from None

    def by_gds(self, gds_layer: int, gds_datatype: int = 0) -> Layer:
        for layer in self._by_name.values():
            if layer.gds_layer == gds_layer and layer.gds_datatype == gds_datatype:
                return layer
        raise LayerError(f"no layer with GDS pair ({gds_layer}, {gds_datatype})")

    def metals(self) -> List[Layer]:
        return [layer for layer in self if layer.purpose is LayerPurpose.METAL]


def default_layer_map() -> LayerMap:
    """The layer map used by the N10 SRAM layout generator."""
    return LayerMap(
        [
            Layer("diffusion", gds_layer=1, purpose=LayerPurpose.DIFFUSION),
            Layer("gate", gds_layer=5, purpose=LayerPurpose.GATE),
            Layer("contact", gds_layer=10, purpose=LayerPurpose.CONTACT),
            Layer("metal1", gds_layer=15, purpose=LayerPurpose.METAL),
            Layer("via1", gds_layer=16, purpose=LayerPurpose.VIA),
            Layer("metal2", gds_layer=17, purpose=LayerPurpose.METAL),
            Layer("via2", gds_layer=18, purpose=LayerPurpose.VIA),
            Layer("metal3", gds_layer=19, purpose=LayerPurpose.METAL),
            Layer("boundary", gds_layer=63, purpose=LayerPurpose.MARKER),
        ]
    )
