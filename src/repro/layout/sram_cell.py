"""Parametric layout of the high-density 6T SRAM cell (imec N10 style).

The paper's target layout (Fig. 1b) uses:

* unidirectional **horizontal metal1** at minimum spacing for the bit lines
  and the power grid — per cell the track stack is ``VSS | BL | VDD | BLB``,
  with the bit lines drawn at a non-minimum CD (which is why the bit-line
  *resistance* stays low and the capacitance dominates);
* unidirectional **vertical metal2** for the word lines.

This module generates that structure parametrically from a
:class:`~repro.technology.node.TechnologyNode`, returning both the
plan-view wires (for the GDS-like export) and the metal1
:class:`~repro.layout.wire.TrackPattern` that the patterning and extraction
engines operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..technology.node import TechnologyNode
from .geometry import Rect
from .layers import LayerMap, default_layer_map
from .wire import NetRole, Track, TrackPattern, Wire, WireError


class CellLayoutError(ValueError):
    """Raised when a cell layout cannot be constructed."""


@dataclass(frozen=True)
class TrackSpec:
    """Specification of one metal1 track of the cell (before placement)."""

    net: str
    role: NetRole
    width_nm: float

    def __post_init__(self) -> None:
        if self.width_nm <= 0.0:
            raise CellLayoutError(f"track {self.net!r} must have positive width")


@dataclass(frozen=True)
class SRAMCellTemplate:
    """Geometric template of the 6T cell.

    Parameters
    ----------
    track_specs:
        Ordered metal1 tracks across the cell (bottom to top in the layout
        of Fig. 1b).  The default is the ``VSS | BL | VDD | BLB`` stack with
        28 nm bit lines (non-minimum CD) and 24 nm power rails.
    track_space_nm:
        Edge-to-edge space between consecutive metal1 tracks (the paper
        uses minimum spacing).
    cell_length_nm:
        Cell dimension along the bit line (one word-line pitch); this is
        the bit-line length contributed per cell.
    wordline_width_nm:
        Drawn metal2 word-line width.
    """

    track_specs: Tuple[TrackSpec, ...] = (
        TrackSpec("VSS", NetRole.VSS, 24.0),
        TrackSpec("BL", NetRole.BITLINE, 30.0),
        TrackSpec("VDD", NetRole.VDD, 24.0),
        TrackSpec("BLB", NetRole.BITLINE_BAR, 30.0),
    )
    track_space_nm: float = 24.0
    cell_length_nm: float = 240.0
    wordline_width_nm: float = 24.0

    def __post_init__(self) -> None:
        if not self.track_specs:
            raise CellLayoutError("the cell template needs at least one metal1 track")
        if self.track_space_nm <= 0.0:
            raise CellLayoutError("the track space must be positive")
        if self.cell_length_nm <= 0.0:
            raise CellLayoutError("the cell length must be positive")
        if self.wordline_width_nm <= 0.0:
            raise CellLayoutError("the word-line width must be positive")
        roles = [spec.role for spec in self.track_specs]
        if NetRole.BITLINE not in roles or NetRole.BITLINE_BAR not in roles:
            raise CellLayoutError(
                "the cell template must contain a BL and a BLB track"
            )

    @property
    def cell_height_nm(self) -> float:
        """Total metal1 stack height of one cell, including the top space.

        The trailing space belongs to the cell so that vertically tiled
        cells repeat with this exact period.
        """
        widths = sum(spec.width_nm for spec in self.track_specs)
        spaces = self.track_space_nm * len(self.track_specs)
        return widths + spaces

    def track_centers_nm(self, origin_nm: float = 0.0) -> List[float]:
        """Centre positions of the tracks, starting at ``origin_nm``."""
        centers = []
        cursor = origin_nm
        for spec in self.track_specs:
            centers.append(cursor + spec.width_nm / 2.0)
            cursor += spec.width_nm + self.track_space_nm
        return centers


@dataclass
class SRAMCellLayout:
    """The generated layout of one 6T SRAM cell.

    Attributes
    ----------
    template:
        The geometric template the layout was generated from.
    metal1_pattern:
        The metal1 cross-section of the cell (one track per net).
    wires:
        Plan-view wires: the metal1 tracks (running along x, the bit-line
        direction) plus the metal2 word line (running along y).
    """

    template: SRAMCellTemplate
    metal1_pattern: TrackPattern
    wires: List[Wire] = field(default_factory=list)
    layer_map: LayerMap = field(default_factory=default_layer_map)

    @property
    def bitline_track(self) -> Track:
        return self.metal1_pattern.tracks_with_role(NetRole.BITLINE)[0]

    @property
    def bitline_bar_track(self) -> Track:
        return self.metal1_pattern.tracks_with_role(NetRole.BITLINE_BAR)[0]

    @property
    def cell_height_nm(self) -> float:
        return self.template.cell_height_nm

    @property
    def cell_length_nm(self) -> float:
        return self.template.cell_length_nm

    def boundary(self) -> Rect:
        return Rect(0.0, 0.0, self.cell_length_nm, self.cell_height_nm)


def default_cell_template(node: Optional[TechnologyNode] = None) -> SRAMCellTemplate:
    """Build the default cell template for a technology node.

    Bit lines are drawn 4 nm above the layer's minimum width (non-minimum
    CD, as stated in Section II.B of the paper), power rails at minimum
    width, all spaces at the layer minimum.
    """
    if node is None:
        track_space = 24.0
        rail_width = 24.0
        bitline_width = 30.0
        cell_length = 240.0
        wordline_width = 24.0
    else:
        metal1 = node.bitline_metal
        track_space = metal1.min_space_nm
        rail_width = metal1.min_width_nm
        bitline_width = metal1.min_width_nm + 6.0
        cell_length = node.sram_cell_width_nm
        wordline_width = node.wordline_metal.min_width_nm
    return SRAMCellTemplate(
        track_specs=(
            TrackSpec("VSS", NetRole.VSS, rail_width),
            TrackSpec("BL", NetRole.BITLINE, bitline_width),
            TrackSpec("VDD", NetRole.VDD, rail_width),
            TrackSpec("BLB", NetRole.BITLINE_BAR, bitline_width),
        ),
        track_space_nm=track_space,
        cell_length_nm=cell_length,
        wordline_width_nm=wordline_width,
    )


def generate_cell_layout(
    node: Optional[TechnologyNode] = None,
    template: Optional[SRAMCellTemplate] = None,
    layer_map: Optional[LayerMap] = None,
) -> SRAMCellLayout:
    """Generate the 6T cell layout.

    Parameters
    ----------
    node:
        Technology node; defaults to N10-class dimensions when omitted.
    template:
        Explicit cell template; overrides the node-derived default.
    layer_map:
        Layer registry for the generated wires.
    """
    chosen_template = template if template is not None else default_cell_template(node)
    chosen_layer_map = layer_map if layer_map is not None else default_layer_map()

    bitline_layer = node.bitline_layer if node is not None else "metal1"
    wordline_layer = node.wordline_layer if node is not None else "metal2"
    if bitline_layer not in chosen_layer_map:
        raise CellLayoutError(f"layer map has no {bitline_layer!r} layer")
    if wordline_layer not in chosen_layer_map:
        raise CellLayoutError(f"layer map has no {wordline_layer!r} layer")

    centers = chosen_template.track_centers_nm()
    tracks = [
        Track(
            net=spec.net,
            center_nm=center,
            width_nm=spec.width_nm,
            role=spec.role,
        )
        for spec, center in zip(chosen_template.track_specs, centers)
    ]
    pattern = TrackPattern(tracks, wire_length_nm=chosen_template.cell_length_nm)

    wires = pattern.as_wires(layer=bitline_layer, start_nm=0.0)
    # One vertical metal2 word line crossing the cell at mid-length.
    wordline_rect = Rect.from_center(
        center_x=chosen_template.cell_length_nm / 2.0,
        center_y=chosen_template.cell_height_nm / 2.0,
        width=chosen_template.wordline_width_nm,
        height=chosen_template.cell_height_nm,
    )
    wires.append(
        Wire(net="WL", layer=wordline_layer, rect=wordline_rect, role=NetRole.WORDLINE)
    )
    return SRAMCellLayout(
        template=chosen_template,
        metal1_pattern=pattern,
        wires=wires,
        layer_map=chosen_layer_map,
    )
