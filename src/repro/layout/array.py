"""SRAM array layout generation (the DOE arrays of Fig. 3).

The paper's design-of-experiments uses arrays of 16, 64, 256 and 1024 word
lines with a fixed word length of 10 bit-line pairs.  Because metal1 is
horizontal and carries the bit lines, the array grows *along* the bit line
with the number of word lines and the metal1 cross-section repeats
*across* the bit lines with the number of bit-line pairs.

The generator produces:

* the full metal1 cross-section :class:`~repro.layout.wire.TrackPattern`
  (cells tiled across the word direction, net names suffixed per column);
* the bit-line length (``n_wordlines × cell_length``);
* plan-view wires for export and inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..technology.node import TechnologyNode
from .geometry import Rect, bounding_box_of
from .layers import LayerMap, default_layer_map
from .sram_cell import SRAMCellLayout, SRAMCellTemplate, generate_cell_layout
from .wire import NetRole, Track, TrackPattern, Wire


class ArrayLayoutError(ValueError):
    """Raised when an array layout cannot be constructed."""

#: The array sizes (number of word lines) of the paper's DOE, Fig. 3.
PAPER_ARRAY_SIZES: Tuple[int, ...] = (16, 64, 256, 1024)

#: The fixed word length (number of bit-line pairs) of the paper's DOE.
PAPER_BITLINE_PAIRS: int = 10


@dataclass(frozen=True)
class ArrayDimensions:
    """Logical dimensions of an SRAM array."""

    n_wordlines: int
    n_bitline_pairs: int = PAPER_BITLINE_PAIRS

    def __post_init__(self) -> None:
        if self.n_wordlines < 1:
            raise ArrayLayoutError("an array needs at least one word line")
        if self.n_bitline_pairs < 1:
            raise ArrayLayoutError("an array needs at least one bit-line pair")

    @property
    def n_cells(self) -> int:
        return self.n_wordlines * self.n_bitline_pairs

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``"10x64"`` (bit pairs × word lines)."""
        return f"{self.n_bitline_pairs}x{self.n_wordlines}"


@dataclass
class SRAMArrayLayout:
    """Layout view of an SRAM array.

    Attributes
    ----------
    dimensions:
        Logical array dimensions.
    cell:
        The unit-cell layout the array is tiled from.
    metal1_pattern:
        Metal1 cross-section of the whole array: the cell's track stack
        repeated ``n_bitline_pairs`` times (wire length equals the bit-line
        length).  Net names of the first column keep the plain names
        (``BL``, ``BLB``, ``VSS``, ``VDD``); subsequent columns carry an
        ``@k`` suffix.
    bitline_length_nm:
        Physical length of each bit line.
    """

    dimensions: ArrayDimensions
    cell: SRAMCellLayout
    metal1_pattern: TrackPattern
    bitline_length_nm: float
    layer_map: LayerMap = field(default_factory=default_layer_map)

    @property
    def n_wordlines(self) -> int:
        return self.dimensions.n_wordlines

    @property
    def n_bitline_pairs(self) -> int:
        return self.dimensions.n_bitline_pairs

    @property
    def label(self) -> str:
        return self.dimensions.label

    def central_pair_nets(self) -> Tuple[str, str]:
        """Net names of the BL/BLB pair in the central column.

        The paper keeps the bit-line count at 10 precisely so the central
        lines are free of array-edge effects; extraction therefore targets
        the central pair.
        """
        central_column = self.n_bitline_pairs // 2
        suffix = "" if central_column == 0 else f"@{central_column}"
        return (f"BL{suffix}", f"BLB{suffix}")

    def central_column_nets(self) -> Tuple[str, str, str, str]:
        """Net names of the central column's BL, BLB, VSS and VDD rails.

        Single source of the ``<net>@<column>`` naming rule for every
        consumer (read/write/margin harnesses, worst-case and Monte-Carlo
        studies) that extracts the central column.
        """
        bl_net, blb_net = self.central_pair_nets()
        central_column = self.n_bitline_pairs // 2
        suffix = "" if central_column == 0 else f"@{central_column}"
        return (bl_net, blb_net, f"VSS{suffix}", f"VDD{suffix}")

    def wires(self) -> List[Wire]:
        """Plan-view metal1 wires of the full array plus the word lines."""
        bitline_layer = self.cell.wires[0].layer
        result = self.metal1_pattern.as_wires(layer=bitline_layer, start_nm=0.0)
        wordline_layer = next(
            (wire.layer for wire in self.cell.wires if wire.role is NetRole.WORDLINE),
            "metal2",
        )
        height = self.metal1_pattern.extent.high
        cell_length = self.cell.cell_length_nm
        wordline_width = self.cell.template.wordline_width_nm
        for word_index in range(self.n_wordlines):
            center_x = (word_index + 0.5) * cell_length
            rect = Rect.from_center(
                center_x=center_x,
                center_y=height / 2.0,
                width=wordline_width,
                height=height,
            )
            result.append(
                Wire(
                    net=f"WL{word_index}",
                    layer=wordline_layer,
                    rect=rect,
                    role=NetRole.WORDLINE,
                )
            )
        return result

    def boundary(self) -> Rect:
        return bounding_box_of(wire.rect for wire in self.wires())

    def summary(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "n_wordlines": self.n_wordlines,
            "n_bitline_pairs": self.n_bitline_pairs,
            "bitline_length_nm": self.bitline_length_nm,
            "metal1_tracks": len(self.metal1_pattern),
        }


def generate_array_layout(
    n_wordlines: int,
    n_bitline_pairs: int = PAPER_BITLINE_PAIRS,
    node: Optional[TechnologyNode] = None,
    template: Optional[SRAMCellTemplate] = None,
    layer_map: Optional[LayerMap] = None,
) -> SRAMArrayLayout:
    """Generate the layout of an ``n_bitline_pairs × n_wordlines`` array.

    Parameters
    ----------
    n_wordlines:
        Number of word lines; the bit-line length is
        ``n_wordlines × cell_length``.
    n_bitline_pairs:
        Number of bit-line pairs (columns); the paper fixes this at 10.
    node, template, layer_map:
        Forwarded to :func:`~repro.layout.sram_cell.generate_cell_layout`.
    """
    dimensions = ArrayDimensions(n_wordlines=n_wordlines, n_bitline_pairs=n_bitline_pairs)
    cell = generate_cell_layout(node=node, template=template, layer_map=layer_map)
    bitline_length = cell.cell_length_nm * n_wordlines
    pattern = cell.metal1_pattern.with_wire_length(bitline_length)
    tiled = pattern.tiled(copies=n_bitline_pairs, period_nm=cell.cell_height_nm)
    return SRAMArrayLayout(
        dimensions=dimensions,
        cell=cell,
        metal1_pattern=tiled,
        bitline_length_nm=bitline_length,
        layer_map=cell.layer_map,
    )


def paper_doe_layouts(
    node: Optional[TechnologyNode] = None,
    sizes: Sequence[int] = PAPER_ARRAY_SIZES,
    n_bitline_pairs: int = PAPER_BITLINE_PAIRS,
) -> Dict[str, SRAMArrayLayout]:
    """Generate all arrays of the paper's DOE keyed by their label."""
    layouts = {}
    for size in sizes:
        layout = generate_array_layout(
            n_wordlines=size, n_bitline_pairs=n_bitline_pairs, node=node
        )
        layouts[layout.label] = layout
    return layouts
