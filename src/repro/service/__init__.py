"""Service layer: content-addressed caching, async jobs, HTTP serving.

The subsystem that turns the reproduction into a long-running experiment
service (all stdlib, no new dependencies):

* :mod:`repro.service.cache`  — :class:`~repro.service.cache.ResultCache`,
  a content-addressed, LRU-bounded, atomically-written store of
  serialised ResultSets keyed by the spec fingerprint;
* :mod:`repro.service.journal` — :class:`~repro.service.journal.JobJournal`,
  an append-only JSONL write-ahead log that makes submissions durable
  across crashes (``kill -9`` loses nothing journaled);
* :mod:`repro.service.queue`  — :class:`~repro.service.queue.ExperimentQueue`,
  an async job manager (submit/status/result/cancel) that coalesces
  identical in-flight experiments into one computation, journals them
  when durable, enforces per-job deadlines and replays unfinished work
  on restart;
* :mod:`repro.service.server` — :class:`~repro.service.server.ExperimentServer`,
  a threading JSON HTTP server exposing ``/v1/experiments`` and
  ``/v1/healthz``;
* :mod:`repro.service.client` — :class:`~repro.service.client.ExperimentClient`,
  the thin Python client the CLI's ``repro submit`` verb drives.
"""

from .cache import CacheStats, ResultCache
from .client import ExperimentClient, ServiceError
from .journal import JobJournal, JournalEntry
from .queue import ExperimentQueue, JobError, JobState
from .server import ExperimentServer

__all__ = [
    "CacheStats",
    "ExperimentClient",
    "ExperimentQueue",
    "ExperimentServer",
    "JobError",
    "JobJournal",
    "JobState",
    "JournalEntry",
    "ResultCache",
    "ServiceError",
]
