"""Thin Python client of the experiment server (stdlib ``urllib``).

:class:`ExperimentClient` speaks the JSON protocol of
:mod:`repro.service.server` and is what the CLI's ``repro submit`` verb
drives::

    from repro.service import ExperimentClient

    client = ExperimentClient("http://127.0.0.1:8765")
    ticket = client.submit("examples/specs/smoke.json")
    status = client.wait(ticket["id"])
    print(client.result_text(ticket["id"], fmt="csv"))

Transport failures (connection refused, HTTP error statuses) surface as
:class:`ServiceError` with the server's one-line ``error`` message when
one was sent, so CLI callers can turn them into clean exit-2 messages.

Connection-level failures — refused/reset connections, a server that
died mid-response, socket timeouts — are retried ``max_retries`` times
with capped exponential backoff before giving up.  Every protocol call
is idempotent from the server's point of view (submission is
content-addressed: re-POSTing a spec coalesces onto the in-flight
computation or hits the cache), so blind retry is safe.  HTTP *error
responses* are never retried: the server answered, and the answer would
not change.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from ..api import ResultSet, SpecSource, load_spec

__all__ = ["ExperimentClient", "ServiceError"]

#: Default address of ``repro serve`` (and ``repro submit``).
DEFAULT_URL = "http://127.0.0.1:8765"


class ServiceError(RuntimeError):
    """A transport or protocol failure talking to the experiment server."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


#: Failures worth retrying: the connection itself broke, so the server
#: either never saw the request or never finished answering it.
#: ``urllib.error.HTTPError`` is deliberately absent (it subclasses
#: ``URLError`` but means "the server responded") and is handled first.
_RETRYABLE_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
    OSError,
)


class ExperimentClient:
    """Submit, poll and fetch experiments over HTTP.

    ``timeout_s`` bounds each request on the socket; ``max_retries``
    extra attempts (with ``backoff_s`` doubling per attempt, capped at
    2 s) absorb transient connection failures.  ``max_retries=0``
    restores single-shot behaviour.
    """

    def __init__(
        self,
        base_url: str = DEFAULT_URL,
        timeout_s: float = 30.0,
        max_retries: int = 2,
        backoff_s: float = 0.1,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s < 0.0:
            raise ValueError("backoff_s must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)

    # -- transport ----------------------------------------------------------------------

    def _request(
        self,
        path: str,
        method: str = "GET",
        body: Optional[str] = None,
    ) -> tuple:
        attempts = 1 + self.max_retries
        last_reason = "unknown error"
        for attempt in range(attempts):
            if attempt:
                time.sleep(min(self.backoff_s * 2 ** (attempt - 1), 2.0))
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=None if body is None else body.encode("utf-8"),
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    return response.status, response.read().decode("utf-8")
            except urllib.error.HTTPError as exc:
                # The server responded; retrying would only repeat the
                # same answer.  Surface its error message immediately.
                text = exc.read().decode("utf-8", errors="replace")
                try:
                    message = json.loads(text).get("error", text)
                except json.JSONDecodeError:
                    message = text or str(exc)
                raise ServiceError(
                    f"server returned {exc.code} for {method} {path}: {message}",
                    status=exc.code,
                ) from None
            except _RETRYABLE_ERRORS as exc:
                last_reason = str(getattr(exc, "reason", None) or exc) or type(exc).__name__
                continue
        raise ServiceError(
            f"cannot reach the experiment server at {self.base_url} "
            f"after {attempts} attempt{'s' if attempts != 1 else ''}: {last_reason}"
        )

    def _request_json(self, path: str, method: str = "GET", body: Optional[str] = None) -> Dict[str, Any]:
        status, text = self._request(path, method=method, body=body)
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"server sent invalid JSON for {method} {path}: {exc}", status=status
            ) from None

    # -- protocol -----------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request_json("/v1/healthz")

    def submit(self, spec: SpecSource) -> Dict[str, Any]:
        """Submit any spec source; returns the job ticket (id, state, cached)."""
        document = load_spec(spec).to_json(indent=None)
        return self._request_json("/v1/experiments", method="POST", body=document)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request_json(f"/v1/experiments/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request_json(f"/v1/experiments/{job_id}", method="DELETE")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the status.

        Raises :class:`ServiceError` on timeout or a failed/cancelled job.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                return status
            if status["state"] in ("failed", "cancelled"):
                raise ServiceError(
                    f"job {job_id} {status['state']}: {status.get('error') or ''}".rstrip(": ")
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout_s:g}s waiting for job {job_id} "
                    f"(state: {status['state']})"
                )
            time.sleep(poll_s)

    def result_text(self, job_id: str, fmt: str = "json") -> str:
        """The finished job's rendered result (json, csv or text) verbatim."""
        status, text = self._request(f"/v1/experiments/{job_id}/result?format={fmt}")
        if status != 200:
            raise ServiceError(
                f"job {job_id} has no result yet (HTTP {status})", status=status
            )
        return text

    def result_set(self, job_id: str) -> ResultSet:
        """The finished job's result deserialised back into a ResultSet."""
        return ResultSet.from_json(self.result_text(job_id, fmt="json"))

    def run(
        self,
        spec: SpecSource,
        timeout_s: float = 300.0,
        poll_s: float = 0.1,
    ) -> ResultSet:
        """Submit, wait and fetch in one call (the remote twin of ``api.run``)."""
        ticket = self.submit(spec)
        self.wait(ticket["id"], timeout_s=timeout_s, poll_s=poll_s)
        return self.result_set(ticket["id"])
