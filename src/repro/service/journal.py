"""Durable job journal: an append-only JSONL write-ahead log.

PR 5's queue kept every job in memory, so a crash (or a plain restart)
silently lost all submitted work.  :class:`JobJournal` fixes that with
the smallest durable structure that can: one JSONL file, appended and
fsynced *before* a submission is dispatched, appended again when the job
reaches a terminal state.  On restart, :meth:`replay` pairs the two
event streams and returns exactly the submissions that never finished —
what the queue must re-execute for ``kill -9`` mid-run to lose nothing.

Design notes:

* **Tokens, not job ids.**  Queue job ids restart from ``job-000001``
  every process, so a WAL keyed by them would pair a new process's
  events with a dead process's submissions.  Each ``submitted`` event
  instead carries a journal-unique random token; ``terminal`` events
  reference the token.
* **Torn tails are expected.**  ``kill -9`` can truncate the final line
  mid-write; replay treats any unparsable line as the torn tail (skipped
  and counted), never as corruption worth raising over.
* **Replay is idempotent.**  The recovery path marks each replayed
  submission ``recovered`` (a terminal state) only *after* resubmitting
  it under a fresh token.  A crash between the two steps merely replays
  the job once more next restart — and the result cache and in-flight
  fingerprint coalescing turn the duplicate into a dedupe hit.
* **Spec fingerprints ride along** so operators can grep the WAL for an
  experiment without parsing the embedded spec documents.

Durability is one ``fsync`` per event.  At the experiment queue's
request rates (solves take seconds; appends take microseconds) that is
noise; it is the property the chaos CI job kills a live server to prove.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..core.results import atomic_write_text
from ..obs import trace as obs_trace

__all__ = ["JobJournal", "JournalEntry"]


@dataclass(frozen=True)
class JournalEntry:
    """One outstanding (submitted, never finished) journal record."""

    token: str
    fingerprint: str
    spec: Dict[str, Any]


class JobJournal:
    """Append-only JSONL WAL of experiment submissions.

    Thread safe; shared by the queue's submit path and its worker
    threads.  Events::

        {"event": "submitted", "token": ..., "fingerprint": ..., "spec": {...}, "unix": ...}
        {"event": "terminal",  "token": ..., "state": "done" | "failed" | ...}

    Any terminal state ends the token's obligation — including
    ``recovered`` (handed off to a fresh submission on replay) and
    ``unreplayable`` (the journaled spec no longer validates).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: Unparsable lines seen by the last replay/compact (torn tails).
        self.skipped_lines = 0

    # -- append -------------------------------------------------------------------------

    def record_submitted(self, fingerprint: str, spec) -> str:
        """Journal a submission (durably, before dispatch); returns its token."""
        token = uuid.uuid4().hex[:16]
        payload: Dict[str, Any] = {
            "event": "submitted",
            "token": token,
            "fingerprint": fingerprint,
            "spec": spec.to_dict(),
            "unix": round(time.time(), 3),
        }
        # When the server runs with --trace, stamp the submission with
        # the active trace/span ids so a journaled job can be matched
        # to its spans in the trace file during a post-mortem.
        ids = obs_trace.current_trace_ids()
        if ids is not None:
            payload["trace_id"], span_id = ids
            if span_id is not None:
                payload["span_id"] = span_id
        self._append(payload)
        return token

    def record_terminal(
        self, token: str, state: str, error: Optional[str] = None
    ) -> None:
        payload: Dict[str, Any] = {"event": "terminal", "token": token, "state": state}
        if error:
            payload["error"] = str(error)[:500]
        self._append(payload)

    def _append(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            # Open per append: costs one open(2) next to the fsync that
            # dominates anyway, and stays correct across compact()'s
            # atomic file replacement.
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    # -- scan / replay ------------------------------------------------------------------

    def _scan(self) -> Tuple[List[JournalEntry], Set[str], int]:
        """(submissions in order, terminal tokens, skipped lines)."""
        submissions: List[JournalEntry] = []
        terminal: Set[str] = set()
        skipped = 0
        if not self.path.exists():
            return submissions, terminal, skipped
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(payload, dict):
                skipped += 1
                continue
            event = payload.get("event")
            token = payload.get("token")
            if not isinstance(token, str):
                skipped += 1
                continue
            if event == "submitted" and isinstance(payload.get("spec"), dict):
                submissions.append(
                    JournalEntry(
                        token=token,
                        fingerprint=str(payload.get("fingerprint", "")),
                        spec=payload["spec"],
                    )
                )
            elif event == "terminal":
                terminal.add(token)
            else:
                skipped += 1
        return submissions, terminal, skipped

    def replay(self) -> List[JournalEntry]:
        """The submissions with no terminal event, in submission order."""
        with self._lock:
            submissions, terminal, skipped = self._scan()
            self.skipped_lines = skipped
        return [entry for entry in submissions if entry.token not in terminal]

    def outstanding_count(self) -> int:
        return len(self.replay())

    # -- maintenance --------------------------------------------------------------------

    def compact(self) -> int:
        """Drop finished pairs from the file; returns lines removed.

        Rewrites the WAL to contain only the outstanding ``submitted``
        events (atomically, so a crash mid-compaction leaves the old file
        intact).  Safe to call any time; recovery calls it after replay
        so the WAL does not grow forever.
        """
        with self._lock:
            submissions, terminal, skipped = self._scan()
            self.skipped_lines = skipped
            if not self.path.exists():
                return 0
            before = sum(
                1 for line in self.path.read_text(encoding="utf-8").splitlines() if line.strip()
            )
            keep = [entry for entry in submissions if entry.token not in terminal]
            lines = [
                json.dumps(
                    {
                        "event": "submitted",
                        "token": entry.token,
                        "fingerprint": entry.fingerprint,
                        "spec": entry.spec,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
                for entry in keep
            ]
            atomic_write_text(self.path, "".join(line + "\n" for line in lines))
            return before - len(keep)

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "outstanding": self.outstanding_count(),
            "skipped_lines": self.skipped_lines,
        }
