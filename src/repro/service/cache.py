"""Content-addressed result cache.

A :class:`ResultCache` maps an experiment's content fingerprint
(:meth:`repro.core.spec.ExperimentSpec.fingerprint` — the SHA-256 of the
canonical spec JSON, ``schema_version`` included, executor placement
excluded) to a persisted :class:`~repro.api.ResultSet`:

* one JSON document per entry (``<fingerprint>.json``), written
  atomically via :func:`repro.core.results.atomic_write_text` so
  concurrent readers never see a torn file;
* an LRU size bound (``max_entries``) enforced on insert — access
  recency is tracked through file mtimes, so it survives process
  restarts;
* ``schema_version`` checked on every read: an entry written by a
  different spec schema is invalidated (deleted and counted) instead of
  being deserialised into the wrong shape;
* entries that no longer parse as JSON at all (truncated by a crash or
  a full disk) are **quarantined** — renamed to ``<entry>.json.corrupt``
  beside the store for post-mortems, counted, and treated as a miss; a
  corrupt entry can never raise out of ``get`` or poison future reads;
* hit / miss / store / eviction / invalidation / quarantine counters for
  the service's ``/v1/healthz`` endpoint.

Entries round-trip through ``ResultSet.to_dict()`` /
``ResultSet.from_dict()``: records come back byte-for-byte (JSON floats
round-trip exactly through ``repr``), the typed ``payload`` does not —
cached results render through the generic record table.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..api import ResultSet
from ..core.results import atomic_write_text
from ..core.spec import SCHEMA_VERSION, ExperimentSpec, SpecError
from ..testing import faults

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0
    quarantined: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class ResultCache:
    """Content-addressed, LRU-bounded ResultSet store on disk.

    Thread safe: the server's request threads and the queue's workers
    share one instance.  ``get``/``put`` take the spec itself, so callers
    never handle fingerprints unless they want to (``contains``).
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        max_entries: int = 256,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._lock = threading.Lock()

    # -- addressing ---------------------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def _entries(self) -> List[Path]:
        return [path for path in self.cache_dir.glob("*.json") if path.is_file()]

    def __len__(self) -> int:
        return len(self._entries())

    def contains(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec.fingerprint()).exists()

    # -- read ---------------------------------------------------------------------------

    def get(self, spec: ExperimentSpec) -> Optional[ResultSet]:
        """The cached ResultSet of this experiment, or ``None`` on a miss.

        A hit touches the entry's mtime (the LRU clock).  Corrupt entries
        and entries written under a different ``schema_version`` are
        deleted and counted as invalidations (and as the miss the caller
        observes).
        """
        path = self.path_for(spec.fingerprint())
        with self._lock:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                self.stats.misses += 1
                return None
            result = self._deserialise(text, path)
            if result is None:
                self.stats.misses += 1
                return None
            path.touch()
            self.stats.hits += 1
            return result

    def _deserialise(self, text: str, path: Path) -> Optional[ResultSet]:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            # Not-JSON means bytes went missing (truncation, bad disk) —
            # keep the evidence instead of deleting it.
            self._quarantine(path)
            return None
        if not isinstance(payload, dict) or payload.get("schema_version") != SCHEMA_VERSION:
            self._invalidate(path)
            return None
        try:
            return ResultSet.from_dict(payload)
        except SpecError:
            self._invalidate(path)
            return None

    def _invalidate(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.invalidations += 1

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``.json.corrupt``) and count it.

        The quarantined file is invisible to ``*.json`` globbing, so it
        neither counts against ``max_entries`` nor gets re-read; if even
        the rename fails, fall back to deletion — a corrupt entry must
        never survive under its fingerprint.
        """
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.quarantined += 1

    # -- write --------------------------------------------------------------------------

    def put(self, spec: ExperimentSpec, result: ResultSet) -> str:
        """Store ``result`` under the spec's fingerprint; returns the key.

        Overwrites an existing entry (same content either way) and then
        evicts least-recently-used entries until the store fits
        ``max_entries``.
        """
        fingerprint = spec.fingerprint()
        path = self.path_for(fingerprint)
        text = result.to_json(indent=None)
        text = faults.maybe_truncate_cache(fingerprint, text)
        with self._lock:
            atomic_write_text(path, text)
            self.stats.stores += 1
            self._evict_over_budget(keep=path)
        return fingerprint

    def _evict_over_budget(self, keep: Path) -> None:
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return
        def lru_key(entry: Path) -> tuple:
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                # Raced with an invalidation/quarantine: sort it oldest
                # so it is skipped by the unlink's own OSError guard.
                mtime = 0.0
            return (mtime, entry.name)

        entries.sort(key=lru_key)
        excess = len(entries) - self.max_entries
        for entry in entries:
            if excess <= 0:
                break
            if entry == keep:
                continue
            try:
                entry.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            excess -= 1

    # -- introspection ------------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        with self._lock:
            removed = 0
            for entry in self._entries():
                try:
                    entry.unlink()
                except OSError:
                    continue
                removed += 1
            return removed

    def stats_dict(self) -> Dict[str, Any]:
        """Counters plus occupancy, the ``/v1/healthz`` cache section."""
        payload: Dict[str, Any] = self.stats.to_dict()
        payload["entries"] = len(self)
        payload["max_entries"] = self.max_entries
        payload["cache_dir"] = str(self.cache_dir)
        return payload
