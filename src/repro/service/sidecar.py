"""Cumulative service-stats sidecar: counters that survive restarts.

:class:`ResultCache` and :class:`ExperimentQueue` count in memory, so a
restart used to zero ``/v1/healthz`` — a ``kill -9`` looked like a cache
that had never hit.  :class:`StatsSidecar` persists the lifetime totals
in a small JSON file **next to** the cache directory (``<cache-dir>`` →
``<cache-dir>.stats.json``; deliberately outside it, because the cache
treats every ``*.json`` inside its directory as an entry).

The file holds the totals as of the last persist; a running server
reports ``baseline + current in-memory counters`` and rewrites the file
atomically on every health check and on shutdown.  Corrupt or missing
sidecars load as zeros — observability must never block serving.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..core.results import atomic_write_text

__all__ = ["StatsSidecar", "sidecar_path_for"]

CACHE_COUNTER_KEYS: Tuple[str, ...] = (
    "hits",
    "misses",
    "stores",
    "evictions",
    "invalidations",
    "quarantined",
)
QUEUE_COUNTER_KEYS: Tuple[str, ...] = (
    "submitted",
    "coalesced",
    "cache_hits",
    "completed",
    "failed",
    "cancelled",
    "recovered",
    "timeouts",
)


def sidecar_path_for(cache_dir: Union[str, Path]) -> Path:
    """The sidecar file for a cache directory (a ``.stats.json`` sibling)."""
    cache_path = Path(cache_dir)
    if not cache_path.name:
        # A root-like cache dir has no sibling slot; fall back to a name
        # inside it that the cache's ``*.json`` entry glob cannot match.
        return cache_path / "stats.sidecar"
    return cache_path.parent / (cache_path.name + ".stats.json")


class StatsSidecar:
    """Loads a persisted counter baseline and layers live counters on it."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.baseline = self._load()

    def _load(self) -> Dict[str, Dict[str, int]]:
        empty: Dict[str, Dict[str, int]] = {"cache": {}, "queue": {}}
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return empty
        if not isinstance(payload, dict):
            return empty
        loaded: Dict[str, Dict[str, int]] = {}
        for section, keys in (
            ("cache", CACHE_COUNTER_KEYS),
            ("queue", QUEUE_COUNTER_KEYS),
        ):
            raw = payload.get(section)
            values: Dict[str, int] = {}
            if isinstance(raw, dict):
                for key in keys:
                    try:
                        values[key] = int(raw.get(key, 0))
                    except (TypeError, ValueError):
                        values[key] = 0
            loaded[section] = values
        return loaded

    def _merged(
        self, section: str, keys: Tuple[str, ...], current: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        base = self.baseline.get(section, {})
        merged: Dict[str, Any] = dict(current or {})
        for key in keys:
            try:
                live = int(merged.get(key, 0))
            except (TypeError, ValueError):
                live = 0
            merged[key] = live + int(base.get(key, 0))
        return merged

    def cumulative_cache(
        self, current: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Cache stats with the persisted baseline added to each counter.

        Non-counter fields (``entries``, ``max_entries``, ``cache_dir``)
        pass through untouched — levels describe *now*, not a lifetime.
        """
        return self._merged("cache", CACHE_COUNTER_KEYS, current)

    def cumulative_queue(
        self, current: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Queue stats with the persisted baseline added to each counter."""
        return self._merged("queue", QUEUE_COUNTER_KEYS, current)

    def persist(
        self,
        cache_cumulative: Optional[Mapping[str, Any]],
        queue_cumulative: Optional[Mapping[str, Any]],
    ) -> None:
        """Atomically write already-cumulative totals to the sidecar.

        Callers pass the output of :meth:`cumulative_cache` /
        :meth:`cumulative_queue`; the in-memory baseline is *not*
        advanced, so re-persisting always recomputes ``baseline +
        current`` from the live objects and never double-counts.
        """

        def totals(
            current: Optional[Mapping[str, Any]], keys: Tuple[str, ...]
        ) -> Dict[str, int]:
            source = current or {}
            out: Dict[str, int] = {}
            for key in keys:
                try:
                    out[key] = int(source.get(key, 0))
                except (TypeError, ValueError):
                    out[key] = 0
            return out

        payload = {
            "cache": totals(cache_cumulative, CACHE_COUNTER_KEYS),
            "queue": totals(queue_cumulative, QUEUE_COUNTER_KEYS),
        }
        try:
            atomic_write_text(
                self.path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        except OSError:
            # A read-only or full disk costs persistence, never serving.
            pass
