"""Async job manager over the declarative experiment API.

:class:`ExperimentQueue` gives the service layer submit / status /
result / cancel semantics on top of :func:`repro.api.run`:

* jobs run on a bounded thread pool; each job executes through the exact
  same code path as a direct ``run(spec)`` call — the spec's executor
  backend still resolves to the campaign's chunked, crc32-seeded process
  pool — so queued results keep the library's parity guarantees
  (``rtol <= 1e-12`` against the pre-spec engines);
* identical in-flight experiments coalesce: a second submission whose
  spec has the same content fingerprint attaches to the computation
  already running instead of starting a new one (each submission keeps
  its own job id and status);
* an optional :class:`~repro.service.cache.ResultCache` short-circuits
  submissions whose fingerprint is already stored — the job is born
  ``done`` and marked ``cached`` — and absorbs fresh results for the
  next submission.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import thread as _futures_thread
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import api
from ..api import ResultSet
from ..core.spec import ExperimentSpec
from .cache import ResultCache

__all__ = ["ExperimentQueue", "Job", "JobError", "JobState"]


class JobError(KeyError):
    """Raised for unknown job ids and results requested too early."""


class JobState:
    """Lifecycle states of a job (plain strings, JSON-ready)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submission: identity, lifecycle and (eventually) its result."""

    id: str
    fingerprint: str
    kind: str
    state: str = JobState.QUEUED
    cached: bool = False
    coalesced: bool = False
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[ResultSet] = None

    def to_status(self) -> Dict[str, Any]:
        """JSON-ready status view (no records — fetch the result for those)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "n_records": None if self.result is None else len(self.result),
        }


class ExperimentQueue:
    """Submit / status / result / cancel over a worker pool.

    ``workers`` bounds how many experiments compute concurrently in this
    process; within each experiment the spec's own execution backend
    still applies (a ``process``-backend spec fans out further through
    the campaign pool).
    """

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        runner: Callable[..., ResultSet] = api.run,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.cache = cache
        self._runner = runner
        self._executor = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="repro-job"
        )
        # Re-entrant: Future.cancel() and add_done_callback() on a
        # completed future invoke the settle callback synchronously in
        # the calling thread, which may already hold this lock.
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._futures: Dict[str, Future] = {}          # job id -> shared future
        self._inflight: Dict[str, Future] = {}          # fingerprint -> future
        self._inflight_jobs: Dict[str, List[str]] = {}  # fingerprint -> job ids
        self._ids = itertools.count(1)
        self._counters = {
            "submitted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }

    # -- submission ---------------------------------------------------------------------

    def submit(self, spec: ExperimentSpec) -> Job:
        """Enqueue one experiment; returns its (snapshot) :class:`Job`.

        Resolution order: cache hit → born ``done``; identical in-flight
        fingerprint → attach to the running computation; otherwise a new
        computation starts on the pool.
        """
        spec = api.load_spec(spec)
        fingerprint = spec.fingerprint()
        # The cache read (disk I/O + ResultSet deserialisation) happens
        # outside the queue lock so concurrent submissions and status
        # polls never serialise behind it.  The benign race — another
        # submitter completing between this miss and the lock — resolves
        # to coalescing or a same-content recompute, never wrong data.
        hit = None if self.cache is None else self.cache.get(spec)
        with self._lock:
            job = Job(
                id=f"job-{next(self._ids):06d}",
                fingerprint=fingerprint,
                kind=spec.kind,
            )
            self._jobs[job.id] = job
            self._counters["submitted"] += 1

            if hit is not None:
                job.state = JobState.DONE
                job.cached = True
                job.result = hit
                job.finished_at = time.time()
                self._counters["cache_hits"] += 1
                self._counters["completed"] += 1
                return self._snapshot(job)

            future = self._inflight.get(fingerprint)
            if future is not None:
                job.coalesced = True
                self._counters["coalesced"] += 1
                peers = self._inflight_jobs.get(fingerprint, [])
                if any(
                    self._jobs[peer].state == JobState.RUNNING for peer in peers
                ):
                    job.state = JobState.RUNNING
            else:
                future = self._executor.submit(self._compute, spec, fingerprint)
                self._inflight[fingerprint] = future
                self._inflight_jobs[fingerprint] = []
            self._inflight_jobs[fingerprint].append(job.id)
            self._futures[job.id] = future
            future.add_done_callback(self._make_settler(job.id))
            return self._snapshot(job)

    def _compute(self, spec: ExperimentSpec, fingerprint: str) -> ResultSet:
        with self._lock:
            for job_id in list(self._inflight_jobs.get(fingerprint, [])):
                job = self._jobs.get(job_id)
                if job is not None and job.state == JobState.QUEUED:
                    job.state = JobState.RUNNING
        result = self._runner(spec)
        if self.cache is not None:
            try:
                self.cache.put(spec, result)
            except OSError:
                # A broken cache (disk full, directory removed) must not
                # discard a fully computed result — only the entry is lost.
                pass
        return result

    def _make_settler(self, job_id: str) -> Callable[[Future], None]:
        def settle(future: Future) -> None:
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state in JobState.TERMINAL:
                    return
                job.finished_at = time.time()
                if future.cancelled():
                    job.state = JobState.CANCELLED
                    self._counters["cancelled"] += 1
                else:
                    error = future.exception()
                    if error is not None:
                        job.state = JobState.FAILED
                        job.error = f"{type(error).__name__}: {error}"
                        self._counters["failed"] += 1
                    else:
                        job.state = JobState.DONE
                        job.result = future.result()
                        self._counters["completed"] += 1
                self._release_inflight(job.fingerprint, job_id)

        return settle

    def _release_inflight(self, fingerprint: str, job_id: str) -> None:
        jobs = self._inflight_jobs.get(fingerprint)
        if jobs is None:
            return
        if job_id in jobs:
            jobs.remove(job_id)
        if not jobs:
            self._inflight.pop(fingerprint, None)
            self._inflight_jobs.pop(fingerprint, None)

    # -- queries ------------------------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job id {job_id!r}") from None

    def _snapshot(self, job: Job) -> Job:
        return Job(**{name: getattr(job, name) for name in job.__dataclass_fields__})

    def status(self, job_id: str) -> Dict[str, Any]:
        """JSON-ready status of one job (raises :class:`JobError` if unknown)."""
        with self._lock:
            return self._job(job_id).to_status()

    def result(self, job_id: str, timeout: Optional[float] = None) -> ResultSet:
        """The job's ResultSet, waiting up to ``timeout`` for completion.

        ``timeout=0`` polls; a job that failed re-raises its error as
        :class:`JobError`.
        """
        with self._lock:
            job = self._job(job_id)
            if job.state == JobState.DONE and job.result is not None:
                return job.result
            if job.state == JobState.FAILED:
                raise JobError(f"job {job_id} failed: {job.error}")
            if job.state == JobState.CANCELLED:
                raise JobError(f"job {job_id} was cancelled")
            future = self._futures.get(job_id)
        if future is None:
            raise JobError(f"job {job_id} has no pending computation")
        try:
            result = future.result(timeout=timeout)
        except CancelledError:
            raise JobError(f"job {job_id} was cancelled") from None
        except FutureTimeoutError:
            # Not the builtin TimeoutError before Python 3.11; re-raise so
            # "still computing" never masquerades as "computation failed".
            raise
        except Exception as exc:
            raise JobError(f"job {job_id} failed: {type(exc).__name__}: {exc}") from exc
        return result

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns whether the submission is cancelled.

        A job that shares its computation with other live submissions
        detaches without touching the shared future; the last attached
        submission also attempts to cancel the computation itself (which
        only succeeds while it is still queued on the pool).
        """
        with self._lock:
            job = self._job(job_id)
            if job.state in JobState.TERMINAL:
                return job.state == JobState.CANCELLED
            future = self._futures.get(job_id)
            peers = [
                peer
                for peer in self._inflight_jobs.get(job.fingerprint, [])
                if peer != job_id
            ]
            if peers:
                # Other live submissions share this computation: detach
                # this one without touching the shared future (possible
                # even while the computation runs).
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                self._counters["cancelled"] += 1
                self._release_inflight(job.fingerprint, job_id)
                self._futures.pop(job_id, None)
                return True
            if job.state == JobState.RUNNING:
                return False
            if future is not None and future.cancel():
                # cancel() ran the settle callback synchronously (the
                # lock is re-entrant), which did the state bookkeeping.
                self._futures.pop(job_id, None)
                return True
            return False

    def jobs(self) -> List[Dict[str, Any]]:
        """Status views of every known job, newest first."""
        with self._lock:
            return [
                job.to_status()
                for job in sorted(
                    self._jobs.values(), key=lambda j: j.id, reverse=True
                )
            ]

    def stats(self) -> Dict[str, Any]:
        """Lifetime counters plus the in-flight gauge (``/v1/healthz``)."""
        with self._lock:
            payload: Dict[str, Any] = dict(self._counters)
            payload["in_flight"] = len(self._inflight)
            payload["jobs"] = len(self._jobs)
            return payload

    # -- lifecycle ----------------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; ``wait=False`` abandons in-flight jobs.

        A no-wait shutdown detaches the workers from
        ``concurrent.futures``' atexit join so that hook cannot hold the
        process hostage until a running experiment finishes.  The worker
        threads themselves are non-daemon, so a caller that must exit
        with work still in flight (``repro serve`` on Ctrl-C) has to
        hard-exit after calling this.
        """
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            for worker in list(getattr(self._executor, "_threads", ())):
                _futures_thread._threads_queues.pop(worker, None)

    def __enter__(self) -> "ExperimentQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
