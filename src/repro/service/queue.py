"""Async job manager over the declarative experiment API.

:class:`ExperimentQueue` gives the service layer submit / status /
result / cancel semantics on top of :func:`repro.api.run`:

* jobs run on a bounded thread pool; each job executes through the exact
  same code path as a direct ``run(spec)`` call — the spec's executor
  backend still resolves to the campaign's chunked, crc32-seeded process
  pool — so queued results keep the library's parity guarantees
  (``rtol <= 1e-12`` against the pre-spec engines);
* identical in-flight experiments coalesce: a second submission whose
  spec has the same content fingerprint attaches to the computation
  already running instead of starting a new one (each submission keeps
  its own job id and status);
* an optional :class:`~repro.service.cache.ResultCache` short-circuits
  submissions whose fingerprint is already stored — the job is born
  ``done`` and marked ``cached`` — and absorbs fresh results for the
  next submission;
* an optional :class:`~repro.service.journal.JobJournal` makes the queue
  durable: every submission is journaled (fsynced) before dispatch and
  marked terminal when it settles, and :meth:`ExperimentQueue.recover`
  resubmits whatever a dead process left unfinished — completed work
  re-serves from the cache, so a ``kill -9`` costs at most the jobs that
  were mid-solve, re-executed;
* an optional per-job deadline (``job_timeout_s``) fails runaway jobs so
  one pathological spec cannot pin a worker forever, and
  :meth:`ExperimentQueue.drain` waits for in-flight work during a
  graceful shutdown.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import thread as _futures_thread
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import api
from ..api import ResultSet
from ..core.spec import ExperimentSpec, SpecError
from ..obs.trace import span
from .cache import ResultCache
from .journal import JobJournal

__all__ = ["ExperimentQueue", "Job", "JobError", "JobState"]


class JobError(KeyError):
    """Raised for unknown job ids and results requested too early."""


class JobState:
    """Lifecycle states of a job (plain strings, JSON-ready)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submission: identity, lifecycle and (eventually) its result."""

    id: str
    fingerprint: str
    kind: str
    state: str = JobState.QUEUED
    cached: bool = False
    coalesced: bool = False
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[ResultSet] = None
    #: WAL token of this submission (``None`` when the queue is not durable).
    journal_token: Optional[str] = None

    def to_status(self) -> Dict[str, Any]:
        """JSON-ready status view (no records — fetch the result for those)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "n_records": None if self.result is None else len(self.result),
        }


class ExperimentQueue:
    """Submit / status / result / cancel over a worker pool.

    ``workers`` bounds how many experiments compute concurrently in this
    process; within each experiment the spec's own execution backend
    still applies (a ``process``-backend spec fans out further through
    the campaign pool).
    """

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        runner: Callable[..., ResultSet] = api.run,
        journal: Optional[JobJournal] = None,
        job_timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if job_timeout_s is not None and job_timeout_s <= 0.0:
            raise ValueError("job_timeout_s must be positive when set")
        self.cache = cache
        self.journal = journal
        self.job_timeout_s = job_timeout_s
        self._runner = runner
        self._executor = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="repro-job"
        )
        # Re-entrant: Future.cancel() and add_done_callback() on a
        # completed future invoke the settle callback synchronously in
        # the calling thread, which may already hold this lock.
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._futures: Dict[str, Future] = {}          # job id -> shared future
        self._inflight: Dict[str, Future] = {}          # fingerprint -> future
        self._inflight_jobs: Dict[str, List[str]] = {}  # fingerprint -> job ids
        self._ids = itertools.count(1)
        self._timers: Dict[str, threading.Timer] = {}  # fingerprint -> deadline
        self._counters = {
            "submitted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "recovered": 0,
            "timeouts": 0,
        }

    # -- submission ---------------------------------------------------------------------

    def submit(self, spec: ExperimentSpec) -> Job:
        """Enqueue one experiment; returns its (snapshot) :class:`Job`.

        Resolution order: cache hit → born ``done``; identical in-flight
        fingerprint → attach to the running computation; otherwise a new
        computation starts on the pool.
        """
        spec = api.load_spec(spec)
        fingerprint = spec.fingerprint()
        with span("service.submit", kind=spec.kind, fingerprint=fingerprint):
            return self._submit(spec, fingerprint)

    def _submit(self, spec: ExperimentSpec, fingerprint: str) -> Job:
        # The cache read (disk I/O + ResultSet deserialisation) happens
        # outside the queue lock so concurrent submissions and status
        # polls never serialise behind it.  The benign race — another
        # submitter completing between this miss and the lock — resolves
        # to coalescing or a same-content recompute, never wrong data.
        hit = None if self.cache is None else self.cache.get(spec)
        with self._lock:
            job = Job(
                id=f"job-{next(self._ids):06d}",
                fingerprint=fingerprint,
                kind=spec.kind,
            )
            self._jobs[job.id] = job
            self._counters["submitted"] += 1
            # WAL semantics: the submission is durable *before* anything
            # observable happens, so a crash at any later point leaves a
            # journaled obligation that recovery will honour.
            if self.journal is not None:
                job.journal_token = self.journal.record_submitted(fingerprint, spec)

            if hit is not None:
                job.state = JobState.DONE
                job.cached = True
                job.result = hit
                job.finished_at = time.time()
                self._counters["cache_hits"] += 1
                self._counters["completed"] += 1
                self._journal_terminal(job)
                return self._snapshot(job)

            future = self._inflight.get(fingerprint)
            if future is not None:
                job.coalesced = True
                self._counters["coalesced"] += 1
                peers = self._inflight_jobs.get(fingerprint, [])
                if any(
                    self._jobs[peer].state == JobState.RUNNING for peer in peers
                ):
                    job.state = JobState.RUNNING
            else:
                future = self._executor.submit(self._compute, spec, fingerprint)
                self._inflight[fingerprint] = future
                self._inflight_jobs[fingerprint] = []
                if self.job_timeout_s is not None:
                    timer = threading.Timer(
                        self.job_timeout_s, self._expire, args=(fingerprint,)
                    )
                    timer.daemon = True
                    self._timers[fingerprint] = timer
                    timer.start()
            self._inflight_jobs[fingerprint].append(job.id)
            self._futures[job.id] = future
            future.add_done_callback(self._make_settler(job.id))
            return self._snapshot(job)

    def _compute(self, spec: ExperimentSpec, fingerprint: str) -> ResultSet:
        with self._lock:
            for job_id in list(self._inflight_jobs.get(fingerprint, [])):
                job = self._jobs.get(job_id)
                if job is not None and job.state == JobState.QUEUED:
                    job.state = JobState.RUNNING
        with span("service.compute", kind=spec.kind, fingerprint=fingerprint):
            result = self._runner(spec)
        # Partial results (failure rows under skip/retry policies) are not
        # cached: the fingerprint is failure-policy-neutral, so a cached
        # partial would be served to callers entitled to a complete one.
        if self.cache is not None and not getattr(result, "failures", None):
            try:
                self.cache.put(spec, result)
            except OSError:
                # A broken cache (disk full, directory removed) must not
                # discard a fully computed result — only the entry is lost.
                pass
        return result

    def _make_settler(self, job_id: str) -> Callable[[Future], None]:
        def settle(future: Future) -> None:
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state in JobState.TERMINAL:
                    return
                job.finished_at = time.time()
                if future.cancelled():
                    job.state = JobState.CANCELLED
                    self._counters["cancelled"] += 1
                else:
                    error = future.exception()
                    if error is not None:
                        job.state = JobState.FAILED
                        job.error = f"{type(error).__name__}: {error}"
                        self._counters["failed"] += 1
                    else:
                        job.state = JobState.DONE
                        job.result = future.result()
                        self._counters["completed"] += 1
                self._journal_terminal(job)
                self._release_inflight(job.fingerprint, job_id)

        return settle

    def _journal_terminal(self, job: Job) -> None:
        if self.journal is None or job.journal_token is None:
            return
        try:
            self.journal.record_terminal(job.journal_token, job.state, error=job.error)
        except OSError:
            # A failed terminal append only means the job replays (as a
            # cache hit) on the next restart; never fail the job over it.
            pass

    def _release_inflight(self, fingerprint: str, job_id: str) -> None:
        jobs = self._inflight_jobs.get(fingerprint)
        if jobs is None:
            return
        if job_id in jobs:
            jobs.remove(job_id)
        if not jobs:
            self._inflight.pop(fingerprint, None)
            self._inflight_jobs.pop(fingerprint, None)
            timer = self._timers.pop(fingerprint, None)
            if timer is not None:
                timer.cancel()

    def _expire(self, fingerprint: str) -> None:
        """Deadline callback: fail every submission of a runaway computation.

        The worker thread itself cannot be killed (CPython offers no safe
        way); the computation keeps running but its jobs turn ``failed``,
        its journal obligations settle, and its eventual result is
        discarded by the settle callback's terminal-state guard.
        """
        with self._lock:
            future = self._inflight.get(fingerprint)
            if future is None:
                return
            for job_id in list(self._inflight_jobs.get(fingerprint, [])):
                job = self._jobs.get(job_id)
                if job is None or job.state in JobState.TERMINAL:
                    continue
                job.state = JobState.FAILED
                job.error = f"deadline exceeded after {self.job_timeout_s:g} s"
                job.finished_at = time.time()
                self._counters["failed"] += 1
                self._counters["timeouts"] += 1
                self._journal_terminal(job)
                self._futures.pop(job_id, None)
            self._inflight.pop(fingerprint, None)
            self._inflight_jobs.pop(fingerprint, None)
            self._timers.pop(fingerprint, None)
            future.cancel()

    # -- queries ------------------------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job id {job_id!r}") from None

    def _snapshot(self, job: Job) -> Job:
        return Job(**{name: getattr(job, name) for name in job.__dataclass_fields__})

    def status(self, job_id: str) -> Dict[str, Any]:
        """JSON-ready status of one job (raises :class:`JobError` if unknown)."""
        with self._lock:
            return self._job(job_id).to_status()

    def result(self, job_id: str, timeout: Optional[float] = None) -> ResultSet:
        """The job's ResultSet, waiting up to ``timeout`` for completion.

        ``timeout=0`` polls; a job that failed re-raises its error as
        :class:`JobError`.
        """
        with self._lock:
            job = self._job(job_id)
            if job.state == JobState.DONE and job.result is not None:
                return job.result
            if job.state == JobState.FAILED:
                raise JobError(f"job {job_id} failed: {job.error}")
            if job.state == JobState.CANCELLED:
                raise JobError(f"job {job_id} was cancelled")
            future = self._futures.get(job_id)
        if future is None:
            raise JobError(f"job {job_id} has no pending computation")
        try:
            result = future.result(timeout=timeout)
        except CancelledError:
            raise JobError(f"job {job_id} was cancelled") from None
        except FutureTimeoutError:
            # Not the builtin TimeoutError before Python 3.11; re-raise so
            # "still computing" never masquerades as "computation failed".
            raise
        except Exception as exc:
            raise JobError(f"job {job_id} failed: {type(exc).__name__}: {exc}") from exc
        return result

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns whether the submission is cancelled.

        A job that shares its computation with other live submissions
        detaches without touching the shared future; the last attached
        submission also attempts to cancel the computation itself (which
        only succeeds while it is still queued on the pool).
        """
        with self._lock:
            job = self._job(job_id)
            if job.state in JobState.TERMINAL:
                return job.state == JobState.CANCELLED
            future = self._futures.get(job_id)
            peers = [
                peer
                for peer in self._inflight_jobs.get(job.fingerprint, [])
                if peer != job_id
            ]
            if peers:
                # Other live submissions share this computation: detach
                # this one without touching the shared future (possible
                # even while the computation runs).
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                self._counters["cancelled"] += 1
                self._journal_terminal(job)
                self._release_inflight(job.fingerprint, job_id)
                self._futures.pop(job_id, None)
                return True
            if job.state == JobState.RUNNING:
                return False
            if future is not None and future.cancel():
                # cancel() ran the settle callback synchronously (the
                # lock is re-entrant), which did the state bookkeeping.
                self._futures.pop(job_id, None)
                return True
            return False

    def jobs(self) -> List[Dict[str, Any]]:
        """Status views of every known job, newest first."""
        with self._lock:
            return [
                job.to_status()
                for job in sorted(
                    self._jobs.values(), key=lambda j: j.id, reverse=True
                )
            ]

    def stats(self) -> Dict[str, Any]:
        """Lifetime counters plus the in-flight gauge (``/v1/healthz``)."""
        with self._lock:
            payload: Dict[str, Any] = dict(self._counters)
            payload["in_flight"] = len(self._inflight)
            payload["jobs"] = len(self._jobs)
        if self.journal is not None:
            payload["journal"] = self.journal.stats_dict()
        return payload

    # -- durability ---------------------------------------------------------------------

    def recover(self) -> int:
        """Resubmit every journaled-but-unfinished job; returns how many.

        Called once at startup, before the HTTP listener opens.  Each
        outstanding WAL entry is resubmitted under a *fresh* token and
        only then marked ``recovered`` — a crash between the two steps
        merely replays the entry once more next restart, where the
        result cache (or in-flight coalescing) dedupes it.  Entries
        whose journaled spec no longer validates are marked
        ``unreplayable`` rather than wedging recovery forever.  Finishes
        with :meth:`JobJournal.compact` so the WAL stays bounded.
        """
        if self.journal is None:
            return 0
        recovered = 0
        for entry in self.journal.replay():
            try:
                spec = ExperimentSpec.from_dict(entry.spec)
            except SpecError as exc:
                self.journal.record_terminal(
                    entry.token, "unreplayable", error=str(exc)
                )
                continue
            self.submit(spec)
            self.journal.record_terminal(entry.token, "recovered")
            recovered += 1
        with self._lock:
            self._counters["recovered"] += recovered
        self.journal.compact()
        return recovered

    def drain(self, timeout_s: float, poll_s: float = 0.05) -> bool:
        """Wait up to ``timeout_s`` for in-flight work; True when idle.

        Polls rather than joining the pool so a graceful shutdown can
        give up after its budget: undrained jobs stay journaled, and the
        next start's :meth:`recover` re-executes them.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        while True:
            with self._lock:
                if not self._inflight:
                    return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)

    # -- lifecycle ----------------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; ``wait=False`` abandons in-flight jobs.

        A no-wait shutdown detaches the workers from
        ``concurrent.futures``' atexit join so that hook cannot hold the
        process hostage until a running experiment finishes.  The worker
        threads themselves are non-daemon, so a caller that must exit
        with work still in flight (``repro serve`` on Ctrl-C) has to
        hard-exit after calling this.
        """
        with self._lock:
            timers = list(self._timers.values())
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            for worker in list(getattr(self._executor, "_threads", ())):
                _futures_thread._threads_queues.pop(worker, None)

    def __enter__(self) -> "ExperimentQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
