"""HTTP experiment server (stdlib only).

:class:`ExperimentServer` exposes the declarative API over a JSON HTTP
interface built on :class:`http.server.ThreadingHTTPServer` — no new
dependencies:

==========================================  =============================================
route                                       behaviour
==========================================  =============================================
``POST /v1/experiments``                    body = ExperimentSpec JSON; submits to the
                                            queue, returns the job ticket (``201``, or
                                            ``200`` when served straight from cache)
``GET /v1/experiments/<id>``                job status (``404`` for unknown ids)
``GET /v1/experiments/<id>/result``         the ResultSet; ``?format=json|csv|text``
                                            (``202`` while pending, ``500`` on failure)
``DELETE /v1/experiments/<id>``             cancel a queued job
``GET /v1/experiments``                     every known job, newest first
``GET /v1/healthz``                         liveness + cumulative cache/queue statistics
                                            (restart-surviving, via the stats sidecar)
``GET /v1/metrics``                         Prometheus text exposition of the process
                                            metrics registry (solver, cache, queue,
                                            failure counters, latency histograms)
==========================================  =============================================

``GET .../result`` always serves the serialised twin of the ResultSet
(records + metadata, no typed payload), so responses are byte-identical
whether the job computed or hit the cache.  The trade-off: campaign
CSV/text use the generic record layout of the serialised form rather
than ``repro run``'s typed table rendering — the records themselves are
identical (the parity suite pins them at ``rtol <= 1e-12``).

Errors are JSON objects with an ``error`` key; invalid specs come back
as ``400`` with the one-line :class:`~repro.core.spec.SpecError` text.
The server binds to port 0 for an ephemeral port (the test suite's
mode); ``repro serve`` is the CLI front end.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..api import ResultSet, load_spec
from ..core.spec import SpecError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.trace import active_tracer
from ..testing import faults
from .cache import ResultCache
from .journal import JobJournal
from .queue import ExperimentQueue, JobError, JobState
from .sidecar import StatsSidecar, sidecar_path_for

__all__ = ["ExperimentServer", "RESULT_FORMATS"]

#: Renderings of ``GET /v1/experiments/<id>/result`` and their MIME types.
RESULT_FORMATS: Dict[str, Tuple[str, str]] = {
    "json": ("to_json", "application/json"),
    "csv": ("to_csv", "text/csv"),
    "text": ("to_text", "text/plain"),
}


def render_result(result: ResultSet, fmt: str) -> Tuple[str, str]:
    """The (body, content-type) of a ResultSet in one of the wire formats."""
    try:
        method, content_type = RESULT_FORMATS[fmt]
    except KeyError:
        raise SpecError(
            f"unknown result format {fmt!r}; available: {sorted(RESULT_FORMATS)}"
        ) from None
    return getattr(result, method)(), content_type


class _ExperimentHandler(BaseHTTPRequestHandler):
    """One request; the queue and cache hang off the server instance."""

    server: "_HTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            # Suffix the access-log line with the active trace/span ids
            # so a slow request can be looked up in the span trace
            # recorded by ``serve --trace``.
            ids = obs_trace.current_trace_ids()
            if ids is not None:
                trace_id, span_id = ids
                suffix = f" trace={trace_id}"
                if span_id is not None:
                    suffix += f" span={span_id}"
                format += suffix.replace("%", "%%")
            super().log_message(format, *args)

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        obs_metrics.registry().inc(
            "repro_http_requests_total", method=self.command, status=status
        )
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._send(status, json.dumps(payload, indent=2), "application/json")

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/"), query

    def _injected_drop(self) -> bool:
        """Fault hook: drop the connection without responding when told to.

        Inactive (one dict lookup on an unset env var) outside the fault
        harness.  Exercises the client's connection-error retry path
        exactly the way a mid-request crash would.
        """
        if faults.http_fault() == "drop":
            self.close_connection = True
            return True
        return False

    # -- verbs --------------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        if self._injected_drop():
            return
        path, _ = self._route()
        if path != "/v1/experiments":
            self._send_error(404, f"no POST route {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
            spec = load_spec(json.loads(body) if body else {})
        except (SpecError, ValueError, UnicodeDecodeError) as exc:
            self._send_error(400, f"invalid experiment spec: {exc}")
            return
        job = self.server.queue.submit(spec)
        self._send_json(200 if job.cached else 201, job.to_status())

    def do_GET(self) -> None:  # noqa: N802
        if self._injected_drop():
            return
        path, query = self._route()
        if path == "/v1/healthz":
            self._send_json(200, self.server.health())
            return
        if path == "/v1/metrics":
            self._send(
                200, self.server.metrics_text(), "text/plain; version=0.0.4"
            )
            return
        if path == "/v1/experiments":
            self._send_json(200, {"jobs": self.server.queue.jobs()})
            return
        parts = path.split("/")
        # /v1/experiments/<id> and /v1/experiments/<id>/result
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "experiments":
            job_id = parts[3]
            if len(parts) == 4:
                self._job_status(job_id)
                return
            if len(parts) == 5 and parts[4] == "result":
                self._job_result(job_id, query.get("format", "json"))
                return
        self._send_error(404, f"no GET route {path!r}")

    def do_DELETE(self) -> None:  # noqa: N802
        if self._injected_drop():
            return
        path, _ = self._route()
        parts = path.split("/")
        if len(parts) == 4 and parts[1] == "v1" and parts[2] == "experiments":
            try:
                cancelled = self.server.queue.cancel(parts[3])
            except JobError as exc:
                self._send_error(404, str(exc))
                return
            status = self.server.queue.status(parts[3])
            status["cancelled"] = cancelled
            self._send_json(200 if cancelled else 409, status)
            return
        self._send_error(404, f"no DELETE route {path!r}")

    # -- job views ----------------------------------------------------------------------

    def _job_status(self, job_id: str) -> None:
        try:
            self._send_json(200, self.server.queue.status(job_id))
        except JobError as exc:
            self._send_error(404, str(exc))

    def _job_result(self, job_id: str, fmt: str) -> None:
        queue = self.server.queue
        try:
            status = queue.status(job_id)
        except JobError as exc:
            self._send_error(404, str(exc))
            return
        state = status["state"]
        if state in (JobState.QUEUED, JobState.RUNNING):
            self._send_json(202, status)
            return
        if state in (JobState.FAILED, JobState.CANCELLED):
            self._send_json(500 if state == JobState.FAILED else 409, status)
            return
        result = queue.result(job_id, timeout=0)
        # Serve the serialised twin whether the job computed or hit the
        # cache, so identical experiments return identical bytes in every
        # format regardless of cache state.
        if result.payload is not None:
            result = ResultSet.from_dict(result.to_dict())
        try:
            body, content_type = render_result(result, fmt)
        except SpecError as exc:
            self._send_error(400, str(exc))
            return
        self._send(200, body, content_type)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    queue: ExperimentQueue
    verbose: bool
    sidecar: Optional[StatsSidecar] = None
    started_at: float = 0.0

    def _cumulative_stats(
        self,
    ) -> Tuple[Optional[Dict[str, Any]], Dict[str, Any]]:
        """(cache, queue) stats with the persisted baseline layered in."""
        cache = self.queue.cache
        cache_stats = None if cache is None else cache.stats_dict()
        queue_stats = self.queue.stats()
        if self.sidecar is not None:
            if cache_stats is not None:
                cache_stats = self.sidecar.cumulative_cache(cache_stats)
            queue_stats = self.sidecar.cumulative_queue(queue_stats)
        return cache_stats, queue_stats

    def health(self) -> Dict[str, Any]:
        cache_stats, queue_stats = self._cumulative_stats()
        if self.sidecar is not None:
            # Every health check persists the totals, so liveness probes
            # double as the sidecar's heartbeat and a kill -9 loses at
            # most the counters since the last probe.
            self.sidecar.persist(cache_stats, queue_stats)
        tracer = active_tracer()
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "cache": cache_stats,
            "queue": queue_stats,
            "observability": {
                "tracing": tracer is not None,
                "trace_path": None if tracer is None else str(tracer.path),
                "stats_sidecar": (
                    None if self.sidecar is None else str(self.sidecar.path)
                ),
            },
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the process metrics registry.

        Cache and queue totals are absorbed at scrape time so the
        endpoint reflects the live (sidecar-cumulative) counters even if
        no experiment ran since the registry was created.
        """
        cache_stats, queue_stats = self._cumulative_stats()
        if cache_stats is not None:
            obs_metrics.absorb_cache_stats(cache_stats)
        obs_metrics.absorb_queue_stats(queue_stats)
        return obs_metrics.registry().to_prometheus()


class ExperimentServer:
    """The assembled service: cache + queue + threading HTTP server.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``).  ``cache_dir=None`` disables caching entirely — every
    submission computes.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        max_entries: int = 256,
        workers: int = 2,
        verbose: bool = False,
        journal_path: Optional[Union[str, os.PathLike]] = None,
        job_timeout_s: Optional[float] = None,
    ) -> None:
        self.cache = None if cache_dir is None else ResultCache(cache_dir, max_entries)
        # A cached server defaults to a durable one: the journal lives
        # beside the cache entries (``.jsonl`` is invisible to the
        # cache's ``*.json`` glob), so kill -9 recovery needs no extra
        # configuration.  An explicitly passed path wins; a cacheless
        # server stays non-durable unless a path is given.
        if journal_path is None and cache_dir is not None:
            journal_path = Path(cache_dir) / "journal.jsonl"
        self.journal = None if journal_path is None else JobJournal(journal_path)
        self.queue = ExperimentQueue(
            workers=workers,
            cache=self.cache,
            journal=self.journal,
            job_timeout_s=job_timeout_s,
        )
        #: Jobs replayed from the journal at construction (before the
        #: listener opens, so recovered work is visible to the first poll).
        self.recovered = self.queue.recover()
        #: Cumulative-stats sidecar: lives next to the cache dir so
        #: /v1/healthz counters survive restarts (None when cacheless).
        self.sidecar = (
            None if cache_dir is None else StatsSidecar(sidecar_path_for(cache_dir))
        )
        self._http = _HTTPServer((host, port), _ExperimentHandler)
        self._http.queue = self.queue
        self._http.verbose = verbose
        self._http.sidecar = self.sidecar
        self._http.started_at = time.time()
        self._thread: Optional[threading.Thread] = None
        self._served = False

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ExperimentServer":
        """Serve on a daemon background thread; returns self (chainable)."""
        if self._thread is not None:
            raise RuntimeError("server is already running")
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-http", daemon=True
        )
        self._served = True
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` mode)."""
        self._served = True
        self._http.serve_forever()

    def stop_serving(self) -> None:
        """Close the HTTP listener only; in-flight jobs keep computing.

        First phase of a graceful shutdown: no new submissions can
        arrive, but :meth:`drain` can still wait for the queue to empty.
        Idempotent, and safe before :meth:`shutdown`.
        """
        if self._served:
            # socketserver's shutdown event starts unset; calling
            # shutdown() on a server that never served would block.
            self._http.shutdown()
            self._served = False
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def drain(self, timeout_s: float) -> bool:
        """Wait up to ``timeout_s`` for in-flight jobs; True when idle."""
        return self.queue.drain(timeout_s)

    def shutdown(self) -> None:
        self.stop_serving()
        if self.sidecar is not None:
            self.sidecar.persist(*self._http._cumulative_stats())
        self.queue.shutdown(wait=False)

    def __enter__(self) -> "ExperimentServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
