"""Stdlib-only sampling profiler with folded-stack (flamegraph) output.

A background thread walks ``sys._current_frames()`` at ~101 Hz (a prime
rate, so sampling cannot phase-lock with millisecond-periodic work) and
aggregates each thread's stack into the collapsed/folded format that
``flamegraph.pl``, speedscope and friends consume directly::

    phase:solver.dc;campaign.run_chunk;dc.dc_sweep;dc._newton_solve 412

The first frame of every folded stack is the sampled thread's innermost
*open span* (``phase:<name>``, or ``phase:(no-span)``), read from the
per-thread span stacks kept by :mod:`repro.obs.trace` — that is what
lets ``repro report --flame`` cross-check hot frames against span
attribution.  While the profiler is on, span stacks are maintained even
with tracing off (:func:`repro.obs.trace.set_stack_tracking`), so
``--profile`` alone is enough for phase-attributed samples.

Cross-process collection mirrors tracing's worker protocol: campaign
pool workers start their own profiler via the same pool-initializer
hook (:func:`enable_worker_profiling`), each periodically rewriting its
*aggregate* to ``<path>.workers/profile-<pid>.folded`` (atomic replace,
so a torn read is impossible and a killed worker leaves its last whole
aggregate).  The parent sums every worker file into its own samples
when profiling is disabled.  Unlike the trace protocol these files are
cumulative aggregates, not append logs — they are read once, at the
end, never drained incrementally.

Pure stdlib; sampling overhead is a few tens of microseconds per tick
against a ~9.9 ms period (the obs bench gates it at <=5% on the full
ops DOE).
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.results import atomic_write_text
from . import trace as _trace

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
    "active_profiler",
    "disable_profiling",
    "enable_profiling",
    "enable_worker_profiling",
    "merge_folded",
    "phase_totals",
    "read_folded",
    "top_frames",
    "top_stacks",
]

#: Default sampling rate.  Prime, per flamegraph lore: a 100 Hz sampler
#: phase-locks with anything periodic at 10 ms and silently aliases.
DEFAULT_HZ = 101.0

#: Maximum frames walked per sampled stack (runaway-recursion guard).
MAX_STACK_DEPTH = 128

_PHASE_PREFIX = "phase:"
_NO_PHASE = "(no-span)"


def _frame_label(frame: Any) -> str:
    """``module.function`` label for one frame (file stem, not path)."""
    code = frame.f_code
    stem = Path(code.co_filename).stem or "?"
    return f"{stem}.{code.co_name}"


class SamplingProfiler:
    """Background-thread sampler aggregating folded stacks in memory.

    ``worker_dir`` set → parent mode: :meth:`stop` additionally sums
    every ``profile-*.folded`` aggregate found there.  ``flush_every_s``
    > 0 → the sampling loop periodically rewrites ``path`` with the
    current aggregate (worker mode relies on this, since pool children
    get no orderly shutdown hook).
    """

    def __init__(
        self,
        path: Union[str, Path],
        hz: float = DEFAULT_HZ,
        worker_dir: Optional[Union[str, Path]] = None,
        flush_every_s: float = 0.5,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.path = Path(path)
        self.interval_s = 1.0 / float(hz)
        self.worker_dir = Path(worker_dir) if worker_dir is not None else None
        self.flush_every_s = float(flush_every_s)
        #: folded stack -> number of samples observed in *this* process.
        self.samples: Counter = Counter()
        #: sampling-loop iterations that captured at least one stack.
        self.sample_ticks = 0
        #: worker aggregate files merged by the final :meth:`stop`.
        self.merged_workers = 0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        _trace.set_stack_tracking(True)
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling, merge worker aggregates, write the final file."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)
            self._thread = None
            _trace.set_stack_tracking(False)
        self.merge_workers()
        self.flush()
        return self

    # -- sampling --------------------------------------------------------

    def _loop(self) -> None:
        next_flush = (
            time.monotonic() + self.flush_every_s if self.flush_every_s > 0 else None
        )
        while not self._stop_event.wait(self.interval_s):
            self._sample_once()
            if next_flush is not None and time.monotonic() >= next_flush:
                self.flush()
                next_flush = time.monotonic() + self.flush_every_s

    def _sample_once(self) -> int:
        own = threading.get_ident()
        span_stacks = _trace.active_span_stacks()
        frames = sys._current_frames()
        captured = 0
        for tid, frame in frames.items():
            if tid == own:
                continue
            parts: List[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                parts.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not parts:
                continue
            parts.reverse()
            open_spans = span_stacks.get(tid)
            phase = open_spans[-1] if open_spans else _NO_PHASE
            folded = ";".join([_PHASE_PREFIX + phase] + parts)
            with self._lock:
                self.samples[folded] += 1
            captured += 1
        if captured:
            self.sample_ticks += 1
        return captured

    # -- output ----------------------------------------------------------

    def folded(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.samples)

    def flush(self) -> None:
        """Atomically rewrite ``path`` with the current aggregate."""
        with self._lock:
            items = sorted(self.samples.items(), key=lambda kv: (-kv[1], kv[0]))
        text = "".join(f"{stack} {count}\n" for stack, count in items)
        try:
            atomic_write_text(self.path, text)
        except OSError:
            pass

    def merge_workers(self) -> int:
        """Sum every worker aggregate into this profiler's samples.

        Each worker file is a cumulative aggregate, so each is consumed
        exactly once; records merged are returned.
        """
        if self.worker_dir is None:
            return 0
        merged = 0
        try:
            paths = sorted(self.worker_dir.glob("profile-*.folded"))
        except OSError:
            return 0
        for worker_path in paths:
            worker_samples = read_folded(worker_path)
            if not worker_samples:
                continue
            with self._lock:
                self.samples.update(worker_samples)
            merged += sum(worker_samples.values())
            self.merged_workers += 1
            try:
                worker_path.unlink()
            except OSError:
                pass
        try:
            self.worker_dir.rmdir()
        except OSError:
            pass
        return merged


# ---------------------------------------------------------------------------
# Module-level switch (default off), mirroring trace.py
# ---------------------------------------------------------------------------

_active: Optional[SamplingProfiler] = None


def active_profiler() -> Optional[SamplingProfiler]:
    return _active


def enable_profiling(path: Union[str, Path], hz: float = DEFAULT_HZ) -> SamplingProfiler:
    """Start sampling this process to ``path`` (folded/collapsed format).

    A sibling ``<path>.workers/`` directory is prepared so campaign pool
    workers can contribute their own samples; stale worker aggregates
    from an earlier run are removed first.
    """
    global _active
    if _active is not None:
        disable_profiling()
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    worker_dir = target.parent / (target.name + ".workers")
    worker_dir.mkdir(parents=True, exist_ok=True)
    for stale in worker_dir.glob("profile-*.folded"):
        try:
            stale.unlink()
        except OSError:
            pass
    _active = SamplingProfiler(target, hz=hz, worker_dir=worker_dir)
    _active.start()
    return _active


def disable_profiling() -> Optional[SamplingProfiler]:
    """Stop sampling; merges worker aggregates and writes the final file."""
    global _active
    profiler = _active
    _active = None
    if profiler is not None:
        profiler.stop()
    return profiler


def enable_worker_profiling(
    worker_dir: Union[str, Path], hz: float = DEFAULT_HZ
) -> SamplingProfiler:
    """Start this pool worker's own sampler under the parent's worker dir.

    Called from the campaign pool initializer (the same hook worker
    tracing uses).  The worker keeps rewriting its aggregate every flush
    interval because forked children get no reliable atexit; the parent
    reads whatever whole aggregate survived.  atexit is still registered
    for the start methods that do run it.
    """
    global _active
    target = Path(worker_dir) / f"profile-{os.getpid()}.folded"
    profiler = SamplingProfiler(target, hz=hz, worker_dir=None)
    _active = profiler.start()
    atexit.register(profiler.stop)
    return profiler


def _clear_inherited_profiler() -> None:
    """Drop a profiler object inherited across ``fork`` without stopping it.

    The parent's sampling thread did not survive the fork; the child
    must simply forget the object (stopping it would rewrite the
    parent's output file from a stale copy).
    """
    global _active
    _active = None


# ---------------------------------------------------------------------------
# Folded-file helpers
# ---------------------------------------------------------------------------


def read_folded(path: Union[str, Path]) -> Dict[str, int]:
    """Parse a folded-stacks file; unparsable lines are skipped."""
    samples: Dict[str, int] = {}
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return samples
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            continue
        try:
            samples[stack] = samples.get(stack, 0) + int(count)
        except ValueError:
            continue
    return samples


def merge_folded(parts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Sum several folded aggregates (fixed frame labels make this exact)."""
    total: Counter = Counter()
    for part in parts:
        total.update(part)
    return dict(total)


def phase_totals(samples: Dict[str, int]) -> Dict[str, int]:
    """Samples per ``phase:`` root, descending."""
    totals: Counter = Counter()
    for stack, count in samples.items():
        root = stack.split(";", 1)[0]
        phase = root[len(_PHASE_PREFIX):] if root.startswith(_PHASE_PREFIX) else _NO_PHASE
        totals[phase] += count
    return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))


def top_frames(samples: Dict[str, int], n: int = 15) -> List[Tuple[str, int]]:
    """The hottest *leaf* frames (where samples actually landed)."""
    leaves: Counter = Counter()
    for stack, count in samples.items():
        frames = stack.split(";")
        leaf = frames[-1]
        if leaf.startswith(_PHASE_PREFIX):
            continue
        leaves[leaf] += count
    return sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def top_stacks(samples: Dict[str, int], n: int = 10) -> List[Tuple[str, int]]:
    """The hottest whole folded stacks, descending."""
    return sorted(samples.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
