"""Structured span tracing with JSONL emission and Chrome-trace export.

Usage::

    from repro.obs.trace import enable_tracing, span

    enable_tracing("campaign-store/trace.jsonl")
    with span("campaign.chunk", item="write/64"):
        ...

Spans are complete events: one JSON object per line is appended when the
span *closes* (``ph: "X"`` with epoch-microsecond ``ts`` and
perf-counter ``dur``), so a crash loses at most the open spans.  Tracing
is **off by default**: ``span()`` then returns a shared no-op singleton
whose enter/exit cost is two attribute lookups, and no file is touched.

Cross-process collection mirrors the job journal's torn-tail tolerance:
pool workers write ``<trace>.workers/trace-<pid>.jsonl``; the parent
drains each worker file from a remembered byte offset up to the last
complete newline on every chunk commit (and once more on close), so a
worker killed mid-write never corrupts the merged trace — the torn tail
is simply left unconsumed and unparsable lines are counted and skipped.

``to_chrome_trace()`` converts the records to the Chrome trace-event
JSON that ``chrome://tracing`` and Perfetto load directly.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CAMPAIGN_PHASES",
    "Span",
    "Tracer",
    "active_span_stacks",
    "active_tracer",
    "campaign_attribution",
    "current_trace_ids",
    "disable_tracing",
    "enable_tracing",
    "enable_worker_tracing",
    "read_trace",
    "set_stack_tracking",
    "span",
    "to_chrome_trace",
]

#: Span names whose union is the "accounted-for" share of a campaign run
#: (used by ``repro report`` and the obs bench's ≥95% attribution gate).
CAMPAIGN_PHASES = frozenset(
    {
        "campaign.prepare",
        "campaign.joint_solve",
        "campaign.commit",
        "campaign.pool",
        "campaign.chunk",
        "item.prepare",
        "item.measure",
    }
)


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()

# ---------------------------------------------------------------------------
# Per-thread open-span stacks
#
# Keyed by thread ident so a *different* thread (the sampling profiler)
# can ask "what phase is thread T inside right now".  All mutation is a
# plain list append/pop under the GIL; readers snapshot with tuple().
# ---------------------------------------------------------------------------

_thread_stacks: Dict[int, List[Any]] = {}

#: When True, ``span()`` keeps the per-thread stacks populated even with
#: tracing disabled (set by the sampling profiler, which needs phase
#: attribution without paying for JSONL emission).
_stack_tracking = False


def _push_span(span_obj: Any) -> Optional[Any]:
    """Push an entered span; returns the previous top (the parent)."""
    tid = threading.get_ident()
    stack = _thread_stacks.get(tid)
    if stack is None:
        stack = _thread_stacks[tid] = []
    parent = stack[-1] if stack else None
    stack.append(span_obj)
    return parent


def _pop_span() -> None:
    tid = threading.get_ident()
    stack = _thread_stacks.get(tid)
    if stack:
        stack.pop()
        if not stack:
            _thread_stacks.pop(tid, None)


def set_stack_tracking(enabled: bool) -> None:
    """Keep span stacks live while tracing is off (profiler support)."""
    global _stack_tracking
    _stack_tracking = bool(enabled)


def active_span_stacks() -> Dict[int, Tuple[str, ...]]:
    """Snapshot of every thread's open-span names, outermost first."""
    out: Dict[int, Tuple[str, ...]] = {}
    for tid, stack in list(_thread_stacks.items()):
        names = tuple(getattr(s, "name", "?") for s in tuple(stack))
        if names:
            out[tid] = names
    return out


def current_trace_ids() -> Optional[Tuple[str, Optional[int]]]:
    """``(trace_id, innermost span id)`` when tracing is on, else None.

    The span id is None when the calling thread is outside any span.
    Used to correlate server access-log lines and journal records with
    the trace file.
    """
    tracer = _active
    if tracer is None:
        return None
    stack = _thread_stacks.get(threading.get_ident())
    sid: Optional[int] = None
    if stack:
        sid = getattr(stack[-1], "sid", None)
    return tracer.trace_id, sid


class _StackSpan:
    """Stack-only span: feeds phase attribution, emits nothing.

    Returned by :func:`span` while the sampling profiler is on but
    tracing is off, so profiler samples still carry a ``phase:`` root.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_StackSpan":
        _push_span(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _pop_span()
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


class Span:
    """A live span; records itself to the tracer when it exits."""

    __slots__ = ("_tracer", "name", "args", "depth", "sid", "_parent_sid", "_ts_us", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.depth = 0
        self.sid = 0
        self._parent_sid: Optional[int] = None
        self._ts_us = 0
        self._start_ns = 0

    def __enter__(self) -> "Span":
        tls = self._tracer._tls
        self.depth = getattr(tls, "depth", 0)
        tls.depth = self.depth + 1
        self.sid = next(self._tracer._span_ids)
        parent = _push_span(self)
        self._parent_sid = getattr(parent, "sid", None)
        self._ts_us = time.time_ns() // 1000
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        dur_us = (time.perf_counter_ns() - self._start_ns) // 1000
        _pop_span()
        tls = self._tracer._tls
        tls.depth = max(0, getattr(tls, "depth", 1) - 1)
        record: Dict[str, Any] = {
            "name": self.name,
            "ph": "X",
            "ts": self._ts_us,
            "dur": dur_us,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "depth": self.depth,
            "id": self.sid,
        }
        if self._parent_sid is not None:
            record["parent"] = self._parent_sid
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.args:
            record["args"] = self.args
        self._tracer._emit(record)
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach extra key/values to the span record (merged into args)."""
        self.args.update(attrs)


class Tracer:
    """Appends span records to one JSONL file; optionally merges workers."""

    def __init__(
        self,
        path: Union[str, Path],
        worker_dir: Optional[Path] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.worker_dir = worker_dir
        #: Shared by the parent tracer and its pool workers, so every
        #: record (and every correlated log/journal line) names one run.
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.skipped_lines = 0
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._span_ids = itertools.count(1)
        self._offsets: Dict[Path, int] = {}

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, dict(attrs))

    def _emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        # Open-per-append, like the journal: no descriptor to leak across
        # fork, and each record is one atomic-enough write.
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    # -- cross-process collection ---------------------------------------

    def merge_workers(self) -> int:
        """Drain complete lines from every worker file into the main trace.

        Returns the number of records merged.  Safe to call while workers
        are still writing: each file is consumed from a remembered byte
        offset up to its last newline, so a torn tail is left for the
        next merge and a record is never split.
        """
        if self.worker_dir is None:
            return 0
        try:
            paths = sorted(self.worker_dir.glob("trace-*.jsonl"))
        except OSError:
            return 0
        return sum(self._drain(path) for path in paths)

    def _drain(self, worker_path: Path) -> int:
        offset = self._offsets.get(worker_path, 0)
        try:
            with open(worker_path, "rb") as fh:
                fh.seek(offset)
                blob = fh.read()
        except OSError:
            return 0
        end = blob.rfind(b"\n")
        if end < 0:
            return 0
        good: List[str] = []
        for raw in blob[: end + 1].splitlines():
            if not raw.strip():
                continue
            try:
                json.loads(raw)
            except ValueError:
                self.skipped_lines += 1
                continue
            good.append(raw.decode("utf-8"))
        self._offsets[worker_path] = offset + end + 1
        if good:
            with self._lock:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write("\n".join(good) + "\n")
        return len(good)

    def close(self) -> None:
        """Final worker merge, then remove fully-drained worker files."""
        if self.worker_dir is None:
            return
        self.merge_workers()
        try:
            for worker_path in self.worker_dir.glob("trace-*.jsonl"):
                try:
                    if worker_path.stat().st_size <= self._offsets.get(worker_path, 0):
                        worker_path.unlink()
                except OSError:
                    pass
            self.worker_dir.rmdir()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Module-level switch (default off)
# ---------------------------------------------------------------------------

_active: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    return _active


def span(name: str, **attrs: Any) -> Union[Span, "_StackSpan", _NullSpan]:
    """A span if tracing is enabled, else the shared no-op singleton.

    While the sampling profiler is on (and tracing off), a stack-only
    span is returned instead so samples keep their phase attribution.
    """
    tracer = _active
    if tracer is None:
        if _stack_tracking:
            return _StackSpan(name)
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def enable_tracing(path: Union[str, Path]) -> Tracer:
    """Start tracing to ``path`` (truncates it) and return the tracer.

    A sibling ``<path>.workers/`` directory is prepared for pool workers;
    stale worker files from an earlier run are removed so they cannot be
    re-merged.
    """
    global _active
    if _active is not None:
        disable_tracing()
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    worker_dir = target.parent / (target.name + ".workers")
    worker_dir.mkdir(parents=True, exist_ok=True)
    for stale in worker_dir.glob("trace-*.jsonl"):
        try:
            stale.unlink()
        except OSError:
            pass
    target.write_text("", encoding="utf-8")
    _active = Tracer(target, worker_dir=worker_dir)
    return _active


def enable_worker_tracing(worker_dir: Union[str, Path]) -> Tracer:
    """Re-point this process's tracer at ``worker_dir/trace-<pid>.jsonl``.

    Called from the pool-worker initializer: a forked child inherits the
    parent's tracer object, but two processes appending to one file would
    interleave torn records — so each worker gets its own file that the
    parent merges on chunk commit.
    """
    global _active
    inherited = _active
    target = Path(worker_dir) / f"trace-{os.getpid()}.jsonl"
    _active = Tracer(
        target,
        worker_dir=None,
        trace_id=inherited.trace_id if inherited is not None else None,
    )
    return _active


def _clear_inherited_tracer() -> None:
    """Drop a tracer object inherited across ``fork`` without closing it.

    Pool-worker initializers call this when the parent traced to a
    location the worker must not touch (or did not trace at all): the
    parent's tracer keeps owning its file; the child simply stops
    emitting.
    """
    global _active
    _active = None


def disable_tracing() -> Optional[Tracer]:
    """Stop tracing; merges any remaining worker records first."""
    global _active
    tracer = _active
    _active = None
    if tracer is not None:
        tracer.close()
    return tracer


# ---------------------------------------------------------------------------
# Reading and exporting
# ---------------------------------------------------------------------------


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load span records from a trace file, skipping torn/corrupt lines."""
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return []
    return records


def to_chrome_trace(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert span records to Chrome trace-event JSON (chrome://tracing)."""
    events: List[Dict[str, Any]] = []
    for record in records:
        event: Dict[str, Any] = {
            "name": record.get("name", "?"),
            "ph": record.get("ph", "X"),
            "ts": record.get("ts", 0),
            "dur": record.get("dur", 0),
            "pid": record.get("pid", 0),
            "tid": record.get("tid", 0),
            "cat": "repro",
        }
        if record.get("args"):
            event["args"] = record["args"]
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _union_length_us(intervals: List[Tuple[int, int]]) -> int:
    if not intervals:
        return 0
    intervals.sort()
    total = 0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    return total + (current_end - current_start)


def campaign_attribution(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """How much of the campaign wall time the named phases account for.

    For every ``campaign.run`` span, clips same-process phase spans
    (:data:`CAMPAIGN_PHASES`) to the run window and measures their
    interval *union*, so nested spans (a commit inside a joint solve)
    are never double-counted.
    """
    runs = [r for r in records if r.get("name") == "campaign.run"]
    total_us = 0
    attributed_us = 0
    for run in runs:
        start = int(run.get("ts", 0))
        end = start + int(run.get("dur", 0))
        pid = run.get("pid")
        total_us += end - start
        intervals: List[Tuple[int, int]] = []
        for record in records:
            if record.get("name") not in CAMPAIGN_PHASES or record.get("pid") != pid:
                continue
            s = max(int(record.get("ts", 0)), start)
            e = min(int(record.get("ts", 0)) + int(record.get("dur", 0)), end)
            if e > s:
                intervals.append((s, e))
        attributed_us += _union_length_us(intervals)
    coverage = 100.0 * attributed_us / total_us if total_us else 0.0
    return {
        "campaign_runs": len(runs),
        "campaign_wall_s": total_us / 1e6,
        "attributed_wall_s": attributed_us / 1e6,
        "coverage_percent": coverage,
    }
