"""``repro top``: a live terminal dashboard over the service endpoints.

Polls a running experiment server's ``/v1/metrics`` (Prometheus text)
and ``/v1/healthz`` (JSON) and renders one compact frame per interval:
queue depth and job totals, cache hit rate, solver throughput (counter
deltas between polls), failure classes, and p50/p99 item latency read
straight out of the ``repro_item_wall_seconds`` histogram buckets via
the shared :func:`~repro.obs.metrics.histogram_quantile` helper — the
same math ``repro report`` uses, so the dashboard and the post-mortem
report can never disagree about what "p99" means.

Everything is stdlib (``urllib``), and rendering is split from polling:
:func:`parse_prometheus_text` and :func:`render_frame` are pure
functions the test suite drives with canned text, while :func:`run_top`
owns the network loop and the screen.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .metrics import histogram_quantile

__all__ = [
    "DashboardError",
    "fetch_health",
    "fetch_metrics",
    "parse_prometheus_text",
    "render_frame",
    "run_top",
]

#: (name, sorted (label, value) tuple) — same series identity the
#: registry uses, minus the histogram's ``le`` label.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Counters whose poll-to-poll delta is the "solver throughput" row.
SOLVER_RATE_METRICS = (
    ("repro_solver_sparse_solves_total", "sparse solves"),
    ("repro_solver_dense_solves_total", "dense solves"),
    ("repro_solver_factorizations_total", "factorizations"),
    ("repro_items_total", "items"),
)


class DashboardError(RuntimeError):
    """The server could not be polled (connection refused, bad body, ...)."""


def _parse_labels(text: str) -> Dict[str, str]:
    """Parse ``a="x",b="y"`` (the inside of a label block)."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {text[eq:]!r}")
        j = eq + 2
        value: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                j += 1
                value.append({"n": "\n", "\\": "\\", '"': '"'}.get(text[j], text[j]))
            else:
                value.append(text[j])
            j += 1
        labels[name] = "".join(value)
        i = j + 1
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Parse Prometheus 0.0.4 text into samples and assembled histograms.

    Returns ``{"samples": {(name, labels): value}, "histograms":
    {(name, labels): {"buckets": [...], "counts": [...], "count": n,
    "sum": s}}}`` where histogram bucket series (``_bucket`` + ``le``)
    are folded back into cumulative bucket arrays sorted by bound.
    Unparsable lines are skipped — a dashboard must survive a metric it
    does not know.
    """
    samples: Dict[SeriesKey, float] = {}
    raw_buckets: Dict[SeriesKey, List[Tuple[float, float]]] = {}
    histograms: Dict[SeriesKey, Dict[str, Any]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name = line[: line.index("{")]
                label_text = line[line.index("{") + 1 : line.rindex("}")]
                labels = _parse_labels(label_text) if label_text else {}
                value = float(line[line.rindex("}") + 1 :].strip())
            else:
                name, value_text = line.split(None, 1)
                labels = {}
                value = float(value_text)
        except (ValueError, IndexError):
            continue
        if name.endswith("_bucket") and "le" in labels:
            le = labels.pop("le")
            bound = float("inf") if le in ("+Inf", "inf") else float(le)
            key = (name[: -len("_bucket")], tuple(sorted(labels.items())))
            raw_buckets.setdefault(key, []).append((bound, value))
            continue
        samples[(name, tuple(sorted(labels.items())))] = value
    for key, pairs in raw_buckets.items():
        pairs.sort(key=lambda bv: bv[0])
        finite = [(b, c) for b, c in pairs if b != float("inf")]
        name, labels = key
        total = samples.get((name + "_count", labels))
        if total is None:
            total = pairs[-1][1] if pairs else 0.0
        histograms[key] = {
            "buckets": [b for b, _ in finite],
            "counts": [int(c) for _, c in finite],
            "count": int(total),
            "sum": samples.get((name + "_sum", labels), 0.0),
        }
    return {"samples": samples, "histograms": histograms}


def _sum_by_name(samples: Mapping[SeriesKey, float], name: str) -> float:
    return sum(v for (n, _), v in samples.items() if n == name)


def _by_label(
    samples: Mapping[SeriesKey, float], name: str, label: str
) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for (n, labels), value in samples.items():
        if n != name:
            continue
        key = dict(labels).get(label, "?")
        out[key] = out.get(key, 0.0) + value
    return out


def _merged_histogram(
    histograms: Mapping[SeriesKey, Dict[str, Any]], name: str
) -> Optional[Dict[str, Any]]:
    """Sum a histogram's label series (fixed buckets make this exact)."""
    merged: Optional[Dict[str, Any]] = None
    for (n, _), hist in histograms.items():
        if n != name:
            continue
        if merged is None:
            merged = {
                "buckets": list(hist["buckets"]),
                "counts": list(hist["counts"]),
                "count": hist["count"],
                "sum": hist["sum"],
            }
        elif merged["buckets"] == hist["buckets"]:
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], hist["counts"])
            ]
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
    return merged


# ---------------------------------------------------------------------------
# Polling
# ---------------------------------------------------------------------------


def _get(url: str, timeout_s: float) -> bytes:
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            return response.read()
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise DashboardError(f"cannot poll {url}: {exc}") from None


def fetch_metrics(base_url: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    text = _get(base_url.rstrip("/") + "/v1/metrics", timeout_s).decode("utf-8")
    return parse_prometheus_text(text)


def fetch_health(base_url: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    body = _get(base_url.rstrip("/") + "/v1/healthz", timeout_s)
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise DashboardError(f"healthz returned invalid JSON: {exc}") from None


# ---------------------------------------------------------------------------
# Rendering (pure)
# ---------------------------------------------------------------------------


def _fmt_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "    -"
    if seconds < 1.0:
        return f"{seconds * 1e3:5.1f}ms"
    return f"{seconds:5.2f}s"


def render_frame(
    metrics: Mapping[str, Any],
    health: Mapping[str, Any],
    prev_samples: Optional[Mapping[SeriesKey, float]] = None,
    dt_s: Optional[float] = None,
) -> str:
    """One dashboard frame from a metrics parse and a health document.

    ``prev_samples``/``dt_s`` (the previous poll) turn monotonic
    counters into rates; the first frame shows lifetime totals instead.
    """
    samples = metrics["samples"]
    histograms = metrics["histograms"]
    lines: List[str] = []
    uptime = health.get("uptime_s")
    lines.append(
        f"repro top — server ok, version {health.get('version', '?')}"
        + (f", up {uptime:.0f}s" if isinstance(uptime, (int, float)) else "")
    )

    queue = health.get("queue") or {}
    lines.append(
        "queue    "
        f"depth {int(_sum_by_name(samples, 'repro_queue_in_flight')):>4d}   "
        f"submitted {int(queue.get('submitted', 0)):>6d}   "
        f"completed {int(queue.get('completed', 0)):>6d}   "
        f"failed {int(queue.get('failed', 0)):>4d}   "
        f"cancelled {int(queue.get('cancelled', 0)):>4d}"
    )

    cache = health.get("cache")
    if cache:
        hits = float(cache.get("hits", 0))
        misses = float(cache.get("misses", 0))
        lookups = hits + misses
        rate = 100.0 * hits / lookups if lookups else 0.0
        lines.append(
            "cache    "
            f"hit rate {rate:5.1f}%   "
            f"hits {int(hits):>6d}   misses {int(misses):>6d}   "
            f"entries {int(cache.get('entries', 0)):>5d}"
        )
    else:
        lines.append("cache    disabled")

    solver_parts: List[str] = []
    for name, label in SOLVER_RATE_METRICS:
        now = _sum_by_name(samples, name)
        if prev_samples is not None and dt_s and dt_s > 0:
            rate = max(0.0, now - _sum_by_name(prev_samples, name)) / dt_s
            solver_parts.append(f"{label} {rate:8.1f}/s")
        else:
            solver_parts.append(f"{label} {int(now):>8d}")
    lines.append("solver   " + "   ".join(solver_parts))

    failures = _by_label(samples, "repro_item_failures_total", "classification")
    if failures:
        worst = sorted(failures.items(), key=lambda kv: (-kv[1], kv[0]))[:4]
        lines.append(
            "failures "
            + "   ".join(f"{name} {int(count)}" for name, count in worst)
        )
    else:
        lines.append("failures none")

    wall = _merged_histogram(histograms, "repro_item_wall_seconds")
    if wall and wall["count"]:
        p50 = histogram_quantile(0.50, wall["buckets"], wall["counts"], wall["count"])
        p99 = histogram_quantile(0.99, wall["buckets"], wall["counts"], wall["count"])
        lines.append(
            "latency  "
            f"items {wall['count']:>6d}   "
            f"p50 {_fmt_latency(p50)}   p99 {_fmt_latency(p99)}"
        )
    else:
        lines.append("latency  no items observed yet")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The loop
# ---------------------------------------------------------------------------


def run_top(
    base_url: str,
    interval_s: float = 2.0,
    count: Optional[int] = None,
    once: bool = False,
    stream=None,
    clear: Optional[bool] = None,
) -> int:
    """Poll and render until interrupted (or ``count`` frames).

    ``once`` renders a single frame with lifetime totals (scripting /
    smoke-test mode).  Frames are separated by an ANSI home+clear when
    writing to a TTY, by a blank line otherwise.  Raises
    :class:`DashboardError` when the very first poll fails — a
    dashboard that cannot connect at all should fail loudly — while a
    server restarting mid-session only shows a reconnect notice.
    Returns the number of frames rendered.
    """
    stream = stream if stream is not None else sys.stdout
    if once:
        count = 1
    frames = 0
    prev_samples: Optional[Dict[SeriesKey, float]] = None
    prev_time: Optional[float] = None
    use_ansi = clear if clear is not None else bool(getattr(stream, "isatty", lambda: False)())
    try:
        while count is None or frames < count:
            try:
                metrics = fetch_metrics(base_url)
                health = fetch_health(base_url)
            except DashboardError:
                if frames == 0:
                    raise
                stream.write("\nrepro top: reconnecting ...\n")
                stream.flush()
                time.sleep(interval_s)
                continue
            now = time.monotonic()
            dt_s = None if prev_time is None else now - prev_time
            frame = render_frame(metrics, health, prev_samples, dt_s)
            if use_ansi:
                stream.write("\x1b[H\x1b[2J")
            elif frames:
                stream.write("\n")
            stream.write(frame + "\n")
            stream.flush()
            prev_samples = metrics["samples"]
            prev_time = now
            frames += 1
            if count is not None and frames >= count:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
