"""Bench-history store and noise-aware perf-regression gate.

The bench harness (``benchmarks/run_benchmarks.py``) measures, this
module remembers and judges:

* ``append_entry`` adds one line to an append-only per-suite JSONL file
  (``benchmarks/history/<suite>.jsonl``) carrying the suite's gated
  metrics plus the environment and configuration that produced them;
* ``check_metrics`` compares a fresh measurement against the rolling
  history — the baseline is the **median** of the last ``window``
  matching entries and the tolerance band is MAD-derived, so one noisy
  CI run neither poisons the baseline nor trips the gate, while a real
  2x regression lands far outside any plausible band.

Entries only compare against history recorded under the **same
configuration** (same DOE sizes, worker counts, sample counts): a smoke
run must never be judged against full-DOE baselines.  The gate is
deliberately conservative with sparse history — fewer than
``min_samples`` comparable entries means "no baseline yet", which
passes (and ``--record`` grows the history until the gate arms).

A detected regression exits the harness with :data:`REGRESSION_EXIT_CODE`
(4), distinct from the correctness-gate failures (1) so CI can tell
"slower" from "wrong".
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "REGRESSION_EXIT_CODE",
    "append_entry",
    "check_metrics",
    "format_findings",
    "has_regressions",
    "history_path",
    "load_entries",
    "utc_timestamp",
    "validate_report",
]

#: Version of the bench-report and history-entry schema.  Bump when a
#: report's key layout changes incompatibly; ``--check`` refuses to
#: compare entries across versions.
BENCH_SCHEMA_VERSION = 1

#: Process exit code of a perf regression — distinct from 1 (a bench
#: correctness gate failed) so CI can route the two differently.
REGRESSION_EXIT_CODE = 4


def utc_timestamp(unix: Optional[float] = None) -> str:
    """ISO-8601 UTC timestamp (second resolution, trailing ``Z``)."""
    moment = datetime.fromtimestamp(
        time.time() if unix is None else float(unix), tz=timezone.utc
    )
    return moment.strftime("%Y-%m-%dT%H:%M:%SZ")


def history_path(history_dir: Path, suite: str) -> Path:
    return Path(history_dir) / f"{suite}.jsonl"


def append_entry(
    history_dir: Path,
    suite: str,
    metrics: Mapping[str, float],
    environment: Optional[Mapping[str, Any]] = None,
    config: Optional[Mapping[str, Any]] = None,
    unix: Optional[float] = None,
) -> Dict[str, Any]:
    """Append one measurement to the suite's history file and return it."""
    unix = time.time() if unix is None else float(unix)
    entry = {
        "suite": str(suite),
        "schema_version": BENCH_SCHEMA_VERSION,
        "timestamp_utc": utc_timestamp(unix),
        "unix": unix,
        "metrics": {str(k): float(v) for k, v in metrics.items()},
        "environment": dict(environment or {}),
        "config": dict(config or {}),
    }
    path = history_path(history_dir, suite)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_entries(history_dir: Path, suite: str) -> List[Dict[str, Any]]:
    """Load a suite's history, skipping corrupt/truncated lines.

    The file is append-only and may end in a torn line after a crashed
    run; a torn tail must not wedge every later ``--check``.
    """
    path = history_path(history_dir, suite)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and isinstance(entry.get("metrics"), dict):
            entries.append(entry)
    return entries


def validate_report(report: Mapping[str, Any]) -> List[str]:
    """Provenance check of a freshly written BENCH_*.json report.

    Returns a list of problems (empty = valid): every report must carry
    the schema version and a parseable UTC timestamp so history entries
    and artifacts stay self-describing.
    """
    problems: List[str] = []
    version = report.get("bench_schema_version")
    if version != BENCH_SCHEMA_VERSION:
        problems.append(
            f"bench_schema_version is {version!r}, expected {BENCH_SCHEMA_VERSION}"
        )
    stamp = report.get("timestamp_utc")
    if not isinstance(stamp, str):
        problems.append("timestamp_utc missing")
    else:
        try:
            datetime.strptime(stamp, "%Y-%m-%dT%H:%M:%SZ")
        except ValueError:
            problems.append(f"timestamp_utc {stamp!r} is not ISO-8601 UTC")
    return problems


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _comparable(
    entry: Mapping[str, Any], config: Optional[Mapping[str, Any]]
) -> bool:
    if entry.get("schema_version") != BENCH_SCHEMA_VERSION:
        return False
    if config is not None and entry.get("config") != dict(config):
        return False
    return True


def check_metrics(
    entries: Sequence[Mapping[str, Any]],
    metrics: Mapping[str, float],
    gates: Mapping[str, str],
    config: Optional[Mapping[str, Any]] = None,
    window: int = 10,
    min_samples: int = 3,
    rel_floor: float = 0.10,
    mad_k: float = 4.0,
) -> List[Dict[str, Any]]:
    """Judge fresh ``metrics`` against the rolling history.

    For each gated metric the baseline is the median of its last
    ``window`` values among comparable entries (same config, same
    schema version), and the tolerance is::

        tol = max(rel_floor, mad_k * MAD / |baseline|)

    so quiet histories fall back to a ±10% band while noisy ones widen
    proportionally.  ``gates`` maps metric name to direction:
    ``"higher"`` (throughput/speedups — regression = current below
    ``baseline * (1 - tol)``) or ``"lower"`` (walls/latency —
    regression = current above ``baseline * (1 + tol)``).

    Returns one finding per gated metric with status ``"ok"``,
    ``"regression"``, ``"insufficient-history"`` or ``"missing"``.
    """
    findings: List[Dict[str, Any]] = []
    comparable = [e for e in entries if _comparable(e, config)]
    for name, direction in gates.items():
        if direction not in ("higher", "lower"):
            raise ValueError(f"gate direction must be higher/lower, got {direction!r}")
        finding: Dict[str, Any] = {"metric": name, "direction": direction}
        if name not in metrics:
            finding["status"] = "missing"
            findings.append(finding)
            continue
        current = float(metrics[name])
        finding["current"] = current
        values = [
            float(e["metrics"][name])
            for e in comparable
            if name in e.get("metrics", {})
        ][-window:]
        finding["samples"] = len(values)
        if len(values) < min_samples:
            finding["status"] = "insufficient-history"
            findings.append(finding)
            continue
        baseline = _median(values)
        mad = _median([abs(v - baseline) for v in values])
        scale = abs(baseline) if baseline else 1.0
        tolerance = max(float(rel_floor), float(mad_k) * mad / scale)
        finding["baseline"] = baseline
        finding["tolerance"] = tolerance
        if direction == "higher":
            limit = baseline * (1.0 - tolerance)
            regressed = current < limit
        else:
            limit = baseline * (1.0 + tolerance)
            regressed = current > limit
        finding["limit"] = limit
        finding["status"] = "regression" if regressed else "ok"
        findings.append(finding)
    return findings


def has_regressions(findings: Sequence[Mapping[str, Any]]) -> bool:
    return any(f.get("status") == "regression" for f in findings)


def format_findings(findings: Sequence[Mapping[str, Any]]) -> str:
    """One human-readable line per finding (harness/CI log output)."""
    lines: List[str] = []
    for f in findings:
        status = f.get("status", "?")
        name = f.get("metric", "?")
        if status in ("ok", "regression"):
            arrow = ">=" if f.get("direction") == "higher" else "<="
            lines.append(
                f"  {status.upper():22s} {name}: {f['current']:.4g} "
                f"(baseline {f['baseline']:.4g}, needs {arrow} {f['limit']:.4g}, "
                f"n={f['samples']})"
            )
        elif status == "insufficient-history":
            lines.append(
                f"  {'INSUFFICIENT-HISTORY':22s} {name}: "
                f"{f.get('current', float('nan')):.4g} "
                f"({f.get('samples', 0)} comparable entries, gate not armed)"
            )
        else:
            lines.append(f"  {'MISSING':22s} {name}: not in this report")
    return "\n".join(lines)
