"""Process-wide metrics registry with a Prometheus text renderer.

One :class:`MetricsRegistry` absorbs every counter in the stack into a
single ``repro_*`` namespace:

* solver counters (``repro_solver_factorizations_total``, ...) from
  :class:`repro.circuit.mna.SolverStats` deltas,
* cache counters (``repro_cache_hits_total``, ...) from
  :meth:`repro.service.cache.ResultCache.stats_dict`,
* queue counters (``repro_queue_completed_total``, ...) from
  :meth:`repro.service.queue.ExperimentQueue.stats`,
* failure classifications (``repro_item_failures_total``) and per-item
  wall-time histograms (``repro_item_wall_seconds``).

Series are keyed by ``(name, frozen label tuple)``; all mutation happens
under one lock so campaign worker threads and the HTTP server can write
concurrently.  ``snapshot()``/``delta_since()`` give tests and benches a
cheap way to assert what a block of work contributed.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "absorb_cache_stats",
    "absorb_queue_stats",
    "observe_item_wall",
    "record_high_sigma",
    "record_item_failure",
    "record_solver_delta",
    "registry",
    "reset_registry",
]

# Frozen label set: a series key is (metric name, tuple of (label, value)
# pairs sorted by label name).
LabelKey = Tuple[Tuple[str, str], ...]
SeriesKey = Tuple[str, LabelKey]

#: Fixed latency buckets (seconds), 1 ms .. 60 s.  Chosen once so that
#: histograms from different processes/runs are always mergeable.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: HELP strings for the well-known metric names (anything else renders
#: with an empty HELP line omitted).
_HELP: Dict[str, str] = {
    "repro_runs_total": "Completed repro.api.run invocations by spec kind.",
    "repro_items_total": "Campaign items committed, by operation.",
    "repro_item_failures_total": "Campaign item failures by classification.",
    "repro_item_wall_seconds": "Per-item measurement wall time.",
    "repro_solver_factorizations_total": "MNA matrix factorizations.",
    "repro_solver_refactorizations_total": "Newton re-factorizations after a Jacobian update.",
    "repro_solver_dense_solves_total": "Dense linear solves.",
    "repro_solver_sparse_solves_total": "Sparse linear solves.",
    "repro_solver_stamp_evals_total": "Device stamp evaluation sweeps.",
    "repro_solver_stamp_device_evals_total": "Individual device stamp evaluations.",
    "repro_solver_batch_ticks_total": "Batched-tier lockstep Newton/transient ticks.",
    "repro_solver_batch_lane_iterations_total": "Per-lane iterations inside batched ticks.",
    "repro_solver_scalar_fallbacks_total": "Batched-tier lanes demoted to the scalar path.",
    "repro_solver_batch_lanes_total": "Lanes launched into batched lockstep groups.",
    "repro_solver_batch_lane_slots_total": "Lane slots offered across batched ticks (occupancy denominator).",
    "repro_solver_iterations": "Iterations-to-converge per solve, by solver kind.",
    "repro_solver_converged_total": "Solves that converged, by solver kind.",
    "repro_solver_nonconverged_total": "Solves that failed to converge, by solver kind.",
    "repro_solver_rescue_total": "Entries into robustness-ladder stages, by kind and stage.",
    "repro_solver_step_rejections_total": "Transient steps rejected and retried at a smaller dt.",
    "repro_solver_lane_occupancy": "Active-lane fraction of batched ticks over the last run.",
    "repro_solver_scalar_fallback_rate": "Fraction of batched lanes demoted to the scalar path over the last run.",
    "repro_cache_hits_total": "Result-cache hits (lifetime, sidecar-cumulative).",
    "repro_cache_misses_total": "Result-cache misses (lifetime, sidecar-cumulative).",
    "repro_cache_stores_total": "Result-cache stores (lifetime, sidecar-cumulative).",
    "repro_cache_evictions_total": "Result-cache LRU evictions (lifetime, sidecar-cumulative).",
    "repro_cache_invalidations_total": "Result-cache invalidations (lifetime, sidecar-cumulative).",
    "repro_cache_quarantined_total": "Corrupt cache entries quarantined (lifetime, sidecar-cumulative).",
    "repro_cache_entries": "Result-cache entries currently on disk.",
    "repro_cache_max_entries": "Result-cache capacity (0 = unbounded).",
    "repro_queue_submitted_total": "Experiment submissions (lifetime, sidecar-cumulative).",
    "repro_queue_coalesced_total": "Submissions coalesced onto an in-flight job.",
    "repro_queue_cache_hits_total": "Submissions answered straight from the cache.",
    "repro_queue_completed_total": "Jobs completed (lifetime, sidecar-cumulative).",
    "repro_queue_failed_total": "Jobs failed (lifetime, sidecar-cumulative).",
    "repro_queue_cancelled_total": "Jobs cancelled (lifetime, sidecar-cumulative).",
    "repro_queue_recovered_total": "Jobs replayed from the journal on startup.",
    "repro_queue_timeouts_total": "Jobs killed by the per-job timeout.",
    "repro_queue_in_flight": "Jobs currently queued or computing.",
    "repro_queue_jobs": "Job tickets tracked in memory.",
    "repro_journal_outstanding": "Journaled jobs not yet resolved.",
    "repro_journal_skipped_lines": "Torn/corrupt journal lines skipped on scan.",
    "repro_http_requests_total": "HTTP requests served, by method and status.",
    "repro_highsigma_proposals_total": "High-sigma IS proposal draws screened on the surrogate.",
    "repro_highsigma_promoted_solves_total": "Surrogate-uncertain proposals promoted to real solves.",
    "repro_highsigma_simulator_calls_total": "Real metric evaluations spent by the high-sigma engine.",
}

_CACHE_COUNTER_KEYS = (
    "hits",
    "misses",
    "stores",
    "evictions",
    "invalidations",
    "quarantined",
)
_QUEUE_COUNTER_KEYS = (
    "submitted",
    "coalesced",
    "cache_hits",
    "completed",
    "failed",
    "cancelled",
    "recovered",
    "timeouts",
)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Histogram:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
        self.sum += value
        self.count += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": self.buckets,
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._histograms: Dict[SeriesKey, _Histogram] = {}

    # -- mutation --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to a counter (monotone by convention)."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_total(self, name: str, value: float, **labels: Any) -> None:
        """Set a counter's absolute value.

        Used when absorbing lifetime totals kept elsewhere (cache/queue
        stat dicts), where the source of truth already accumulates.
        """
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = float(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels: Any,
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(buckets)
            hist.observe(value)

    # -- inspection ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[SeriesKey, Any]]:
        """Deep-copied point-in-time view of every series."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.as_dict() for k, h in self._histograms.items()},
            }

    def delta_since(self, before: Mapping[str, Mapping[SeriesKey, Any]]) -> Dict[str, Dict[SeriesKey, Any]]:
        """Counter/histogram growth since a prior :meth:`snapshot`.

        Gauges are reported at their current value (deltas of levels are
        meaningless).  Missing series in ``before`` count from zero.
        """
        now = self.snapshot()
        counters_before = before.get("counters", {})
        hists_before = before.get("histograms", {})
        counters = {
            key: value - counters_before.get(key, 0.0)
            for key, value in now["counters"].items()
            if value != counters_before.get(key, 0.0)
        }
        histograms: Dict[SeriesKey, Any] = {}
        for key, hist in now["histograms"].items():
            prior = hists_before.get(key)
            if prior is None:
                grown = hist
            else:
                grown = {
                    "buckets": hist["buckets"],
                    "counts": [a - b for a, b in zip(hist["counts"], prior["counts"])],
                    "sum": hist["sum"] - prior["sum"],
                    "count": hist["count"] - prior["count"],
                }
            if grown["count"]:
                histograms[key] = grown
        return {"counters": counters, "gauges": now["gauges"], "histograms": histograms}

    # -- rendering -------------------------------------------------------

    def to_prometheus(self) -> str:
        """Render every series in Prometheus text exposition format 0.0.4."""
        snap = self.snapshot()
        lines: List[str] = []

        def emit_header(name: str, kind: str) -> None:
            help_text = _HELP.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for kind, series in (("counter", snap["counters"]), ("gauge", snap["gauges"])):
            by_name: Dict[str, List[Tuple[LabelKey, float]]] = {}
            for (name, labels), value in series.items():
                by_name.setdefault(name, []).append((labels, value))
            for name in sorted(by_name):
                emit_header(name, kind)
                for labels, value in sorted(by_name[name]):
                    lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")

        hist_by_name: Dict[str, List[Tuple[LabelKey, Dict[str, Any]]]] = {}
        for (name, labels), hist in snap["histograms"].items():
            hist_by_name.setdefault(name, []).append((labels, hist))
        for name in sorted(hist_by_name):
            emit_header(name, "histogram")
            for labels, hist in sorted(hist_by_name[name], key=lambda item: item[0]):
                for bound, count in zip(hist["buckets"], hist["counts"]):
                    le = _render_labels(labels, ("le", _format_value(bound)))
                    lines.append(f"{name}_bucket{le} {count}")
                inf = _render_labels(labels, ("le", "+Inf"))
                lines.append(f"{name}_bucket{inf} {hist['count']}")
                lines.append(f"{name}_sum{_render_labels(labels)} {repr(float(hist['sum']))}")
                lines.append(f"{name}_count{_render_labels(labels)} {hist['count']}")

        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Histogram quantiles (shared by ``repro top`` and the trace report)
# ---------------------------------------------------------------------------


def cumulate(values: Sequence[float], buckets: Sequence[float]) -> List[int]:
    """Cumulative (``le``) bucket counts of raw observations.

    Lets code holding raw samples (e.g. per-item walls from a trace)
    reuse :func:`histogram_quantile` with the exact bucket semantics of
    a registry histogram.
    """
    counts = [0] * len(buckets)
    for value in values:
        for i, bound in enumerate(buckets):
            if value <= bound:
                counts[i] += 1
    return counts


def histogram_quantile(
    q: float,
    buckets: Sequence[float],
    counts: Sequence[int],
    count: Optional[int] = None,
) -> Optional[float]:
    """Estimate the q-quantile of a cumulative-bucket (``le``) histogram.

    ``counts[i]`` is the number of observations ``<= buckets[i]``;
    ``count`` is the total including the implicit +Inf bucket (defaults
    to ``counts[-1]``).  Interpolates linearly inside the containing
    bucket, Prometheus-style, assuming a lower edge of 0 for the first
    bucket; observations beyond the last finite bound clamp to it.
    Returns None when the histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if not buckets:
        return None
    total = int(count) if count is not None else (int(counts[-1]) if counts else 0)
    if total <= 0:
        return None
    rank = q * total
    prev_bound = 0.0
    prev_cum = 0
    for bound, cum in zip(buckets, counts):
        if cum >= rank:
            in_bucket = cum - prev_cum
            if in_bucket <= 0:
                return float(bound)
            frac = (rank - prev_cum) / in_bucket
            return float(prev_bound + (bound - prev_bound) * frac)
        prev_bound, prev_cum = float(bound), int(cum)
    # The quantile falls in the +Inf bucket: the honest answer is "at
    # least the largest finite bound".
    return float(buckets[-1])


# ---------------------------------------------------------------------------
# Process-global registry
# ---------------------------------------------------------------------------

_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def registry() -> MetricsRegistry:
    """The process-wide registry every adapter writes into."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh registry (tests); returns the new one."""
    global _registry
    with _registry_lock:
        _registry = MetricsRegistry()
    return _registry


# ---------------------------------------------------------------------------
# Adapters: absorb the existing telemetry islands
# ---------------------------------------------------------------------------


def record_solver_delta(
    delta: Mapping[str, int], reg: Optional[MetricsRegistry] = None
) -> None:
    """Fold a :meth:`SolverStats.as_dict` delta into solver counters."""
    reg = reg if reg is not None else registry()
    for key, value in delta.items():
        if value:
            reg.inc(f"repro_solver_{key}_total", float(value))


def record_high_sigma(
    operation: str,
    proposals: int,
    promoted: int,
    simulator_calls: int,
    reg: Optional[MetricsRegistry] = None,
) -> None:
    """Count one high-sigma estimate's proposal/promotion/call spend.

    The proposals-vs-promoted ratio is the engine's efficiency headline:
    how many draws the surrogate screened for free versus how many
    needed a real solve.
    """
    reg = reg if reg is not None else registry()
    if proposals:
        reg.inc(
            "repro_highsigma_proposals_total", float(proposals), operation=operation
        )
    if promoted:
        reg.inc(
            "repro_highsigma_promoted_solves_total",
            float(promoted),
            operation=operation,
        )
    if simulator_calls:
        reg.inc(
            "repro_highsigma_simulator_calls_total",
            float(simulator_calls),
            operation=operation,
        )


def absorb_cache_stats(
    stats: Mapping[str, Any], reg: Optional[MetricsRegistry] = None
) -> None:
    """Mirror a :meth:`ResultCache.stats_dict` payload into the registry.

    Counter values are absolute lifetime totals (the cache — or the
    stats sidecar layered on top of it — is the source of truth), so
    this *sets* rather than increments.
    """
    reg = reg if reg is not None else registry()
    for key in _CACHE_COUNTER_KEYS:
        reg.set_total(f"repro_cache_{key}_total", float(stats.get(key, 0)))
    if "entries" in stats:
        reg.set_gauge("repro_cache_entries", float(stats["entries"]))
    if "max_entries" in stats:
        reg.set_gauge("repro_cache_max_entries", float(stats["max_entries"] or 0))


def absorb_queue_stats(
    stats: Mapping[str, Any], reg: Optional[MetricsRegistry] = None
) -> None:
    """Mirror an :meth:`ExperimentQueue.stats` payload into the registry."""
    reg = reg if reg is not None else registry()
    for key in _QUEUE_COUNTER_KEYS:
        reg.set_total(f"repro_queue_{key}_total", float(stats.get(key, 0)))
    if "in_flight" in stats:
        reg.set_gauge("repro_queue_in_flight", float(stats["in_flight"]))
    if "jobs" in stats:
        reg.set_gauge("repro_queue_jobs", float(stats["jobs"]))
    journal = stats.get("journal")
    if isinstance(journal, Mapping):
        if "outstanding" in journal:
            reg.set_gauge("repro_journal_outstanding", float(journal["outstanding"]))
        if "skipped_lines" in journal:
            reg.set_gauge("repro_journal_skipped_lines", float(journal["skipped_lines"]))


def record_item_failure(
    classification: str, reg: Optional[MetricsRegistry] = None
) -> None:
    """Count one campaign item failure by its typed classification."""
    reg = reg if reg is not None else registry()
    reg.inc("repro_item_failures_total", classification=str(classification))


def observe_item_wall(
    wall_s: float, operation: str, reg: Optional[MetricsRegistry] = None
) -> None:
    """Feed one item's measurement wall time into the latency histogram."""
    reg = reg if reg is not None else registry()
    reg.observe("repro_item_wall_seconds", float(wall_s), operation=str(operation))
