"""Solver convergence telemetry: histograms, rescue counters, lane gauges.

PR 8's registry counts *what* the solver tier did (factorizations,
stamp evals); this module records *how convergence behaved* while it
did it:

* ``repro_solver_iterations`` — iterations-to-converge histograms,
  labelled by solver kind (``dc``, ``dc_sweep``, ``transient``,
  ``batch_dc``, ``batch_dc_sweep``) and, for batched lanes, by lane
  group size;
* ``repro_solver_converged_total`` / ``repro_solver_nonconverged_total``
  — solve outcomes under the same labels;
* ``repro_solver_rescue_total`` — entries into the robustness ladder
  (``gmin_step``, ``source_step``, ``pseudo_transient``,
  ``sweep_point``), the events that explain why a solve cost what it
  did;
* ``repro_solver_step_rejections_total`` — transient dt-halvings (the
  step controller's damping events);
* lane-efficiency gauges derived from :class:`SolverStats` deltas —
  ``repro_solver_lane_occupancy`` (active-lane fraction per tick) and
  ``repro_solver_scalar_fallback_rate`` (lanes demoted per lane
  launched).

Residual-norm *decay traces* are too bulky for the registry, so they go
through a bounded :class:`ResidualTraceRecorder` — off by default,
reservoir-sampled when on (deterministic rng, fixed capacity), enabled
by tests/benches that want to see the decay shape rather than just the
iteration count.

Everything here must stay cheap enough to be always-on: hooks fire per
*solve* (or per lane), never per Newton iteration, and the residual
recorder costs one module-global check per solve while disabled.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, registry

__all__ = [
    "ITERATION_BUCKETS",
    "ResidualTraceRecorder",
    "disable_residual_recording",
    "enable_residual_recording",
    "lane_group_label",
    "record_convergence",
    "record_lane_stats",
    "record_rescue",
    "record_step_rejections",
    "residual_recorder",
]

#: Fixed iteration buckets (like the latency buckets: chosen once so
#: histograms from different runs always merge).  Newton on these
#: circuits converges in single digits; the tail buckets catch rescue
#: ladders and sweeps, which report *summed* iterations.
ITERATION_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    3.0,
    4.0,
    6.0,
    8.0,
    12.0,
    16.0,
    24.0,
    32.0,
    64.0,
    128.0,
    512.0,
    2048.0,
)


def lane_group_label(n_lanes: int) -> str:
    """Bucket a lockstep group's size into a bounded label set."""
    if n_lanes <= 8:
        return "1-8"
    if n_lanes <= 32:
        return "9-32"
    if n_lanes <= 128:
        return "33-128"
    return "129+"


def record_convergence(
    kind: str,
    iterations: int,
    converged: bool,
    lane_group: Optional[str] = None,
    reg: Optional[MetricsRegistry] = None,
) -> None:
    """Record one finished solve's iteration count and outcome."""
    reg = reg if reg is not None else registry()
    labels: Dict[str, str] = {"kind": str(kind)}
    if lane_group is not None:
        labels["lane_group"] = str(lane_group)
    reg.observe(
        "repro_solver_iterations",
        float(iterations),
        buckets=ITERATION_BUCKETS,
        **labels,
    )
    name = (
        "repro_solver_converged_total"
        if converged
        else "repro_solver_nonconverged_total"
    )
    reg.inc(name, **labels)


def record_rescue(kind: str, stage: str, reg: Optional[MetricsRegistry] = None) -> None:
    """Count one entry into a robustness-ladder stage."""
    reg = reg if reg is not None else registry()
    reg.inc("repro_solver_rescue_total", kind=str(kind), stage=str(stage))


def record_step_rejections(
    kind: str, count: int, reg: Optional[MetricsRegistry] = None
) -> None:
    """Count rejected (dt-halved) steps of one transient run."""
    if count:
        reg = reg if reg is not None else registry()
        reg.inc("repro_solver_step_rejections_total", float(count), kind=str(kind))


def record_lane_stats(
    delta: Mapping[str, int], reg: Optional[MetricsRegistry] = None
) -> None:
    """Set lane-efficiency gauges from a :meth:`SolverStats.as_dict` delta.

    ``batch_lane_iterations / batch_lane_slots`` is the active-lane
    fraction over the delta window (1.0 = every lane of every tick still
    converging; low values mean stragglers kept mostly-idle ticks
    alive).  ``scalar_fallbacks / batch_lanes`` is the demotion rate.
    """
    reg = reg if reg is not None else registry()
    slots = float(delta.get("batch_lane_slots", 0) or 0)
    if slots > 0:
        reg.set_gauge(
            "repro_solver_lane_occupancy",
            float(delta.get("batch_lane_iterations", 0)) / slots,
        )
    lanes = float(delta.get("batch_lanes", 0) or 0)
    fallbacks = float(delta.get("scalar_fallbacks", 0) or 0)
    if lanes > 0 or fallbacks > 0:
        reg.set_gauge(
            "repro_solver_scalar_fallback_rate",
            fallbacks / (lanes + fallbacks) if (lanes + fallbacks) else 0.0,
        )


# ---------------------------------------------------------------------------
# Residual decay traces (bounded, off by default)
# ---------------------------------------------------------------------------


class ResidualTraceRecorder:
    """Reservoir sampler of per-solve residual-norm decay traces.

    Keeps at most ``max_traces`` traces of at most ``max_points`` points
    each, replacing uniformly at random once full (classic reservoir
    sampling with a seeded rng, so a given solve sequence always keeps
    the same traces).  Memory is therefore bounded regardless of how
    many solves run.
    """

    def __init__(self, max_traces: int = 128, max_points: int = 64, seed: int = 0) -> None:
        if max_traces <= 0 or max_points <= 0:
            raise ValueError("max_traces and max_points must be positive")
        self.max_traces = int(max_traces)
        self.max_points = int(max_points)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._traces: List[Dict[str, Any]] = []
        self.seen = 0

    def record(self, kind: str, residuals: Sequence[float], converged: bool) -> None:
        if not residuals:
            return
        points = [float(r) for r in residuals]
        if len(points) > self.max_points:
            # Stride-decimate but always keep the final residual: the
            # decay *endpoint* is the interesting part.
            stride = -(-len(points) // self.max_points)
            points = points[::stride] + [points[-1]]
        trace = {"kind": str(kind), "residuals": points, "converged": bool(converged)}
        with self._lock:
            self.seen += 1
            if len(self._traces) < self.max_traces:
                self._traces.append(trace)
            else:
                j = self._rng.randrange(self.seen)
                if j < self.max_traces:
                    self._traces[j] = trace

    def traces(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(trace) for trace in self._traces]

    def summary(self) -> Dict[str, Any]:
        """Per-kind counts and median decay ratio (last/first residual)."""
        by_kind: Dict[str, List[float]] = {}
        converged = 0
        traces = self.traces()
        for trace in traces:
            residuals = trace["residuals"]
            if residuals[0] > 0:
                by_kind.setdefault(trace["kind"], []).append(
                    residuals[-1] / residuals[0]
                )
            if trace["converged"]:
                converged += 1
        decay: Dict[str, float] = {}
        for kind, ratios in by_kind.items():
            ratios.sort()
            decay[kind] = ratios[len(ratios) // 2]
        return {
            "traces": len(traces),
            "seen": self.seen,
            "converged": converged,
            "median_decay_ratio": decay,
        }


_recorder: Optional[ResidualTraceRecorder] = None


def residual_recorder() -> Optional[ResidualTraceRecorder]:
    """The active recorder, or None (the common, zero-cost case)."""
    return _recorder


def enable_residual_recording(
    max_traces: int = 128, max_points: int = 64, seed: int = 0
) -> ResidualTraceRecorder:
    global _recorder
    _recorder = ResidualTraceRecorder(
        max_traces=max_traces, max_points=max_points, seed=seed
    )
    return _recorder


def disable_residual_recording() -> Optional[ResidualTraceRecorder]:
    global _recorder
    recorder = _recorder
    _recorder = None
    return recorder
