"""Unified observability layer: metrics, tracing, and performance introspection.

The stack's telemetry used to live on three disconnected islands — the
solver's :class:`~repro.circuit.mna.SolverStats` counters, the service
layer's cache/queue dicts and the typed failure records.  This package
pulls every number into one place:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, with adapters that
  absorb the existing islands into one ``repro_*`` namespace and a
  Prometheus text-exposition renderer (``GET /v1/metrics``);
* :mod:`repro.obs.trace` — structured span tracing
  (``with span("campaign.chunk", item=key): ...``) emitting append-only
  JSONL, with cross-process collection (pool workers write
  ``trace-<pid>.jsonl``, the parent merges on chunk commit) and a
  Chrome-trace exporter so any run opens in ``chrome://tracing``;
* :mod:`repro.obs.profile` — a stdlib-only sampling profiler (a
  background thread walking ``sys._current_frames()`` at ~101 Hz) that
  writes folded/collapsed flamegraph stacks rooted at the active span
  (``phase:<span>;mod.func;...``), with the same cross-process
  collection scheme as tracing;
* :mod:`repro.obs.convergence` — solver convergence telemetry:
  iterations-to-converge histograms, rescue/rejection counters and
  lane-efficiency gauges, all exported through the registry;
* :mod:`repro.obs.history` — append-only benchmark history with a
  noise-aware regression gate (median baseline, MAD tolerance) used by
  ``benchmarks/run_benchmarks.py --record/--check``;
* :mod:`repro.obs.dashboard` — the ``repro top`` live terminal
  dashboard over ``/v1/metrics`` and ``/v1/healthz``.

Tracing and profiling are **off by default** and fingerprint-neutral:
enabling them never changes a record, only records where the wall-clock
time went.
"""

from .convergence import (
    ResidualTraceRecorder,
    disable_residual_recording,
    enable_residual_recording,
    record_convergence,
    record_lane_stats,
    record_rescue,
    record_step_rejections,
    residual_recorder,
)
from .history import (
    BENCH_SCHEMA_VERSION,
    REGRESSION_EXIT_CODE,
    append_entry,
    check_metrics,
    format_findings,
    has_regressions,
    history_path,
    load_entries,
    validate_report,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    absorb_cache_stats,
    absorb_queue_stats,
    cumulate,
    histogram_quantile,
    observe_item_wall,
    record_item_failure,
    record_solver_delta,
    registry,
    reset_registry,
)
from .profile import (
    SamplingProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    enable_worker_profiling,
    merge_folded,
    phase_totals,
    read_folded,
    top_frames,
    top_stacks,
)
from .trace import (
    Tracer,
    active_tracer,
    campaign_attribution,
    current_trace_ids,
    disable_tracing,
    enable_tracing,
    enable_worker_tracing,
    read_trace,
    span,
    to_chrome_trace,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "REGRESSION_EXIT_CODE",
    "ResidualTraceRecorder",
    "SamplingProfiler",
    "Tracer",
    "absorb_cache_stats",
    "absorb_queue_stats",
    "active_profiler",
    "active_tracer",
    "append_entry",
    "campaign_attribution",
    "check_metrics",
    "cumulate",
    "current_trace_ids",
    "disable_profiling",
    "disable_residual_recording",
    "disable_tracing",
    "enable_profiling",
    "enable_residual_recording",
    "enable_tracing",
    "enable_worker_profiling",
    "enable_worker_tracing",
    "format_findings",
    "has_regressions",
    "histogram_quantile",
    "history_path",
    "load_entries",
    "merge_folded",
    "observe_item_wall",
    "phase_totals",
    "read_folded",
    "read_trace",
    "record_convergence",
    "record_item_failure",
    "record_lane_stats",
    "record_rescue",
    "record_solver_delta",
    "record_step_rejections",
    "registry",
    "reset_registry",
    "residual_recorder",
    "span",
    "to_chrome_trace",
    "top_frames",
    "top_stacks",
    "validate_report",
]
