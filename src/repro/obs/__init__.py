"""Unified observability layer: metrics registry and structured tracing.

The stack's telemetry used to live on three disconnected islands — the
solver's :class:`~repro.circuit.mna.SolverStats` counters, the service
layer's cache/queue dicts and the typed failure records.  This package
pulls every number into one place:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, with adapters that
  absorb the existing islands into one ``repro_*`` namespace and a
  Prometheus text-exposition renderer (``GET /v1/metrics``);
* :mod:`repro.obs.trace` — structured span tracing
  (``with span("campaign.chunk", item=key): ...``) emitting append-only
  JSONL, with cross-process collection (pool workers write
  ``trace-<pid>.jsonl``, the parent merges on chunk commit) and a
  Chrome-trace exporter so any run opens in ``chrome://tracing``.

Tracing is **off by default** and fingerprint-neutral: enabling it never
changes a record, only records where the wall-clock time went.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    absorb_cache_stats,
    absorb_queue_stats,
    observe_item_wall,
    record_item_failure,
    record_solver_delta,
    registry,
    reset_registry,
)
from .trace import (
    Tracer,
    active_tracer,
    campaign_attribution,
    disable_tracing,
    enable_tracing,
    enable_worker_tracing,
    read_trace,
    span,
    to_chrome_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "Tracer",
    "absorb_cache_stats",
    "absorb_queue_stats",
    "active_tracer",
    "campaign_attribution",
    "disable_tracing",
    "enable_tracing",
    "enable_worker_tracing",
    "observe_item_wall",
    "read_trace",
    "record_item_failure",
    "record_solver_delta",
    "registry",
    "reset_registry",
    "span",
    "to_chrome_trace",
]
