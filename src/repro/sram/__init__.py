"""SRAM substrate: 6T cell, bit-line ladders, precharge, sense amp, and the
read-path / write-path / noise-margin harnesses of the operation suite."""

from .array import (
    ArrayCircuitError,
    ReadCircuitSpec,
    SRAMReadCircuit,
    build_read_circuit,
)
from .bitline import (
    BitlineLadder,
    BitlineModelError,
    BitlineSpec,
    build_bitline_ladder,
    supply_rail_resistance_ohm,
)
from .cell import (
    CellCircuitError,
    CellNodes,
    SRAMCellCircuit,
    bitline_loading_per_unselected_cell_f,
    build_cell,
)
from .precharge import (
    CELLS_PER_PRECHARGE_FIN,
    PrechargeCircuit,
    PrechargeError,
    build_precharge,
    precharge_capacitance_f,
    precharge_fins,
)
from .read_path import (
    ColumnParasitics,
    ReadMeasurement,
    ReadPathSimulator,
    ReadSimulationError,
)
from .margins import (
    MARGIN_MODES,
    ButterflyCurves,
    MarginAnalysisError,
    MarginMeasurement,
    SRAMMarginAnalyzer,
)
from .sense_amp import SenseAmpError, SenseAmplifier
from .write_path import (
    SRAMWriteCircuit,
    WriteMarginMeasurement,
    WriteMeasurement,
    WritePathSimulator,
    WriteSimulationError,
)

__all__ = [
    "ArrayCircuitError",
    "ButterflyCurves",
    "MARGIN_MODES",
    "MarginAnalysisError",
    "MarginMeasurement",
    "SRAMMarginAnalyzer",
    "SRAMWriteCircuit",
    "WriteMarginMeasurement",
    "WriteMeasurement",
    "WritePathSimulator",
    "WriteSimulationError",
    "BitlineLadder",
    "BitlineModelError",
    "BitlineSpec",
    "CELLS_PER_PRECHARGE_FIN",
    "CellCircuitError",
    "CellNodes",
    "ColumnParasitics",
    "PrechargeCircuit",
    "PrechargeError",
    "ReadCircuitSpec",
    "ReadMeasurement",
    "ReadPathSimulator",
    "ReadSimulationError",
    "SRAMCellCircuit",
    "SRAMReadCircuit",
    "SenseAmpError",
    "SenseAmplifier",
    "bitline_loading_per_unselected_cell_f",
    "build_bitline_ladder",
    "build_cell",
    "build_precharge",
    "build_read_circuit",
    "precharge_capacitance_f",
    "precharge_fins",
    "supply_rail_resistance_ohm",
]
