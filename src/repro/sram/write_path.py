"""High-level SRAM write simulation harness.

The write twin of :mod:`repro.sram.read_path`: the bit-line pair is driven
to the write values by scaled write drivers at the periphery end, the word
line ramps, and the accessed cell at the far end of the column — the
worst-case write position — flips through its pass gates.  Two figures of
merit come out:

* **write delay** — word-line assert (50 % of the ramp) to the internal
  ``q``/``qb`` crossover, from a transient simulation;
* **write margin** — the bit-line trip voltage from a DC continuation
  sweep: the low-going bit line is swept from Vdd down to 0 and the margin
  is the source voltage at which the cell flips.  A large margin means the
  cell writes even with a partial bit-line swing (driver non-ideality
  slack); extra bit-line resistance between driver and cell eats into it.

The simulator reuses the read path's geometry stack (layouts, nominal and
printed extractions, column parasitics) by composing a
:class:`~repro.sram.read_path.ReadPathSimulator`, so a campaign mixing
read and write operations extracts each layout exactly once.  Jacobian CSC
structures are donated across same-topology corners exactly as in the
read harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuit.batch import PreparedWork, TransientLaneSpec
from ..circuit.dc import NewtonOptions, dc_sweep
from ..circuit.elements import PiecewiseLinear, Resistor, VoltageSource
from ..circuit.mna import JacobianTemplate
from ..circuit.mosfet import MOSFET
from ..circuit.netlist import Circuit
from ..circuit.transient import TransientOptions, TransientSolver
from ..patterning.base import ParameterValues, PatterningOption
from ..technology.node import TechnologyNode
from .bitline import build_bitline_ladder
from .cell import CellNodes, build_cell
from .precharge import build_precharge, precharge_fins
from .read_path import ColumnParasitics, ReadPathSimulator


class WriteSimulationError(RuntimeError):
    """Raised when a write simulation cannot produce a measurement."""


@dataclass(frozen=True)
class WriteMeasurement:
    """Outcome of one transient write simulation."""

    n_cells: int
    label: str
    write_value: int
    write_delay_s: float
    wordline_time_s: float
    flip_time_s: float
    bitline_resistance_ohm: float
    bitline_capacitance_f: float
    vss_rail_resistance_ohm: float
    stop_reason: str

    @property
    def write_delay_ps(self) -> float:
        return self.write_delay_s * 1e12

    def penalty_vs(self, nominal: "WriteMeasurement") -> float:
        """Write-delay penalty ratio versus a nominal measurement."""
        if nominal.write_delay_s <= 0.0:
            raise WriteSimulationError("nominal write delay must be positive")
        return self.write_delay_s / nominal.write_delay_s

    def penalty_percent_vs(self, nominal: "WriteMeasurement") -> float:
        return (self.penalty_vs(nominal) - 1.0) * 100.0


@dataclass(frozen=True)
class WriteMarginMeasurement:
    """Outcome of one DC write-margin sweep."""

    n_cells: int
    label: str
    write_value: int
    #: Bit-line source voltage at which the cell flips: the driver slack.
    margin_v: float
    flipped: bool
    vdd_v: float

    def margin_fraction(self) -> float:
        """Margin as a fraction of the supply."""
        return self.margin_v / self.vdd_v


@dataclass
class SRAMWriteCircuit:
    """A built write-path circuit plus the bookkeeping the harness needs."""

    circuit: Circuit
    wordline_node: str
    q_node: str
    qb_node: str
    write_value: int
    initial_voltages: Dict[str, float]
    segments: int


class WritePathSimulator:
    """Simulates worst-case writes of the DOE columns.

    Parameters mirror :class:`ReadPathSimulator`; ``geometry`` optionally
    supplies a read simulator whose layout / extraction / parasitics
    caches are shared (the default builds a private one).
    """

    def __init__(
        self,
        node: TechnologyNode,
        n_bitline_pairs: int = 10,
        max_segments: int = 64,
        vss_strap_interval_cells: int = 256,
        transient_options: Optional[TransientOptions] = None,
        transient_method: Optional[str] = None,
        geometry: Optional[ReadPathSimulator] = None,
    ) -> None:
        if transient_method not in (None, "backward-euler", "trapezoidal"):
            raise WriteSimulationError(
                "transient_method must be 'backward-euler' or 'trapezoidal'"
            )
        if geometry is not None and (
            geometry.node is not node
            or geometry.n_bitline_pairs != n_bitline_pairs
            or geometry.vss_strap_interval_cells != vss_strap_interval_cells
        ):
            raise WriteSimulationError(
                "the geometry donor must share the node, array word length "
                "and VSS strap interval"
            )
        self.node = node
        self.n_bitline_pairs = n_bitline_pairs
        self.max_segments = max_segments
        self._base_transient_options = transient_options
        self._transient_method = transient_method
        self.geometry = (
            geometry
            if geometry is not None
            else ReadPathSimulator(
                node,
                n_bitline_pairs=n_bitline_pairs,
                max_segments=max_segments,
                vss_strap_interval_cells=vss_strap_interval_cells,
            )
        )
        # Nominal write measurements keyed by (n_cells, write_value): corner
        # sweeps compare many printed columns against one nominal.
        self._nominal_measurement_cache: Dict[Tuple[int, int], WriteMeasurement] = {}
        self._nominal_margin_cache: Dict[Tuple[int, int], WriteMarginMeasurement] = {}
        # Jacobian CSC structures keyed by (segments, write_value): corners
        # of the same ladder topology only change stamp values.
        self._jacobian_template_cache: Dict[Tuple[int, int], JacobianTemplate] = {}

    def invalidate_caches(self) -> None:
        """Drop the measurement memos and Jacobian templates.

        The geometry caches belong to the composed read simulator; call its
        :meth:`ReadPathSimulator.invalidate_caches` to drop those too.
        """
        self._nominal_measurement_cache.clear()
        self._nominal_margin_cache.clear()
        self._jacobian_template_cache.clear()

    # -- extraction plumbing (delegated to the shared geometry stack) ---------------

    def column_parasitics(
        self, n_cells: int, extraction=None
    ) -> ColumnParasitics:
        return self.geometry.column_parasitics(n_cells, extraction)

    # -- circuit construction ------------------------------------------------------

    def _driver_fins(self, n_cells: int) -> int:
        """Write-driver strength, scaled with the array like the precharge."""
        return precharge_fins(n_cells)

    def build_circuit(
        self,
        n_cells: int,
        column: ColumnParasitics,
        write_value: int = 0,
    ) -> SRAMWriteCircuit:
        """Assemble the write-path circuit for one column.

        The cell initially stores ``1 - write_value`` so the write flips
        it; the bit lines start already driven to the write values (the
        drivers settle before the word line asserts, as in a real write
        cycle).
        """
        if write_value not in (0, 1):
            raise WriteSimulationError("write_value must be 0 or 1")
        conditions = self.node.operating_conditions
        devices = self.node.sram_devices
        vdd = conditions.vdd_v
        vwl = conditions.effective_wordline_voltage_v

        circuit = Circuit(title=f"sram-write n={n_cells}")
        circuit.add(VoltageSource.dc("vdd", "vdd", "0", vdd))
        wordline_wave = PiecewiseLinear(
            points=((0.0, 0.0), (2e-12, 0.0), (6e-12, vwl))
        )
        circuit.add(VoltageSource("vwl", "wl", "0", wordline_wave))

        segments = min(n_cells, self.max_segments)
        bitline_ladder = build_bitline_ladder(
            column.bitline, prefix="bl", segments=segments
        )
        bitline_bar_ladder = build_bitline_ladder(
            column.bitline_bar, prefix="blb", segments=segments
        )
        circuit.add_all(bitline_ladder.elements)
        circuit.add_all(bitline_bar_ladder.elements)

        # Precharge devices are off during the write but their junction
        # capacitance still loads the periphery ends (same as the read).
        precharge = build_precharge(
            name="pch",
            bitline_node=bitline_ladder.near_node,
            bitline_bar_node=bitline_bar_ladder.near_node,
            vdd_node="vdd",
            n_cells=n_cells,
            vdd_v=vdd,
            device=devices.pull_up,
        )
        circuit.add_all(precharge.elements)

        # Write drivers at the periphery end: an NMOS pulls the low-going
        # bit line to VSS, a PMOS holds the other at VDD.  Gates tie to the
        # static supplies (the drivers are already enabled at t = 0).
        fins = self._driver_fins(n_cells)
        low_node = (
            bitline_ladder.near_node if write_value == 0 else bitline_bar_ladder.near_node
        )
        high_node = (
            bitline_bar_ladder.near_node if write_value == 0 else bitline_ladder.near_node
        )
        circuit.add(
            MOSFET(
                "wdrv_pd",
                drain=low_node,
                gate="vdd",
                source="0",
                parameters=devices.pull_down,
                nfins=fins,
            )
        )
        circuit.add(
            MOSFET(
                "wdrv_pu",
                drain=high_node,
                gate="0",
                source="vdd",
                parameters=devices.pull_up,
                nfins=fins,
            )
        )

        # VSS return path of the accessed cell.
        circuit.add(Resistor("rvss_rail", "vss_cell", "0", column.vss_rail_resistance_ohm))

        cell_nodes = CellNodes(
            bitline=bitline_ladder.far_node,
            bitline_bar=bitline_bar_ladder.far_node,
            wordline="wl",
            vdd="vdd",
            vss="vss_cell",
            internal_q="q",
            internal_qb="qb",
        )
        cell = build_cell("cell", cell_nodes, devices=devices)
        circuit.add_all(cell.elements)

        initial_voltages: Dict[str, float] = {"vdd": vdd, "wl": 0.0, "vss_cell": 0.0}
        low_nodes, high_nodes = (
            (bitline_ladder.node_names, bitline_bar_ladder.node_names)
            if write_value == 0
            else (bitline_bar_ladder.node_names, bitline_ladder.node_names)
        )
        for node_name in low_nodes:
            initial_voltages[node_name] = 0.0
        for node_name in high_nodes:
            initial_voltages[node_name] = vdd
        initial_voltages[precharge.enable_node] = vdd
        initial_voltages.update(cell.initial_conditions(vdd, 1 - write_value))

        return SRAMWriteCircuit(
            circuit=circuit,
            wordline_node="wl",
            q_node="q",
            qb_node="qb",
            write_value=write_value,
            initial_voltages=initial_voltages,
            segments=segments,
        )

    # -- transient write -----------------------------------------------------------

    def _transient_options_for(self, column: ColumnParasitics) -> TransientOptions:
        """A safe window from the column's time constants (write flavour).

        The flip itself is cell-internal and fast, but the far-end bit-line
        node has to recover through the full ladder resistance, so the
        window scales with the bit-line RC like the read window does.  The
        stop condition ends the run at the flip, so generosity costs
        nothing.
        """
        conditions = self.node.operating_conditions
        pass_gate = self.node.sram_devices.pass_gate
        drive_a = max(
            pass_gate.on_current_a(conditions.vdd_v, self.node.sram_devices.pass_gate_fins),
            1e-9,
        )
        total_c = column.bitline.total_capacitance_f
        estimate_s = total_c * conditions.vdd_v / drive_a
        rc_s = column.bitline.total_resistance_ohm * total_c
        t_stop = 20.0 * (estimate_s + rc_s) + 100e-12
        dt_max = max(min(t_stop / 200.0, 10e-12), 2e-13)
        base = self._base_transient_options
        if base is None:
            return TransientOptions(
                t_stop_s=t_stop,
                dt_initial_s=min(1e-13, dt_max / 10.0),
                dt_max_s=dt_max,
                method=(
                    self._transient_method
                    if self._transient_method is not None
                    else "backward-euler"
                ),
            )
        dt_max_s = min(base.dt_max_s, dt_max)
        dt_initial_s = min(base.dt_initial_s, dt_max_s)
        dt_min_s = min(base.dt_min_s, dt_initial_s)
        return TransientOptions(
            t_stop_s=t_stop,
            dt_initial_s=dt_initial_s,
            dt_min_s=dt_min_s,
            dt_max_s=dt_max_s,
            dt_growth=base.dt_growth,
            dt_shrink=base.dt_shrink,
            method=base.method,
            newton=base.newton,
            max_steps=base.max_steps,
            record_nodes=base.record_nodes,
        )

    def prepare_simulate_column(
        self,
        n_cells: int,
        column: ColumnParasitics,
        label: str,
        write_value: int = 0,
    ) -> PreparedWork:
        """One write measurement as prepared work (a single transient lane)."""
        write_circuit = self.build_circuit(n_cells, column, write_value)
        options = self._transient_options_for(column)
        template_key = (write_circuit.segments, write_value)
        solver = TransientSolver(
            write_circuit.circuit,
            options=options,
            jacobian_like=self._jacobian_template_cache.get(template_key),
        )
        self._jacobian_template_cache.setdefault(
            template_key, solver.solver_cache.template
        )

        conditions = self.node.operating_conditions
        vdd = conditions.vdd_v
        q, qb = write_circuit.q_node, write_circuit.qb_node
        sign = 1.0 if write_value == 0 else -1.0
        target = 0.8 * vdd

        def flip_complete(_time_s: float, voltages: Dict[str, float]) -> bool:
            return sign * (voltages[qb] - voltages[q]) >= target

        lane = TransientLaneSpec(
            solver,
            initial_voltages=write_circuit.initial_voltages,
            stop_condition=flip_complete,
        )

        def finish(results) -> WriteMeasurement:
            (result,) = results
            wordline_time = result.crossing_time_s(
                write_circuit.wordline_node,
                conditions.effective_wordline_voltage_v / 2.0,
                direction="rising",
            )
            flip_time = result.crossover_time_s(q, qb)
            if wordline_time is None:
                raise WriteSimulationError(
                    "the word line never rose; check the waveform setup"
                )
            if flip_time is None:
                raise WriteSimulationError(
                    f"the cell never flipped within {options.t_stop_s:.3e} s "
                    f"(label={label!r}, n={n_cells})"
                )
            return WriteMeasurement(
                n_cells=n_cells,
                label=label,
                write_value=write_value,
                write_delay_s=flip_time - wordline_time,
                wordline_time_s=wordline_time,
                flip_time_s=flip_time,
                bitline_resistance_ohm=column.bitline.total_resistance_ohm,
                bitline_capacitance_f=column.bitline.total_capacitance_f,
                vss_rail_resistance_ohm=column.vss_rail_resistance_ohm,
                stop_reason=result.stop_reason,
            )

        return PreparedWork(lanes=[lane], finish=finish)

    def simulate_column(
        self,
        n_cells: int,
        column: ColumnParasitics,
        label: str,
        write_value: int = 0,
        return_waveforms: bool = False,
    ):
        """Run one write and measure the write delay.

        Returns a :class:`WriteMeasurement`, or a ``(measurement, result)``
        tuple when ``return_waveforms`` is true.
        """
        prepared = self.prepare_simulate_column(
            n_cells, column, label, write_value=write_value
        )
        (lane,) = prepared.lanes
        result = lane.solver.run(
            initial_voltages=lane.initial_voltages,
            stop_condition=lane.stop_condition,
        )
        measurement = prepared.finish([result])
        if return_waveforms:
            return measurement, result
        return measurement

    # -- DC write margin -----------------------------------------------------------

    #: Sweep points of the write-margin continuation (10 mV at Vdd = 0.7 V).
    MARGIN_SWEEP_POINTS = 71

    #: Newton knobs of the DC sweeps.  The absolute tolerance sits above the
    #: finite-difference noise floor of the device Jacobians (nA versus the
    #: µA-scale currents of the trip region), where the default 1e-9 A can
    #: become unreachable for heavily distorted columns.
    DC_SWEEP_NEWTON = NewtonOptions(max_iterations=200, abs_tolerance_a=1e-8)

    def measure_margin(
        self,
        n_cells: int,
        column: Optional[ColumnParasitics] = None,
        write_value: int = 0,
        label: str = "nominal",
        points: Optional[int] = None,
    ) -> WriteMarginMeasurement:
        """DC write margin: the bit-line trip voltage of the continuation sweep.

        With the word line on and the opposite bit line held at Vdd, the
        write-side bit-line source is swept from Vdd down to 0 through the
        extracted bit-line resistance.  The margin is the source voltage at
        which the stored value flips — the slack left for a non-ideal
        driver.
        """
        if write_value not in (0, 1):
            raise WriteSimulationError("write_value must be 0 or 1")
        chosen = column if column is not None else self.column_parasitics(n_cells)
        conditions = self.node.operating_conditions
        vdd = conditions.vdd_v

        circuit = Circuit(title=f"sram-write-margin n={n_cells}")
        circuit.add(VoltageSource.dc("vdd", "vdd", "0", vdd))
        circuit.add(
            VoltageSource.dc("vwl", "wl", "0", conditions.effective_wordline_voltage_v)
        )
        # The written-low side sees the swept source behind the full
        # bit-line resistance (the ladder collapses to its series R in DC);
        # the high side is held at Vdd the same way.
        low_spec, high_spec = (
            (chosen.bitline, chosen.bitline_bar)
            if write_value == 0
            else (chosen.bitline_bar, chosen.bitline)
        )
        low_cell_node = "bl" if write_value == 0 else "blb"
        high_cell_node = "blb" if write_value == 0 else "bl"
        circuit.add(VoltageSource.dc("vwrite", "wsrc", "0", vdd))
        circuit.add(Resistor("rbl_low", "wsrc", low_cell_node, low_spec.total_resistance_ohm))
        circuit.add(VoltageSource.dc("vhold", "hsrc", "0", vdd))
        circuit.add(
            Resistor("rbl_high", "hsrc", high_cell_node, high_spec.total_resistance_ohm)
        )
        circuit.add(Resistor("rvss_rail", "vss_cell", "0", chosen.vss_rail_resistance_ohm))
        if chosen.vdd_rail_resistance_ohm > 0.0:
            circuit.add(
                Resistor("rvdd_rail", "vdd", "vdd_cell", chosen.vdd_rail_resistance_ohm)
            )
            cell_vdd = "vdd_cell"
        else:
            cell_vdd = "vdd"
        cell_nodes = CellNodes(
            bitline="bl",
            bitline_bar="blb",
            wordline="wl",
            vdd=cell_vdd,
            vss="vss_cell",
            internal_q="q",
            internal_qb="qb",
        )
        cell = build_cell("cell", cell_nodes, devices=self.node.sram_devices)
        circuit.add_all(cell.elements)

        stored = 1 - write_value
        initial = {
            "vdd": vdd,
            cell_vdd: vdd,
            "wl": conditions.effective_wordline_voltage_v,
            "wsrc": vdd,
            "hsrc": vdd,
            "bl": vdd,
            "blb": vdd,
            "vss_cell": 0.0,
        }
        initial.update(cell.initial_conditions(vdd, stored))

        n_points = points if points is not None else self.MARGIN_SWEEP_POINTS
        sweep = dc_sweep(
            circuit,
            "vwrite",
            np.linspace(vdd, 0.0, n_points),
            initial_voltages=initial,
            options=self.DC_SWEEP_NEWTON,
        )
        # The flip shows on the stored node: Q falls for a write 0, rises
        # for a write 1.
        watch, direction = ("q", "falling") if write_value == 0 else ("q", "rising")
        trip = sweep.crossing_value(watch, vdd / 2.0, direction=direction)
        flipped = trip is not None
        return WriteMarginMeasurement(
            n_cells=n_cells,
            label=label,
            write_value=write_value,
            margin_v=float(trip) if flipped else 0.0,
            flipped=flipped,
            vdd_v=vdd,
        )

    # -- public measurement entry points -------------------------------------------

    def prepare_nominal(self, n_cells: int, write_value: int = 0) -> PreparedWork:
        """Nominal write delay as prepared work; a memo hit carries zero lanes."""
        key = (n_cells, write_value)
        cached = self._nominal_measurement_cache.get(key)
        if cached is not None:
            return PreparedWork(lanes=[], finish=lambda _results: cached)
        column = self.column_parasitics(n_cells)
        prepared = self.prepare_simulate_column(
            n_cells, column, label="nominal", write_value=write_value
        )

        def memoize(measurement: WriteMeasurement) -> WriteMeasurement:
            self._nominal_measurement_cache[key] = measurement
            return measurement

        return prepared.mapped(memoize)

    def measure_nominal(self, n_cells: int, write_value: int = 0) -> WriteMeasurement:
        """Nominal write delay of an ``n_cells`` column (memoized)."""
        key = (n_cells, write_value)
        cached = self._nominal_measurement_cache.get(key)
        if cached is None:
            column = self.column_parasitics(n_cells)
            cached = self.simulate_column(
                n_cells, column, label="nominal", write_value=write_value
            )
            self._nominal_measurement_cache[key] = cached
        return cached

    def measure_nominal_margin(
        self, n_cells: int, write_value: int = 0
    ) -> WriteMarginMeasurement:
        """Nominal DC write margin (memoized like the delay)."""
        key = (n_cells, write_value)
        cached = self._nominal_margin_cache.get(key)
        if cached is None:
            cached = self.measure_margin(n_cells, write_value=write_value)
            self._nominal_margin_cache[key] = cached
        return cached

    def prepare_with_patterning(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        label: Optional[str] = None,
        write_value: int = 0,
    ) -> PreparedWork:
        """Printed-column write delay as prepared work."""
        extraction = self.geometry.printed_extraction(n_cells, option, parameters)
        column = self.column_parasitics(n_cells, extraction)
        return self.prepare_simulate_column(
            n_cells,
            column,
            label=label if label is not None else option.name,
            write_value=write_value,
        )

    def measure_with_patterning(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        label: Optional[str] = None,
        write_value: int = 0,
    ) -> WriteMeasurement:
        """Write delay with the column printed by ``option`` at ``parameters``."""
        extraction = self.geometry.printed_extraction(n_cells, option, parameters)
        column = self.column_parasitics(n_cells, extraction)
        return self.simulate_column(
            n_cells,
            column,
            label=label if label is not None else option.name,
            write_value=write_value,
        )

    def measure_margin_with_patterning(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        label: Optional[str] = None,
        write_value: int = 0,
    ) -> WriteMarginMeasurement:
        """DC write margin of the printed column."""
        extraction = self.geometry.printed_extraction(n_cells, option, parameters)
        column = self.column_parasitics(n_cells, extraction)
        return self.measure_margin(
            n_cells,
            column,
            write_value=write_value,
            label=label if label is not None else option.name,
        )

    def _scaled_column(
        self, n_cells: int, rvar: float, cvar: float, vss_rvar: float
    ) -> ColumnParasitics:
        column = self.column_parasitics(n_cells)
        return ColumnParasitics(
            bitline=column.bitline.scaled(rvar, cvar),
            bitline_bar=column.bitline_bar.scaled(rvar, cvar),
            vss_rail_resistance_ohm=column.vss_rail_resistance_ohm * vss_rvar,
            vdd_rail_resistance_ohm=column.vdd_rail_resistance_ohm * vss_rvar,
        )

    def measure_with_variation(
        self,
        n_cells: int,
        rvar: float,
        cvar: float,
        vss_rvar: float = 1.0,
        label: str = "scaled",
        write_value: int = 0,
    ) -> WriteMeasurement:
        """Write delay with the nominal column scaled by explicit RC ratios."""
        scaled = self._scaled_column(n_cells, rvar, cvar, vss_rvar)
        return self.simulate_column(n_cells, scaled, label=label, write_value=write_value)

    def prepare_with_variation(
        self,
        n_cells: int,
        rvar: float,
        cvar: float,
        vss_rvar: float = 1.0,
        label: str = "scaled",
        write_value: int = 0,
    ) -> PreparedWork:
        """Ratio-scaled write delay as prepared work (batched promotion path)."""
        scaled = self._scaled_column(n_cells, rvar, cvar, vss_rvar)
        return self.prepare_simulate_column(
            n_cells, scaled, label=label, write_value=write_value
        )

    def penalty_percent(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
    ) -> float:
        """Simulated write-delay penalty (%) of one option/corner vs nominal."""
        nominal = self.measure_nominal(n_cells)
        varied = self.measure_with_patterning(n_cells, option, parameters)
        return varied.penalty_percent_vs(nominal)
