"""Distributed bit-line (and supply-rail) RC models.

The bit line of an ``n``-word-line column is a long metal1 wire loaded by
``n`` off pass-gates.  For simulation it is represented as an RC ladder:
``segments`` sections, each carrying the wire resistance, the wire
capacitance (ground + coupling, both effectively to AC ground because the
bit-line neighbours are the VSS/VDD rails) and the front-end loading of
the cells it spans.

The per-cell R and C values come straight from the extraction
(:class:`~repro.extraction.field.WireParasitics`), so any patterning
distortion propagates into the ladder automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.elements import Capacitor, CircuitElement, Resistor
from ..extraction.field import WireParasitics


class BitlineModelError(ValueError):
    """Raised for inconsistent bit-line models."""


@dataclass(frozen=True)
class BitlineSpec:
    """Electrical description of one bit line before laddering.

    Parameters
    ----------
    n_cells:
        Number of cells (word lines) along the bit line.
    resistance_per_cell_ohm:
        Wire resistance contributed by one cell pitch.
    capacitance_per_cell_f:
        Wire capacitance (ground + coupling) contributed by one cell pitch.
    frontend_capacitance_per_cell_f:
        Off pass-gate junction capacitance per cell (the ``C_FE`` term).
    """

    n_cells: int
    resistance_per_cell_ohm: float
    capacitance_per_cell_f: float
    frontend_capacitance_per_cell_f: float

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise BitlineModelError("a bit line needs at least one cell")
        if self.resistance_per_cell_ohm <= 0.0:
            raise BitlineModelError("per-cell resistance must be positive")
        if self.capacitance_per_cell_f < 0.0 or self.frontend_capacitance_per_cell_f < 0.0:
            raise BitlineModelError("per-cell capacitances cannot be negative")

    @property
    def total_resistance_ohm(self) -> float:
        return self.resistance_per_cell_ohm * self.n_cells

    @property
    def total_capacitance_f(self) -> float:
        return (
            self.capacitance_per_cell_f + self.frontend_capacitance_per_cell_f
        ) * self.n_cells

    @property
    def wire_capacitance_f(self) -> float:
        return self.capacitance_per_cell_f * self.n_cells

    def elmore_delay_s(self) -> float:
        """Distributed-line Elmore delay (0.5·R·C) of the bare bit line."""
        return 0.5 * self.total_resistance_ohm * self.total_capacitance_f

    @classmethod
    def from_extraction(
        cls,
        parasitics: WireParasitics,
        n_cells: int,
        cell_length_nm: float,
        frontend_capacitance_per_cell_f: float,
    ) -> "BitlineSpec":
        """Build a spec from extracted per-unit-length wire parasitics."""
        if cell_length_nm <= 0.0:
            raise BitlineModelError("cell length must be positive")
        return cls(
            n_cells=n_cells,
            resistance_per_cell_ohm=parasitics.resistance_per_nm * cell_length_nm,
            capacitance_per_cell_f=parasitics.capacitance_per_nm.total * cell_length_nm,
            frontend_capacitance_per_cell_f=frontend_capacitance_per_cell_f,
        )

    def scaled(self, rvar: float, cvar: float) -> "BitlineSpec":
        """Apply relative R/C variation (ratios) to the *wire* parasitics.

        The front-end loading is a device quantity and is not affected by
        interconnect patterning.
        """
        if rvar <= 0.0 or cvar <= 0.0:
            raise BitlineModelError("variation ratios must be positive")
        return BitlineSpec(
            n_cells=self.n_cells,
            resistance_per_cell_ohm=self.resistance_per_cell_ohm * rvar,
            capacitance_per_cell_f=self.capacitance_per_cell_f * cvar,
            frontend_capacitance_per_cell_f=self.frontend_capacitance_per_cell_f,
        )


@dataclass
class BitlineLadder:
    """The RC-ladder realisation of a bit line.

    Attributes
    ----------
    node_names:
        The ladder nodes from the periphery (``index 0``, where precharge
        and sense amplifier sit) to the far end (where the accessed cell
        sits), ``segments + 1`` entries.
    elements:
        The resistors and capacitors of the ladder.
    """

    spec: BitlineSpec
    prefix: str
    segments: int
    node_names: List[str] = field(default_factory=list)
    elements: List[CircuitElement] = field(default_factory=list)

    @property
    def near_node(self) -> str:
        """Periphery-side node (precharge / sense amplifier)."""
        return self.node_names[0]

    @property
    def far_node(self) -> str:
        """Far-end node (worst-case accessed cell position)."""
        return self.node_names[-1]


def build_bitline_ladder(
    spec: BitlineSpec,
    prefix: str,
    segments: Optional[int] = None,
    max_segments: int = 64,
) -> BitlineLadder:
    """Discretise a bit line into an RC ladder.

    Parameters
    ----------
    spec:
        The electrical bit-line description.
    prefix:
        Node/element name prefix (``"bl"``, ``"blb"``...).
    segments:
        Number of ladder sections; defaults to ``min(n_cells, max_segments)``.
    max_segments:
        Cap on the automatic segment count — 64 sections model even a
        1024-cell line to well under a percent of delay error while keeping
        the matrices small.
    """
    if segments is None:
        segments = min(spec.n_cells, max_segments)
    if segments < 1:
        raise BitlineModelError("the ladder needs at least one segment")
    if segments > spec.n_cells:
        segments = spec.n_cells

    cells_per_segment = spec.n_cells / segments
    resistance_per_segment = spec.resistance_per_cell_ohm * cells_per_segment
    capacitance_per_segment = (
        spec.capacitance_per_cell_f + spec.frontend_capacitance_per_cell_f
    ) * cells_per_segment

    node_names = [f"{prefix}_{index}" for index in range(segments + 1)]
    elements: List[CircuitElement] = []
    # Half of the first segment's capacitance belongs to the periphery node
    # so the ladder approximates a distributed line (pi sections).
    elements.append(
        Capacitor(f"{prefix}_c0", node_names[0], "0", capacitance_per_segment / 2.0)
    )
    for index in range(segments):
        elements.append(
            Resistor(
                f"{prefix}_r{index}",
                node_names[index],
                node_names[index + 1],
                resistance_per_segment,
            )
        )
        # Interior nodes carry a full segment capacitance, the last node a half.
        value = capacitance_per_segment if index < segments - 1 else capacitance_per_segment / 2.0
        elements.append(
            Capacitor(f"{prefix}_c{index + 1}", node_names[index + 1], "0", value)
        )
    return BitlineLadder(
        spec=spec,
        prefix=prefix,
        segments=segments,
        node_names=node_names,
        elements=elements,
    )


def supply_rail_resistance_ohm(
    parasitics: WireParasitics, n_cells: int, cell_length_nm: float
) -> float:
    """Total resistance of a supply rail spanning ``n_cells`` cell pitches.

    Used for the VSS return path of the accessed cell: the paper's SADP
    analysis hinges on the anti-correlation between the bit-line and
    VSS-rail resistances, which only shows up when the VSS return path is
    part of the simulated netlist.
    """
    if n_cells < 1 or cell_length_nm <= 0.0:
        raise BitlineModelError("need at least one cell and a positive cell length")
    return parasitics.resistance_per_nm * cell_length_nm * n_cells
