"""High-level SRAM read simulation harness.

This module wires the whole flow together for one column of the DOE
arrays: generate the layout, (optionally) print it with a patterning
option, extract the bit-line pair and the VSS rail, build the read-path
circuit and run the transient until the sense amplifier fires.  The
figure of merit is the paper's ``td`` — the time from word-line activation
to the moment the differential bit-line voltage reaches the
sense-amplifier sensitivity — and the derived ``tdp`` penalty ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..circuit.batch import PreparedWork, TransientLaneSpec
from ..circuit.mna import JacobianTemplate
from ..circuit.transient import TransientOptions, TransientSolver
from ..circuit.waveform import TransientResult
from ..extraction.field import ExtractionResult
from ..extraction.lpe import ParameterizedLPE, RCVariation
from ..layout.array import SRAMArrayLayout, generate_array_layout
from ..layout.wire import NetRole
from ..patterning.base import ParameterValues, PatterningOption
from ..technology.node import TechnologyNode
from .array import ReadCircuitSpec, SRAMReadCircuit, build_read_circuit
from .bitline import BitlineSpec, supply_rail_resistance_ohm
from .cell import bitline_loading_per_unselected_cell_f


class ReadSimulationError(RuntimeError):
    """Raised when a read simulation cannot produce a td measurement."""


@dataclass(frozen=True)
class ReadMeasurement:
    """Outcome of one read simulation."""

    n_cells: int
    label: str
    td_s: float
    wordline_time_s: float
    sense_time_s: float
    bitline_resistance_ohm: float
    bitline_capacitance_f: float
    vss_rail_resistance_ohm: float
    stop_reason: str

    @property
    def td_ps(self) -> float:
        return self.td_s * 1e12

    def penalty_vs(self, nominal: "ReadMeasurement") -> float:
        """Read-time penalty ``tdp`` relative to a nominal measurement.

        Returned as a ratio (1.0 = no penalty), matching the paper's
        definition ``td(varied) / td(nominal)``.
        """
        if nominal.td_s <= 0.0:
            raise ReadSimulationError("nominal td must be positive")
        return self.td_s / nominal.td_s

    def penalty_percent_vs(self, nominal: "ReadMeasurement") -> float:
        return (self.penalty_vs(nominal) - 1.0) * 100.0


@dataclass
class ColumnParasitics:
    """Extracted per-column electrical quantities feeding the circuits.

    The read circuit uses the bit-line pair and the VSS return path; the
    write and noise-margin circuits additionally see the VDD rail
    resistance (supply droop under the cell's crowbar / read current).
    """

    bitline: BitlineSpec
    bitline_bar: BitlineSpec
    vss_rail_resistance_ohm: float
    vdd_rail_resistance_ohm: float = 0.0


class ReadPathSimulator:
    """Simulates worst-case reads of the DOE columns.

    Parameters
    ----------
    node:
        Technology node (devices, metal stack, operating conditions,
        variation assumptions).
    n_bitline_pairs:
        Word length of the arrays (10 in the paper); only the central pair
        is simulated but the full pattern is extracted so edge effects do
        not contaminate it.
    max_segments:
        Maximum RC-ladder sections per bit line.
    vss_strap_interval_cells:
        Distance (in cells) between VSS straps along the array: the VSS
        return path of the accessed cell runs on metal1 only up to the
        nearest strap, so its resistance saturates at
        ``strap_interval × R_vss_per_cell`` for long arrays.  256 cells is
        a conservative strap pitch for an un-meshed test macro.
    transient_options:
        Optional overrides of the transient-solver settings (the time
        window and step limits are always derived from the array size).
    transient_method:
        Integration method for the *derived* options path
        (``"backward-euler"`` or ``"trapezoidal"``).  Unlike passing a
        ``transient_options`` override, this changes only the integrator —
        the step-size policy stays the derived one, so method comparisons
        are not confounded by different dt knobs.  Ignored when
        ``transient_options`` is given (the override's method wins).
    """

    def __init__(
        self,
        node: TechnologyNode,
        n_bitline_pairs: int = 10,
        max_segments: int = 64,
        vss_strap_interval_cells: int = 256,
        transient_options: Optional[TransientOptions] = None,
        transient_method: Optional[str] = None,
    ) -> None:
        if vss_strap_interval_cells < 1:
            raise ReadSimulationError("the VSS strap interval must be at least one cell")
        if transient_method not in (None, "backward-euler", "trapezoidal"):
            raise ReadSimulationError(
                "transient_method must be 'backward-euler' or 'trapezoidal'"
            )
        self.node = node
        self.n_bitline_pairs = n_bitline_pairs
        self.max_segments = max_segments
        self.vss_strap_interval_cells = vss_strap_interval_cells
        self._base_transient_options = transient_options
        self._transient_method = transient_method
        self._lpe = ParameterizedLPE(node)
        self._layout_cache: Dict[int, SRAMArrayLayout] = {}
        self._nominal_extraction_cache: Dict[int, ExtractionResult] = {}
        # Printed-pattern extractions keyed by (n_cells, option, corner):
        # corner sweeps (Fig. 4 + Table III share the same worst corners)
        # re-print and re-extract identical layouts otherwise.
        self._printed_extraction_cache: Dict[
            Tuple[int, str, Tuple[Tuple[str, float], ...]], ExtractionResult
        ] = {}
        # Nominal read measurements keyed by (n_cells, stored_value), so a
        # corner sweep pays for the nominal simulation once per size.
        self._nominal_measurement_cache: Dict[Tuple[int, int], ReadMeasurement] = {}
        # Jacobian CSC structures keyed by circuit topology: corners of the
        # same ladder only change stamp values, not the sparsity pattern.
        self._jacobian_template_cache: Dict[Tuple[int, int], JacobianTemplate] = {}

    #: Printed extractions kept before the cache resets (a full paper DOE
    #: sweep touches |sizes| x |options| = 12 distinct corners).
    PRINTED_CACHE_SIZE = 64

    def invalidate_caches(self) -> None:
        """Drop every memoized layout, extraction, measurement and template.

        Call after mutating anything the caches depend on (the node is
        treated as immutable by this class, so normal use never needs it).
        """
        self._layout_cache.clear()
        self._nominal_extraction_cache.clear()
        self._printed_extraction_cache.clear()
        self._nominal_measurement_cache.clear()
        self._jacobian_template_cache.clear()
        self._lpe = ParameterizedLPE(self.node)

    def adopt_shared_caches(self, donor: "ReadPathSimulator") -> None:
        """Share the geometry-derived caches with another simulator.

        Layouts, extractions and Jacobian structures depend only on the node
        and the array geometry, so simulators that differ in simulation
        settings (VSS strap interval, transient method, stored value) can
        reuse them.  The nominal *measurement* cache is deliberately not
        shared — measurements do depend on those settings.  Used by the
        campaign engine so scenario variants extract each layout once.
        """
        if donor.node is not self.node or donor.n_bitline_pairs != self.n_bitline_pairs:
            raise ReadSimulationError(
                "cache sharing requires the same node and array word length"
            )
        self._lpe = donor._lpe
        self._layout_cache = donor._layout_cache
        self._nominal_extraction_cache = donor._nominal_extraction_cache
        self._printed_extraction_cache = donor._printed_extraction_cache
        if donor.max_segments == self.max_segments:
            self._jacobian_template_cache = donor._jacobian_template_cache

    # -- layout & extraction helpers ------------------------------------------------

    @property
    def lpe(self) -> ParameterizedLPE:
        """The patterning-aware extraction driver used by this simulator."""
        return self._lpe

    def layout_for(self, n_cells: int) -> SRAMArrayLayout:
        if n_cells not in self._layout_cache:
            self._layout_cache[n_cells] = generate_array_layout(
                n_wordlines=n_cells,
                n_bitline_pairs=self.n_bitline_pairs,
                node=self.node,
            )
        return self._layout_cache[n_cells]

    def nominal_extraction(self, n_cells: int) -> ExtractionResult:
        if n_cells not in self._nominal_extraction_cache:
            layout = self.layout_for(n_cells)
            self._nominal_extraction_cache[n_cells] = self._lpe.extract_pattern(
                layout.metal1_pattern
            )
        return self._nominal_extraction_cache[n_cells]

    def _column_nets(self, layout: SRAMArrayLayout) -> Tuple[str, str, str, str]:
        """Net names of the central column's BL, BLB, VSS and VDD rails."""
        return layout.central_column_nets()

    def column_parasitics(
        self, n_cells: int, extraction: Optional[ExtractionResult] = None
    ) -> ColumnParasitics:
        """Build the column's electrical description from an extraction.

        ``extraction`` defaults to the nominal one; pass a printed-pattern
        extraction to obtain the patterning-distorted column.
        """
        layout = self.layout_for(n_cells)
        chosen = extraction if extraction is not None else self.nominal_extraction(n_cells)
        bl_net, blb_net, vss_net, vdd_net = self._column_nets(layout)
        cell_length = layout.cell.cell_length_nm
        frontend = bitline_loading_per_unselected_cell_f(self.node.sram_devices)

        bitline = BitlineSpec.from_extraction(
            chosen[bl_net], n_cells, cell_length, frontend
        )
        bitline_bar = BitlineSpec.from_extraction(
            chosen[blb_net], n_cells, cell_length, frontend
        )
        vss_span_cells = min(n_cells, self.vss_strap_interval_cells)
        vss_resistance = supply_rail_resistance_ohm(
            chosen[vss_net], vss_span_cells, cell_length
        )
        vdd_resistance = supply_rail_resistance_ohm(
            chosen[vdd_net], vss_span_cells, cell_length
        )
        return ColumnParasitics(
            bitline=bitline,
            bitline_bar=bitline_bar,
            vss_rail_resistance_ohm=vss_resistance,
            vdd_rail_resistance_ohm=vdd_resistance,
        )

    # -- circuit construction and simulation --------------------------------------------

    def _transient_options_for(self, column: ColumnParasitics) -> TransientOptions:
        """Derive a safe simulation window from the column's time constants."""
        conditions = self.node.operating_conditions
        pass_gate = self.node.sram_devices.pass_gate
        drive_a = max(
            pass_gate.on_current_a(conditions.vdd_v, self.node.sram_devices.pass_gate_fins),
            1e-9,
        )
        total_c = column.bitline.total_capacitance_f
        # Current-limited estimate of the time to build the sense margin,
        # padded for the RC tail, the VSS bounce and the word-line delay.
        estimate_s = total_c * conditions.sense_amp_sensitivity_v / drive_a
        rc_s = column.bitline.total_resistance_ohm * total_c
        t_stop = 20.0 * (estimate_s + rc_s) + 100e-12
        base = self._base_transient_options
        dt_max = max(min(t_stop / 200.0, 10e-12), 2e-13)
        if base is None:
            return TransientOptions(
                t_stop_s=t_stop,
                dt_initial_s=min(1e-13, dt_max / 10.0),
                dt_max_s=dt_max,
                method=(
                    self._transient_method
                    if self._transient_method is not None
                    else "backward-euler"
                ),
            )
        # The derived cap can undercut the user's dt_initial/dt_min, so both
        # must be clamped into the tightened window or TransientOptions
        # rejects the combination for small arrays.
        dt_max_s = min(base.dt_max_s, dt_max)
        dt_initial_s = min(base.dt_initial_s, dt_max_s)
        dt_min_s = min(base.dt_min_s, dt_initial_s)
        return TransientOptions(
            t_stop_s=t_stop,
            dt_initial_s=dt_initial_s,
            dt_min_s=dt_min_s,
            dt_max_s=dt_max_s,
            dt_growth=base.dt_growth,
            dt_shrink=base.dt_shrink,
            method=base.method,
            newton=base.newton,
            max_steps=base.max_steps,
            record_nodes=base.record_nodes,
        )

    def build_circuit(
        self,
        n_cells: int,
        column: ColumnParasitics,
        stored_value: int = 0,
    ) -> SRAMReadCircuit:
        spec = ReadCircuitSpec(
            n_cells=n_cells,
            bitline=column.bitline,
            bitline_bar=column.bitline_bar,
            vss_rail_resistance_ohm=column.vss_rail_resistance_ohm,
            devices=self.node.sram_devices,
            conditions=self.node.operating_conditions,
            stored_value=stored_value,
            segments=min(n_cells, self.max_segments),
        )
        return build_read_circuit(spec)

    def prepare_simulate_column(
        self,
        n_cells: int,
        column: ColumnParasitics,
        label: str,
        stored_value: int = 0,
    ) -> PreparedWork:
        """One read measurement as prepared work (a single transient lane)."""
        read_circuit = self.build_circuit(n_cells, column, stored_value)
        options = self._transient_options_for(column)
        # Corners of the same topology (segment count + stored value) share
        # one Jacobian sparsity structure; only the stamp values differ.
        template_key = (min(n_cells, self.max_segments), stored_value)
        solver = TransientSolver(
            read_circuit.circuit,
            options=options,
            jacobian_like=self._jacobian_template_cache.get(template_key),
        )
        self._jacobian_template_cache.setdefault(
            template_key, solver.solver_cache.template
        )
        lane = TransientLaneSpec(
            solver,
            initial_voltages=read_circuit.initial_voltages,
            stop_condition=read_circuit.sense.stop_condition(),
        )

        def finish(results) -> ReadMeasurement:
            (result,) = results
            conditions = self.node.operating_conditions
            wordline_time = result.crossing_time_s(
                read_circuit.wordline_node,
                conditions.effective_wordline_voltage_v / 2.0,
                direction="rising",
            )
            sense_time = read_circuit.sense.firing_time_s(result)
            if wordline_time is None:
                raise ReadSimulationError(
                    "the word line never rose; check the waveform setup"
                )
            if sense_time is None:
                raise ReadSimulationError(
                    f"the sense threshold was never reached within "
                    f"{options.t_stop_s:.3e} s (label={label!r}, n={n_cells})"
                )
            return ReadMeasurement(
                n_cells=n_cells,
                label=label,
                td_s=sense_time - wordline_time,
                wordline_time_s=wordline_time,
                sense_time_s=sense_time,
                bitline_resistance_ohm=column.bitline.total_resistance_ohm,
                bitline_capacitance_f=column.bitline.total_capacitance_f,
                vss_rail_resistance_ohm=column.vss_rail_resistance_ohm,
                stop_reason=result.stop_reason,
            )

        return PreparedWork(lanes=[lane], finish=finish)

    def simulate_column(
        self,
        n_cells: int,
        column: ColumnParasitics,
        label: str,
        stored_value: int = 0,
        return_waveforms: bool = False,
    ):
        """Run one read and measure td.

        Returns a :class:`ReadMeasurement`, or a ``(measurement, result)``
        tuple when ``return_waveforms`` is true.
        """
        prepared = self.prepare_simulate_column(
            n_cells, column, label, stored_value=stored_value
        )
        (lane,) = prepared.lanes
        result = lane.solver.run(
            initial_voltages=lane.initial_voltages,
            stop_condition=lane.stop_condition,
        )
        measurement = prepared.finish([result])
        if return_waveforms:
            return measurement, result
        return measurement

    # -- public measurement entry points ----------------------------------------------------

    def measure_nominal(self, n_cells: int, stored_value: int = 0) -> ReadMeasurement:
        """Nominal read time of an ``n_cells`` column (no patterning variation).

        Memoized per ``(n_cells, stored_value)``: corner sweeps compare many
        printed columns against the same nominal, which therefore simulates
        once.  :meth:`invalidate_caches` drops the memo together with the
        extraction caches.
        """
        key = (n_cells, stored_value)
        cached = self._nominal_measurement_cache.get(key)
        if cached is None:
            column = self.column_parasitics(n_cells)
            cached = self.simulate_column(
                n_cells, column, label="nominal", stored_value=stored_value
            )
            self._nominal_measurement_cache[key] = cached
        return cached

    def prepare_nominal(self, n_cells: int, stored_value: int = 0) -> PreparedWork:
        """Nominal read time as prepared work; a memo hit carries zero lanes."""
        key = (n_cells, stored_value)
        cached = self._nominal_measurement_cache.get(key)
        if cached is not None:
            return PreparedWork(lanes=[], finish=lambda _results: cached)
        column = self.column_parasitics(n_cells)
        prepared = self.prepare_simulate_column(
            n_cells, column, label="nominal", stored_value=stored_value
        )

        def memoize(measurement: ReadMeasurement) -> ReadMeasurement:
            self._nominal_measurement_cache[key] = measurement
            return measurement

        return prepared.mapped(memoize)

    def printed_extraction(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
    ) -> ExtractionResult:
        """Extraction of the column printed by ``option`` at ``parameters``.

        Memoized per ``(n_cells, option, corner)`` so the studies that visit
        the same worst-case corner repeatedly (Fig. 4 and Table III share
        corners) print and extract each layout once.
        """
        key = (
            n_cells,
            option.name,
            tuple(sorted((name, float(value)) for name, value in parameters.items())),
        )
        cached = self._printed_extraction_cache.get(key)
        if cached is None:
            layout = self.layout_for(n_cells)
            patterned = option.apply(layout.metal1_pattern, parameters)
            cached = self._lpe.extract_pattern(patterned.printed)
            if len(self._printed_extraction_cache) >= self.PRINTED_CACHE_SIZE:
                self._printed_extraction_cache.clear()
            self._printed_extraction_cache[key] = cached
        return cached

    def prepare_with_patterning(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        label: Optional[str] = None,
        stored_value: int = 0,
    ) -> PreparedWork:
        """Printed-column read time as prepared work."""
        extraction = self.printed_extraction(n_cells, option, parameters)
        column = self.column_parasitics(n_cells, extraction)
        return self.prepare_simulate_column(
            n_cells,
            column,
            label=label if label is not None else option.name,
            stored_value=stored_value,
        )

    def measure_with_patterning(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        label: Optional[str] = None,
        stored_value: int = 0,
    ) -> ReadMeasurement:
        """Read time with the column printed by ``option`` at ``parameters``."""
        extraction = self.printed_extraction(n_cells, option, parameters)
        column = self.column_parasitics(n_cells, extraction)
        return self.simulate_column(
            n_cells,
            column,
            label=label if label is not None else option.name,
            stored_value=stored_value,
        )

    def _scaled_column(
        self, n_cells: int, rvar: float, cvar: float, vss_rvar: float
    ) -> ColumnParasitics:
        column = self.column_parasitics(n_cells)
        return ColumnParasitics(
            bitline=column.bitline.scaled(rvar, cvar),
            bitline_bar=column.bitline_bar.scaled(rvar, cvar),
            vss_rail_resistance_ohm=column.vss_rail_resistance_ohm * vss_rvar,
            vdd_rail_resistance_ohm=column.vdd_rail_resistance_ohm * vss_rvar,
        )

    def measure_with_variation(
        self,
        n_cells: int,
        rvar: float,
        cvar: float,
        vss_rvar: float = 1.0,
        label: str = "scaled",
    ) -> ReadMeasurement:
        """Read time with the nominal column scaled by explicit RC ratios.

        This is the fast path used for cross-checking the analytical
        formula: instead of re-extracting a printed layout, the nominal
        bit-line R and C are multiplied by ``rvar``/``cvar`` (and the VSS
        rail by ``vss_rvar``).
        """
        scaled = self._scaled_column(n_cells, rvar, cvar, vss_rvar)
        return self.simulate_column(n_cells, scaled, label=label)

    def prepare_with_variation(
        self,
        n_cells: int,
        rvar: float,
        cvar: float,
        vss_rvar: float = 1.0,
        label: str = "scaled",
    ) -> PreparedWork:
        """Ratio-scaled read time as prepared work.

        The high-sigma engine promotes surrogate-uncertain Monte-Carlo
        draws through this: many scaled columns become lanes in one
        batched transient solve instead of a per-sample loop.
        """
        scaled = self._scaled_column(n_cells, rvar, cvar, vss_rvar)
        return self.prepare_simulate_column(n_cells, scaled, label=label)

    def penalty_percent(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
    ) -> float:
        """Convenience: simulated tdp (%) of one option/corner versus nominal."""
        nominal = self.measure_nominal(n_cells)
        varied = self.measure_with_patterning(n_cells, option, parameters)
        return varied.penalty_percent_vs(nominal)
