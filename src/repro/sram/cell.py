"""The 6T SRAM cell as a circuit sub-block.

The cell of Fig. 1a: two cross-coupled inverters (pull-up PMOS + pull-down
NMOS) plus two NMOS pass-gates connecting the internal nodes to the
bit-line pair under word-line control.  The builder returns the circuit
elements (transistors plus their lumped terminal capacitances) with
caller-chosen node names so the array builder can instantiate the cell
anywhere along the bit line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.elements import Capacitor, CircuitElement
from ..circuit.mosfet import MOSFET
from ..technology.transistors import SRAMTransistorSet, default_sram_transistors


class CellCircuitError(ValueError):
    """Raised for inconsistent cell instantiations."""


@dataclass(frozen=True)
class CellNodes:
    """Node names of one 6T cell instance."""

    bitline: str
    bitline_bar: str
    wordline: str
    vdd: str
    vss: str
    internal_q: str
    internal_qb: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "BL": self.bitline,
            "BLB": self.bitline_bar,
            "WL": self.wordline,
            "VDD": self.vdd,
            "VSS": self.vss,
            "Q": self.internal_q,
            "QB": self.internal_qb,
        }


@dataclass
class SRAMCellCircuit:
    """The elements of one instantiated 6T cell."""

    name: str
    nodes: CellNodes
    devices: SRAMTransistorSet
    elements: List[CircuitElement] = field(default_factory=list)

    def initial_conditions(self, vdd_v: float, stored_value: int) -> Dict[str, float]:
        """Internal-node initial voltages for a stored ``0`` or ``1``.

        ``stored_value`` is the logic value on the Q (bit-line side) node:
        reading a stored 0 discharges BL, reading a stored 1 discharges BLB.
        """
        if stored_value not in (0, 1):
            raise CellCircuitError("stored_value must be 0 or 1")
        q = 0.0 if stored_value == 0 else vdd_v
        qb = vdd_v - q
        return {self.nodes.internal_q: q, self.nodes.internal_qb: qb}


def build_cell(
    name: str,
    nodes: CellNodes,
    devices: Optional[SRAMTransistorSet] = None,
    include_terminal_capacitances: bool = True,
) -> SRAMCellCircuit:
    """Build the six transistors (and terminal capacitances) of one cell.

    Parameters
    ----------
    name:
        Instance prefix; element names become ``<name>_pg1`` etc.
    nodes:
        The external and internal node names of this instance.
    devices:
        Device flavours and fin counts; defaults to the N10 high-density
        1-1-1 set.
    include_terminal_capacitances:
        When true, the per-terminal lumped device capacitances are added as
        explicit grounded capacitors (they represent the gate and junction
        loading of the cell).
    """
    chosen = devices if devices is not None else default_sram_transistors()
    elements: List[CircuitElement] = []

    pass_gate_1 = MOSFET(
        f"{name}_pg1",
        drain=nodes.bitline,
        gate=nodes.wordline,
        source=nodes.internal_q,
        parameters=chosen.pass_gate,
        nfins=chosen.pass_gate_fins,
    )
    pass_gate_2 = MOSFET(
        f"{name}_pg2",
        drain=nodes.bitline_bar,
        gate=nodes.wordline,
        source=nodes.internal_qb,
        parameters=chosen.pass_gate,
        nfins=chosen.pass_gate_fins,
    )
    pull_down_1 = MOSFET(
        f"{name}_pd1",
        drain=nodes.internal_q,
        gate=nodes.internal_qb,
        source=nodes.vss,
        parameters=chosen.pull_down,
        nfins=chosen.pull_down_fins,
    )
    pull_down_2 = MOSFET(
        f"{name}_pd2",
        drain=nodes.internal_qb,
        gate=nodes.internal_q,
        source=nodes.vss,
        parameters=chosen.pull_down,
        nfins=chosen.pull_down_fins,
    )
    pull_up_1 = MOSFET(
        f"{name}_pu1",
        drain=nodes.internal_q,
        gate=nodes.internal_qb,
        source=nodes.vdd,
        parameters=chosen.pull_up,
        nfins=chosen.pull_up_fins,
    )
    pull_up_2 = MOSFET(
        f"{name}_pu2",
        drain=nodes.internal_qb,
        gate=nodes.internal_q,
        source=nodes.vdd,
        parameters=chosen.pull_up,
        nfins=chosen.pull_up_fins,
    )
    transistors = [pass_gate_1, pass_gate_2, pull_down_1, pull_down_2, pull_up_1, pull_up_2]
    elements.extend(transistors)

    if include_terminal_capacitances:
        # Lump each device's terminal capacitances to ground; skip supply
        # and ground terminals (they are at fixed potential anyway).
        node_caps: Dict[str, float] = {}
        for device in transistors:
            for node, value in device.terminal_capacitances_f().items():
                if node in (nodes.vdd, nodes.vss):
                    continue
                node_caps[node] = node_caps.get(node, 0.0) + value
        for index, (node, value) in enumerate(sorted(node_caps.items())):
            if value > 0.0:
                elements.append(
                    Capacitor(f"{name}_cload{index}", node, "0", value)
                )

    return SRAMCellCircuit(name=name, nodes=nodes, devices=chosen, elements=elements)


def bitline_loading_per_unselected_cell_f(
    devices: Optional[SRAMTransistorSet] = None,
) -> float:
    """Bit-line load added by one *unselected* cell (off pass-gate drain).

    This is the ``C_FE`` of the paper's analytical formula (eq. 4): every
    cell on the bit line loads it with the junction capacitance of its off
    pass-gate, whether or not it is accessed.
    """
    chosen = devices if devices is not None else default_sram_transistors()
    return chosen.bitline_loading_capacitance_f()
