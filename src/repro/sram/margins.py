"""Static noise margins of the 6T cell via DC butterfly curves.

Hold and read static noise margins (SNM) of the variation-extracted cell,
computed with the classic Seevinck largest-square method:

1. the cross-coupled loop is broken by driving one internal node with a
   swept DC source (:func:`repro.circuit.dc.dc_sweep` provides the
   continuation) and recording the other — one voltage-transfer curve per
   orientation;
2. the two curves form the butterfly plot; each lobe's largest inscribed
   square is found by matching points of the two curves along the
   45-degree diagonal (equal ``x + y``), where the square's corners sit on
   the curves and its side is the x-distance between them;
3. the SNM is the smaller lobe's square side.

Interconnect patterning enters through the extracted column parasitics:

* the **VSS and VDD rail resistances** — the cell's crowbar / read current
  drops real voltage across them, compressing the VTC swing (this is what
  makes the *hold* SNM degrade as patterning variation grows);
* the **bit-line resistances** (read mode only) — the accessed cell sees
  the precharged bit lines through the extracted series resistance, which
  sets how hard the read disturb fights the pull-downs.

The analyzer composes a :class:`~repro.sram.read_path.ReadPathSimulator`
for the geometry stack, so campaigns mixing operations extract each
layout once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuit.batch import PreparedWork, SweepLaneSpec
from ..circuit.dc import NewtonOptions
from ..circuit.elements import Resistor, VoltageSource
from ..circuit.netlist import Circuit
from ..patterning.base import ParameterValues, PatterningOption
from ..technology.node import TechnologyNode
from .cell import CellNodes, build_cell
from .read_path import ColumnParasitics, ReadPathSimulator

#: The two supported butterfly modes.
MARGIN_MODES = ("hold", "read")


class MarginAnalysisError(RuntimeError):
    """Raised when a noise-margin analysis cannot be evaluated."""


@dataclass(frozen=True)
class ButterflyCurves:
    """The two voltage-transfer curves of one butterfly measurement.

    ``input_v`` is the swept grid; ``qb_of_q`` is V(QB) with Q driven,
    ``q_of_qb`` is V(Q) with QB driven (both sampled on the same grid).
    """

    mode: str
    input_v: np.ndarray
    qb_of_q: np.ndarray
    q_of_qb: np.ndarray

    def lobe_sides_v(self) -> Tuple[float, float]:
        """Largest-square side of each butterfly lobe (Seevinck's method).

        Curve A is ``(u, qb_of_q(u))``; curve B is the mirrored second VTC
        ``(q_of_qb(u), u)``.  An axis-parallel square inscribed in a lobe
        touches one curve with its top-right corner and the other with its
        bottom-left corner; those two corners share the rotated coordinate
        ``x − y`` (both VTCs are monotone in it, so the matching is
        single-valued) and their separation along ``x + y`` is ``2·side``
        (each corner contributes ``side`` in both x and y).  Half the
        maximum positive separation is one lobe's square side, half the
        maximum negative separation the other's.
        """
        x_a = np.asarray(self.input_v, dtype=float)
        y_a = np.asarray(self.qb_of_q, dtype=float)
        x_b = np.asarray(self.q_of_qb, dtype=float)
        y_b = np.asarray(self.input_v, dtype=float)

        u_a = x_a - y_a                      # monotone increasing along A
        v_a = x_a + y_a
        u_b = x_b - y_b                      # monotone decreasing along B
        v_b = x_b + y_b
        order = np.argsort(u_b)
        u_b, v_b = u_b[order], v_b[order]

        lo = max(float(u_a.min()), float(u_b.min()))
        hi = min(float(u_a.max()), float(u_b.max()))
        if hi <= lo:
            return 0.0, 0.0
        grid = np.linspace(lo, hi, 4 * x_a.size)
        separation = np.interp(grid, u_a, v_a) - np.interp(grid, u_b, v_b)
        lobe_positive = float(max(np.max(separation), 0.0)) / 2.0
        lobe_negative = float(max(np.max(-separation), 0.0)) / 2.0
        return lobe_positive, lobe_negative

    def snm_v(self) -> float:
        """The cell's SNM: the smaller lobe's largest-square side."""
        return min(self.lobe_sides_v())


@dataclass(frozen=True)
class MarginMeasurement:
    """Outcome of one noise-margin analysis."""

    n_cells: int
    label: str
    mode: str
    snm_v: float
    lobe1_v: float
    lobe2_v: float
    bitline_resistance_ohm: float
    bitline_bar_resistance_ohm: float
    vss_rail_resistance_ohm: float
    vdd_rail_resistance_ohm: float

    @property
    def snm_mv(self) -> float:
        return self.snm_v * 1e3

    def degradation_percent_vs(self, nominal: "MarginMeasurement") -> float:
        """SNM loss versus a nominal measurement, in percent (positive = worse)."""
        if nominal.snm_v <= 0.0:
            raise MarginAnalysisError("nominal SNM must be positive")
        return (1.0 - self.snm_v / nominal.snm_v) * 100.0


class SRAMMarginAnalyzer:
    """Hold / read SNM of the DOE columns under patterning variability.

    Parameters mirror :class:`ReadPathSimulator`; ``geometry`` optionally
    supplies a read simulator whose layout / extraction caches are shared.
    """

    #: Sweep points per VTC (5 mV at Vdd = 0.7 V).
    SWEEP_POINTS = 141

    #: Newton knobs of the butterfly sweeps (see WritePathSimulator).
    DC_SWEEP_NEWTON = NewtonOptions(max_iterations=200, abs_tolerance_a=1e-8)

    def __init__(
        self,
        node: TechnologyNode,
        n_bitline_pairs: int = 10,
        max_segments: int = 64,
        vss_strap_interval_cells: int = 256,
        geometry: Optional[ReadPathSimulator] = None,
    ) -> None:
        if geometry is not None and (
            geometry.node is not node
            or geometry.n_bitline_pairs != n_bitline_pairs
            or geometry.vss_strap_interval_cells != vss_strap_interval_cells
        ):
            raise MarginAnalysisError(
                "the geometry donor must share the node, array word length "
                "and VSS strap interval"
            )
        self.node = node
        self.n_bitline_pairs = n_bitline_pairs
        self.geometry = (
            geometry
            if geometry is not None
            else ReadPathSimulator(
                node,
                n_bitline_pairs=n_bitline_pairs,
                max_segments=max_segments,
                vss_strap_interval_cells=vss_strap_interval_cells,
            )
        )
        # Nominal margins keyed by (n_cells, mode).
        self._nominal_cache: Dict[Tuple[int, str], MarginMeasurement] = {}

    def invalidate_caches(self) -> None:
        """Drop the nominal-margin memo (geometry caches live on the donor)."""
        self._nominal_cache.clear()

    def column_parasitics(self, n_cells: int, extraction=None) -> ColumnParasitics:
        return self.geometry.column_parasitics(n_cells, extraction)

    # -- circuit construction ------------------------------------------------------

    def _build_butterfly_circuit(
        self,
        column: ColumnParasitics,
        mode: str,
        driven_node: str,
    ) -> Tuple[Circuit, Dict[str, float]]:
        """The broken-loop cell circuit with ``driven_node`` behind vsweep."""
        if mode not in MARGIN_MODES:
            raise MarginAnalysisError(f"mode must be one of {MARGIN_MODES}")
        if driven_node not in ("q", "qb"):
            raise MarginAnalysisError("the driven node must be 'q' or 'qb'")
        conditions = self.node.operating_conditions
        vdd = conditions.vdd_v
        vwl = conditions.effective_wordline_voltage_v if mode == "read" else 0.0
        vpre = conditions.effective_precharge_voltage_v

        circuit = Circuit(title=f"sram-{mode}-snm")
        circuit.add(VoltageSource.dc("vdd", "vdd", "0", vdd))
        circuit.add(VoltageSource.dc("vwl", "wl", "0", vwl))
        # The bit lines are held at the precharge level behind their full
        # extracted series resistance (the ladder collapses to it in DC).
        circuit.add(VoltageSource.dc("vbl", "bl_src", "0", vpre))
        circuit.add(
            Resistor("rbl", "bl_src", "bl", column.bitline.total_resistance_ohm)
        )
        circuit.add(VoltageSource.dc("vblb", "blb_src", "0", vpre))
        circuit.add(
            Resistor("rblb", "blb_src", "blb", column.bitline_bar.total_resistance_ohm)
        )
        circuit.add(
            Resistor("rvss_rail", "vss_cell", "0", column.vss_rail_resistance_ohm)
        )
        if column.vdd_rail_resistance_ohm > 0.0:
            circuit.add(
                Resistor("rvdd_rail", "vdd", "vdd_cell", column.vdd_rail_resistance_ohm)
            )
            cell_vdd = "vdd_cell"
        else:
            cell_vdd = "vdd"
        cell_nodes = CellNodes(
            bitline="bl",
            bitline_bar="blb",
            wordline="wl",
            vdd=cell_vdd,
            vss="vss_cell",
            internal_q="q",
            internal_qb="qb",
        )
        cell = build_cell("cell", cell_nodes, devices=self.node.sram_devices)
        circuit.add_all(cell.elements)
        circuit.add(VoltageSource.dc("vsweep", driven_node, "0", 0.0))

        other = "qb" if driven_node == "q" else "q"
        initial = {
            "vdd": vdd,
            cell_vdd: vdd,
            "wl": vwl,
            "bl_src": vpre,
            "blb_src": vpre,
            "bl": vpre,
            "blb": vpre,
            "vss_cell": 0.0,
            driven_node: 0.0,
            other: vdd,
        }
        return circuit, initial

    # -- butterfly measurement -----------------------------------------------------

    def _prepare_butterfly(
        self,
        n_cells: int,
        column: Optional[ColumnParasitics] = None,
        mode: str = "hold",
        points: Optional[int] = None,
    ) -> PreparedWork:
        """Both VTC sweeps of the butterfly plot, as two prepared lanes."""
        chosen = column if column is not None else self.column_parasitics(n_cells)
        n_points = points if points is not None else self.SWEEP_POINTS
        vdd = self.node.operating_conditions.vdd_v
        grid = np.linspace(0.0, vdd, n_points)

        lanes = []
        recorded_nodes = []
        for driven, recorded in (("q", "qb"), ("qb", "q")):
            circuit, initial = self._build_butterfly_circuit(chosen, mode, driven)
            lanes.append(
                SweepLaneSpec(
                    circuit,
                    "vsweep",
                    grid,
                    initial_voltages=initial,
                    options=self.DC_SWEEP_NEWTON,
                )
            )
            recorded_nodes.append(recorded)

        def finish(sweeps) -> ButterflyCurves:
            curves = [
                sweep.voltage(recorded)
                for sweep, recorded in zip(sweeps, recorded_nodes)
            ]
            return ButterflyCurves(
                mode=mode, input_v=grid, qb_of_q=curves[0], q_of_qb=curves[1]
            )

        return PreparedWork(lanes=lanes, finish=finish)

    def butterfly(
        self,
        n_cells: int,
        column: Optional[ColumnParasitics] = None,
        mode: str = "hold",
        points: Optional[int] = None,
    ) -> ButterflyCurves:
        """Trace both VTCs of the butterfly plot for one column."""
        return self._prepare_butterfly(
            n_cells, column, mode=mode, points=points
        ).run_scalar()

    def _measurement_from_curves(
        self,
        n_cells: int,
        chosen: ColumnParasitics,
        mode: str,
        label: str,
        curves: ButterflyCurves,
    ) -> MarginMeasurement:
        """The largest-square evaluation shared by both solver tiers."""
        lobe1, lobe2 = curves.lobe_sides_v()
        return MarginMeasurement(
            n_cells=n_cells,
            label=label,
            mode=mode,
            snm_v=min(lobe1, lobe2),
            lobe1_v=lobe1,
            lobe2_v=lobe2,
            bitline_resistance_ohm=chosen.bitline.total_resistance_ohm,
            bitline_bar_resistance_ohm=chosen.bitline_bar.total_resistance_ohm,
            vss_rail_resistance_ohm=chosen.vss_rail_resistance_ohm,
            vdd_rail_resistance_ohm=chosen.vdd_rail_resistance_ohm,
        )

    def prepare_measure(
        self,
        n_cells: int,
        column: Optional[ColumnParasitics] = None,
        mode: str = "hold",
        label: str = "nominal",
        points: Optional[int] = None,
    ) -> PreparedWork:
        """One SNM measurement as prepared work (butterfly + largest square)."""
        chosen = column if column is not None else self.column_parasitics(n_cells)
        prepared = self._prepare_butterfly(n_cells, chosen, mode=mode, points=points)
        return prepared.mapped(
            lambda curves: self._measurement_from_curves(
                n_cells, chosen, mode, label, curves
            )
        )

    def measure(
        self,
        n_cells: int,
        column: Optional[ColumnParasitics] = None,
        mode: str = "hold",
        label: str = "nominal",
        points: Optional[int] = None,
    ) -> MarginMeasurement:
        """One SNM measurement (butterfly + largest square)."""
        chosen = column if column is not None else self.column_parasitics(n_cells)
        curves = self.butterfly(n_cells, chosen, mode=mode, points=points)
        return self._measurement_from_curves(n_cells, chosen, mode, label, curves)

    # -- public measurement entry points -------------------------------------------

    def prepare_nominal(self, n_cells: int, mode: str = "hold") -> PreparedWork:
        """Nominal SNM as prepared work; a memo hit carries zero lanes."""
        if mode not in MARGIN_MODES:
            raise MarginAnalysisError(f"mode must be one of {MARGIN_MODES}")
        key = (n_cells, mode)
        cached = self._nominal_cache.get(key)
        if cached is not None:
            return PreparedWork(lanes=[], finish=lambda _results: cached)
        prepared = self.prepare_measure(n_cells, mode=mode, label="nominal")

        def memoize(measurement: MarginMeasurement) -> MarginMeasurement:
            self._nominal_cache[key] = measurement
            return measurement

        return prepared.mapped(memoize)

    def measure_nominal(self, n_cells: int, mode: str = "hold") -> MarginMeasurement:
        """Nominal SNM of an ``n_cells`` column (memoized per mode)."""
        if mode not in MARGIN_MODES:
            raise MarginAnalysisError(f"mode must be one of {MARGIN_MODES}")
        key = (n_cells, mode)
        cached = self._nominal_cache.get(key)
        if cached is None:
            cached = self.measure(n_cells, mode=mode, label="nominal")
            self._nominal_cache[key] = cached
        return cached

    def measure_hold_snm(self, n_cells: int) -> MarginMeasurement:
        return self.measure_nominal(n_cells, mode="hold")

    def measure_read_snm(self, n_cells: int) -> MarginMeasurement:
        return self.measure_nominal(n_cells, mode="read")

    def prepare_with_patterning(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        mode: str = "hold",
        label: Optional[str] = None,
    ) -> PreparedWork:
        """Printed-column SNM as prepared work."""
        extraction = self.geometry.printed_extraction(n_cells, option, parameters)
        column = self.column_parasitics(n_cells, extraction)
        return self.prepare_measure(
            n_cells,
            column,
            mode=mode,
            label=label if label is not None else option.name,
        )

    def measure_with_patterning(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        mode: str = "hold",
        label: Optional[str] = None,
    ) -> MarginMeasurement:
        """SNM with the column printed by ``option`` at ``parameters``."""
        extraction = self.geometry.printed_extraction(n_cells, option, parameters)
        column = self.column_parasitics(n_cells, extraction)
        return self.measure(
            n_cells,
            column,
            mode=mode,
            label=label if label is not None else option.name,
        )

    def measure_with_variation(
        self,
        n_cells: int,
        rvar: float = 1.0,
        cvar: float = 1.0,
        vss_rvar: float = 1.0,
        mode: str = "hold",
        label: str = "scaled",
    ) -> MarginMeasurement:
        """SNM with the nominal column scaled by explicit RC ratios.

        ``vss_rvar`` scales both supply-rail resistances (under patterning
        the VSS and VDD rails distort together — they are drawn on the same
        metal1 tracks as the bit lines).
        """
        scaled = self._scaled_column(n_cells, rvar, cvar, vss_rvar)
        return self.measure(n_cells, scaled, mode=mode, label=label)

    def _scaled_column(
        self, n_cells: int, rvar: float, cvar: float, vss_rvar: float
    ) -> ColumnParasitics:
        column = self.column_parasitics(n_cells)
        return ColumnParasitics(
            bitline=column.bitline.scaled(rvar, cvar),
            bitline_bar=column.bitline_bar.scaled(rvar, cvar),
            vss_rail_resistance_ohm=column.vss_rail_resistance_ohm * vss_rvar,
            vdd_rail_resistance_ohm=column.vdd_rail_resistance_ohm * vss_rvar,
        )

    def prepare_with_variation(
        self,
        n_cells: int,
        rvar: float = 1.0,
        cvar: float = 1.0,
        vss_rvar: float = 1.0,
        mode: str = "hold",
        label: str = "scaled",
    ) -> PreparedWork:
        """Ratio-scaled SNM as prepared work (batched promotion path)."""
        scaled = self._scaled_column(n_cells, rvar, cvar, vss_rvar)
        return self.prepare_measure(n_cells, scaled, mode=mode, label=label)

    def degradation_percent(
        self,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        mode: str = "hold",
    ) -> float:
        """SNM degradation (%) of one option/corner versus nominal."""
        nominal = self.measure_nominal(n_cells, mode=mode)
        varied = self.measure_with_patterning(n_cells, option, parameters, mode=mode)
        return varied.degradation_percent_vs(nominal)
