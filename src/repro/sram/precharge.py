"""Precharge circuit model.

During the read the precharge devices are off, but they still matter in
two ways that the paper's formula captures through its ``Cpre(n)`` term:

* their (large) junction capacitance loads the periphery end of the bit
  line, and
* their size — and hence that capacitance — is scaled with the array
  height so the precharge phase completes in bounded time ("driving
  strength of the precharge circuit scales with array size", Section II.C).

The same scaling law is exposed as :func:`precharge_capacitance_f` so the
analytical formula (:mod:`repro.core.analytical`) and the simulated
netlist stay consistent with each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..circuit.elements import CircuitElement, VoltageSource
from ..circuit.mosfet import MOSFET
from ..technology.transistors import FinFETParameters, SRAMTransistorSet, default_n10_pmos


class PrechargeError(ValueError):
    """Raised for inconsistent precharge configurations."""

#: Number of cells each precharge fin is expected to drive.  One fin per 8
#: word lines keeps the precharge time roughly constant across the DOE.
CELLS_PER_PRECHARGE_FIN = 8


def precharge_fins(n_cells: int, cells_per_fin: int = CELLS_PER_PRECHARGE_FIN) -> int:
    """Number of fins of each precharge device for an ``n_cells`` bit line."""
    if n_cells < 1:
        raise PrechargeError("a bit line needs at least one cell")
    if cells_per_fin < 1:
        raise PrechargeError("cells_per_fin must be at least 1")
    return max(1, math.ceil(n_cells / cells_per_fin))


def precharge_capacitance_f(
    n_cells: int,
    device: Optional[FinFETParameters] = None,
    cells_per_fin: int = CELLS_PER_PRECHARGE_FIN,
    devices_per_bitline: int = 2,
) -> float:
    """The ``Cpre(n)`` of eq. 4: precharge junction load on one bit line.

    ``devices_per_bitline`` counts the off devices whose drains hang on the
    bit line: the precharge pull-up plus (half of) the equalisation device.
    """
    chosen = device if device is not None else default_n10_pmos()
    fins = precharge_fins(n_cells, cells_per_fin)
    return devices_per_bitline * fins * chosen.cdrain_f_per_fin


@dataclass(frozen=True)
class PrechargeCapacitanceLaw:
    """``Cpre(n)`` as a picklable, array-capable callable.

    The analytical delay model carries this object instead of a lambda so
    studies can be shipped to process-pool workers, and so the formula can
    be evaluated for a whole vector of array sizes at once.
    """

    device: Optional[FinFETParameters] = None
    cells_per_fin: int = CELLS_PER_PRECHARGE_FIN
    devices_per_bitline: int = 2

    def __call__(self, n_cells: Union[int, np.ndarray]) -> Union[float, np.ndarray]:
        if np.ndim(n_cells) == 0:
            # No int() truncation: math.ceil in precharge_fins handles float
            # cell counts the same way the array branch's np.ceil does.
            return precharge_capacitance_f(
                n_cells,
                device=self.device,
                cells_per_fin=self.cells_per_fin,
                devices_per_bitline=self.devices_per_bitline,
            )
        cells = np.asarray(n_cells)
        if np.any(cells < 1):
            raise PrechargeError("a bit line needs at least one cell")
        if self.cells_per_fin < 1:
            raise PrechargeError("cells_per_fin must be at least 1")
        chosen = self.device if self.device is not None else default_n10_pmos()
        fins = np.maximum(1, np.ceil(cells / self.cells_per_fin))
        return self.devices_per_bitline * fins * chosen.cdrain_f_per_fin


@dataclass
class PrechargeCircuit:
    """The precharge / equalisation devices of one bit-line pair."""

    name: str
    n_cells: int
    fins: int
    elements: List[CircuitElement] = field(default_factory=list)
    enable_node: str = "pch_n"

    @property
    def capacitance_f(self) -> float:
        """Junction capacitance presented to each bit line.

        Reported from the explicit junction capacitors of the netlist so it
        stays consistent with :func:`precharge_capacitance_f` and with what
        the simulator actually sees.
        """
        from ..circuit.elements import Capacitor

        total = sum(
            element.capacitance_f
            for element in self.elements
            if isinstance(element, Capacitor)
        )
        return total / 2.0 if total else 0.0


def build_precharge(
    name: str,
    bitline_node: str,
    bitline_bar_node: str,
    vdd_node: str,
    n_cells: int,
    vdd_v: float,
    device: Optional[FinFETParameters] = None,
    cells_per_fin: int = CELLS_PER_PRECHARGE_FIN,
) -> PrechargeCircuit:
    """Build the (off) precharge circuit of one bit-line pair.

    Three PMOS devices: one precharge pull-up per bit line plus an
    equalisation device across the pair.  The enable node is tied to Vdd
    through an ideal source, keeping the devices off for the whole read —
    only their junction capacitance acts on the circuit, exactly the
    ``Cpre(n)`` role of the formula.
    """
    chosen = device if device is not None else default_n10_pmos()
    fins = precharge_fins(n_cells, cells_per_fin)
    enable_node = f"{name}_en"

    elements: List[CircuitElement] = [
        VoltageSource.dc(f"{name}_ven", enable_node, "0", vdd_v),
        MOSFET(
            f"{name}_pcu1",
            drain=bitline_node,
            gate=enable_node,
            source=vdd_node,
            parameters=chosen,
            nfins=fins,
        ),
        MOSFET(
            f"{name}_pcu2",
            drain=bitline_bar_node,
            gate=enable_node,
            source=vdd_node,
            parameters=chosen,
            nfins=fins,
        ),
        MOSFET(
            f"{name}_peq",
            drain=bitline_node,
            gate=enable_node,
            source=bitline_bar_node,
            parameters=chosen,
            nfins=fins,
        ),
    ]
    # Junction loading of the off devices on each bit line: the pull-up
    # drain plus one terminal of the equalisation device.
    from ..circuit.elements import Capacitor  # local import to avoid a cycle at module load

    junction = chosen.cdrain_f_per_fin * fins
    elements.append(Capacitor(f"{name}_cjbl", bitline_node, "0", 2.0 * junction))
    elements.append(Capacitor(f"{name}_cjblb", bitline_bar_node, "0", 2.0 * junction))

    return PrechargeCircuit(
        name=name,
        n_cells=n_cells,
        fins=fins,
        elements=elements,
        enable_node=enable_node,
    )
