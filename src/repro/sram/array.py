"""SRAM read-path circuit builder.

Builds the transistor-level circuit the paper simulates: a bit-line pair
realised as extracted RC ladders, the (off) precharge circuit at the
periphery end, the accessed 6T cell at the far end — the worst-case read
position — including its VSS return path through the metal1 VSS rail, and
an ideally driven word line.

The circuit is deliberately a *column* model: the paper fixes the word
length at 10 bit-line pairs only to keep the central pair free of array
edge effects during extraction; electrically each column reads
independently, so one extracted central column is what gets simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.elements import Capacitor, PiecewiseLinear, Resistor, VoltageSource
from ..circuit.netlist import Circuit
from ..technology.node import OperatingConditions, TechnologyNode
from ..technology.transistors import SRAMTransistorSet
from .bitline import BitlineLadder, BitlineSpec, build_bitline_ladder
from .cell import CellNodes, SRAMCellCircuit, build_cell
from .precharge import PrechargeCircuit, build_precharge
from .sense_amp import SenseAmplifier


class ArrayCircuitError(ValueError):
    """Raised when a read circuit cannot be built."""


@dataclass(frozen=True)
class ReadCircuitSpec:
    """Everything needed to build one read-path circuit.

    Parameters
    ----------
    n_cells:
        Number of word lines on the column (the ``n`` of the paper).
    bitline, bitline_bar:
        Electrical specs of the two bit lines (possibly distorted by
        patterning).
    vss_rail_resistance_ohm:
        Resistance of the VSS return path from the accessed cell back to
        the array-edge strap (scales with ``n``; carries the SADP
        anti-correlation effect).
    devices:
        The 6T cell device set.
    conditions:
        Supply / word-line / precharge voltages and the sense sensitivity.
    stored_value:
        Logic value stored on the Q (BL-side) node; 0 discharges BL.
    wordline_delay_s, wordline_rise_s:
        Word-line activation waveform parameters.
    segments:
        RC-ladder sections per bit line (``None`` → automatic).
    """

    n_cells: int
    bitline: BitlineSpec
    bitline_bar: BitlineSpec
    vss_rail_resistance_ohm: float
    devices: SRAMTransistorSet
    conditions: OperatingConditions
    stored_value: int = 0
    wordline_delay_s: float = 2e-12
    wordline_rise_s: float = 4e-12
    segments: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ArrayCircuitError("the column needs at least one cell")
        if self.vss_rail_resistance_ohm <= 0.0:
            raise ArrayCircuitError("the VSS rail resistance must be positive")
        if self.stored_value not in (0, 1):
            raise ArrayCircuitError("stored_value must be 0 or 1")
        if self.wordline_delay_s < 0.0 or self.wordline_rise_s <= 0.0:
            raise ArrayCircuitError("word-line timing must be non-negative / positive")


@dataclass
class SRAMReadCircuit:
    """A built read-path circuit plus the bookkeeping the harness needs."""

    spec: ReadCircuitSpec
    circuit: Circuit
    sense: SenseAmplifier
    wordline_node: str
    bitline_ladder: BitlineLadder
    bitline_bar_ladder: BitlineLadder
    cell: SRAMCellCircuit
    precharge: PrechargeCircuit
    initial_voltages: Dict[str, float] = field(default_factory=dict)

    @property
    def sense_nodes(self) -> tuple:
        return (self.sense.bitline_node, self.sense.bitline_bar_node)

    @property
    def accessed_cell_nodes(self) -> CellNodes:
        return self.cell.nodes


def build_read_circuit(spec: ReadCircuitSpec) -> SRAMReadCircuit:
    """Assemble the read-path circuit described by ``spec``."""
    conditions = spec.conditions
    vdd = conditions.vdd_v
    vwl = conditions.effective_wordline_voltage_v
    vpre = conditions.effective_precharge_voltage_v

    circuit = Circuit(title=f"sram-read n={spec.n_cells}")

    # Supplies and word line.
    circuit.add(VoltageSource.dc("vdd", "vdd", "0", vdd))
    wordline_wave = PiecewiseLinear(
        points=(
            (0.0, 0.0),
            (spec.wordline_delay_s, 0.0),
            (spec.wordline_delay_s + spec.wordline_rise_s, vwl),
        )
    )
    circuit.add(VoltageSource("vwl", "wl", "0", wordline_wave))

    # Bit-line ladders.
    bitline_ladder = build_bitline_ladder(spec.bitline, prefix="bl", segments=spec.segments)
    bitline_bar_ladder = build_bitline_ladder(
        spec.bitline_bar, prefix="blb", segments=spec.segments
    )
    circuit.add_all(bitline_ladder.elements)
    circuit.add_all(bitline_bar_ladder.elements)

    # Precharge circuit at the periphery end (off during the read).
    precharge = build_precharge(
        name="pch",
        bitline_node=bitline_ladder.near_node,
        bitline_bar_node=bitline_bar_ladder.near_node,
        vdd_node="vdd",
        n_cells=spec.n_cells,
        vdd_v=vdd,
        device=spec.devices.pull_up,
    )
    circuit.add_all(precharge.elements)

    # VSS return path of the accessed cell: metal1 rail back to the strap.
    circuit.add(
        Resistor("rvss_rail", "vss_cell", "0", spec.vss_rail_resistance_ohm)
    )

    # The accessed cell at the far end of the column (worst-case position).
    cell_nodes = CellNodes(
        bitline=bitline_ladder.far_node,
        bitline_bar=bitline_bar_ladder.far_node,
        wordline="wl",
        vdd="vdd",
        vss="vss_cell",
        internal_q="q",
        internal_qb="qb",
    )
    cell = build_cell("cell", cell_nodes, devices=spec.devices)
    circuit.add_all(cell.elements)

    # Sense amplifier observes the periphery ends.
    sense = SenseAmplifier(
        sensitivity_v=conditions.sense_amp_sensitivity_v,
        bitline_node=bitline_ladder.near_node,
        bitline_bar_node=bitline_bar_ladder.near_node,
    )

    # Initial conditions: bit lines precharged, cell holding its value,
    # word line low, VSS rail quiescent.
    initial_voltages: Dict[str, float] = {"vdd": vdd, "wl": 0.0, "vss_cell": 0.0}
    for node in bitline_ladder.node_names + bitline_bar_ladder.node_names:
        initial_voltages[node] = vpre
    initial_voltages[precharge.elements[0].positive] = vdd  # precharge enable
    initial_voltages.update(cell.initial_conditions(vdd, spec.stored_value))

    return SRAMReadCircuit(
        spec=spec,
        circuit=circuit,
        sense=sense,
        wordline_node="wl",
        bitline_ladder=bitline_ladder,
        bitline_bar_ladder=bitline_bar_ladder,
        cell=cell,
        precharge=precharge,
        initial_voltages=initial_voltages,
    )
