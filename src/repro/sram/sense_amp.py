"""Sense-amplifier sensitivity model.

The paper does not simulate the sense amplifier itself; it defines the
read to be complete once the differential bit-line voltage reaches the
sense-amplifier sensitivity (``|Vbl − Vblb| = 0.07 V``).  This module
provides that firing criterion in two forms:

* a :class:`SenseAmplifier` object that can judge a finished transient
  result, and
* an early-stop predicate factory for the transient solver so a read
  simulation ends the moment the threshold is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..circuit.transient import StopCondition
from ..circuit.waveform import TransientResult


class SenseAmpError(ValueError):
    """Raised for inconsistent sense-amplifier configurations."""


@dataclass(frozen=True)
class SenseAmplifier:
    """A differential sense amplifier characterised by its input sensitivity.

    Parameters
    ----------
    sensitivity_v:
        Minimum differential input for reliable sensing (70 mV in the
        paper's setup).
    bitline_node, bitline_bar_node:
        The circuit nodes the amplifier observes (the periphery ends of the
        bit-line pair).
    """

    sensitivity_v: float
    bitline_node: str
    bitline_bar_node: str

    def __post_init__(self) -> None:
        if self.sensitivity_v <= 0.0:
            raise SenseAmpError("the sense sensitivity must be positive")
        if self.bitline_node == self.bitline_bar_node:
            raise SenseAmpError("the two sense inputs must be different nodes")

    def differential_v(self, voltages: Dict[str, float]) -> float:
        """Differential input from a node-voltage dictionary."""
        return abs(voltages[self.bitline_node] - voltages[self.bitline_bar_node])

    def fires(self, voltages: Dict[str, float]) -> bool:
        """Whether the amplifier would fire at these node voltages."""
        return self.differential_v(voltages) >= self.sensitivity_v

    def stop_condition(self, margin: float = 1.2) -> StopCondition:
        """Early-stop predicate for the transient solver.

        The simulation is allowed to run slightly past the firing threshold
        (``margin`` × sensitivity) so the crossing can be interpolated from
        bracketing time points instead of being truncated exactly at it.
        """
        if margin < 1.0:
            raise SenseAmpError("the stop margin must be at least 1.0")
        target = self.sensitivity_v * margin

        def _should_stop(_time_s: float, voltages: Dict[str, float]) -> bool:
            return self.differential_v(voltages) >= target

        return _should_stop

    def firing_time_s(self, result: TransientResult) -> Optional[float]:
        """Time at which the sensitivity is first reached in a finished run."""
        return result.differential_crossing_time_s(
            self.bitline_node, self.bitline_bar_node, self.sensitivity_v
        )
