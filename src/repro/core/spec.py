"""Declarative, serialisable experiment descriptions.

Three PRs in, the repo could run its studies through four different front
doors (:class:`MultiPatterningSRAMStudy`, :class:`SimulationCampaign`,
:class:`MonteCarloTdpStudy`, :class:`WorstCaseStudy`), each with its own
constructor and return shape.  This module replaces that coupling with a
single typed description that the engines consume: a frozen, versioned
:class:`ExperimentSpec` composed of

* :class:`TechnologySpec` — which node and overlay budget to build;
* :class:`ArraySpec`      — the DOE grid (sizes, options, word length,
  overlay sweep);
* :class:`ScenarioSpec`   — one campaign scenario (operation, stored
  value, strap interval, integration method, overlay override);
* :class:`OperationSpec`  — measurement settings of the operation /
  Monte-Carlo / yield layers (operations, samples, budgets);
* :class:`ExecutionSpec`  — how to execute (backend, workers, seed,
  result store, RC-ladder resolution).

Every spec is a frozen dataclass with strict validation at construction,
``to_dict``/``from_dict`` converters that reject unknown keys, and a
lossless JSON round trip — ``ExperimentSpec.from_json(spec.to_json()) ==
spec`` holds for every valid spec.  ``schema_version`` is embedded so
stored specs (and campaign stores created from them) stay refusable or
migratable when the schema evolves.

Because a spec is pure data, scenarios can be generated, sharded, stored
and replayed at scale without touching Python constructors: every new
scenario axis is a data change, not a code change.  The runtime entry
point is :func:`repro.api.run`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..technology.node import TechnologyNode, n10
from ..variability.doe import DOEError, StudyDOE
from .campaign import CAMPAIGN_METHODS, CampaignScenario
from .failures import FAILURE_POLICIES
from .operations import OPERATION_NAMES, ensure_operation

#: Version of the spec schema; bumped on incompatible layout changes.
#: ``from_dict`` refuses payloads written for a different version, and the
#: campaign store embeds the version in its signature so stale stores are
#: rejected instead of silently mixed.
SCHEMA_VERSION = 1

#: Experiment kinds :func:`repro.api.run` can dispatch.
EXPERIMENT_KINDS = (
    "campaign",
    "worst_case",
    "operations",
    "monte_carlo",
    "yield",
    "yield_hs",
)

#: Metric models a ``yield_hs`` experiment may evaluate failures on:
#: the paper's analytical tdp formula (read only), a calibrated
#: operation response surface, or real batched circuit solves.
HIGH_SIGMA_MODELS = ("analytical", "surface", "circuit")

#: Executor backends of :class:`ExecutionSpec` (resolved by ``repro.api``).
EXECUTION_BACKENDS = ("serial", "process", "auto")

#: Execution fields excluded from the canonical fingerprint.  They steer
#: where and how fast a spec runs, never which records it produces (the
#: backend-parity suite pins this), so two specs differing only in these
#: fields are the same experiment to the result cache.  ``seed`` and
#: ``max_segments`` DO enter the fingerprint: both change the records.
#: The failure knobs are neutral too: they change whether a run survives
#: an item failure, never what a successful record contains (and partial
#: results are never cached, so they cannot poison a fingerprint).
#: ``solver`` is neutral for the same reason: the batched tier is pinned
#: bit-identical to the scalar oracle by the parity suite.
FINGERPRINT_NEUTRAL_EXECUTION_FIELDS = (
    "backend",
    "workers",
    "store_dir",
    "failure_policy",
    "max_retries",
    "timeout_s",
    "solver",
)

#: Solver tiers of :class:`ExecutionSpec` (see
#: :data:`repro.core.campaign.CAMPAIGN_SOLVERS`): ``batched`` stacks
#: same-topology Newton/transient work across campaign items into
#: jointly-vectorized solves; ``scalar`` runs one item at a time.
EXECUTION_SOLVERS = ("scalar", "batched")


class SpecError(ValueError):
    """Raised for invalid, unknown or non-round-trippable spec payloads."""


#: Node factories addressable from a :class:`TechnologySpec`.
NODE_FACTORIES: Dict[str, Callable[[float], TechnologyNode]] = {
    "n10": lambda overlay: n10(overlay_three_sigma_nm=overlay),
}


def _check_unknown(cls: type, payload: Mapping[str, Any]) -> None:
    known = {spec_field.name for spec_field in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise SpecError(
            f"unknown {cls.__name__} fields: {sorted(unknown)} "
            f"(known: {sorted(known)})"
        )


def _require_mapping(payload: Any, name: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise SpecError(f"{name} must be a JSON object, got {type(payload).__name__}")
    return payload


def _coerce_int(value: Any, name: str) -> int:
    if isinstance(value, bool):
        raise SpecError(f"{name} must be an integer, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError):
        raise SpecError(f"{name} must be an integer, got {value!r}") from None


def _coerce_float(value: Any, name: str) -> float:
    if isinstance(value, bool):
        raise SpecError(f"{name} must be a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise SpecError(f"{name} must be a number, got {value!r}") from None


def _float_tuple(values: Any, name: str) -> Tuple[float, ...]:
    if isinstance(values, (str, Mapping)):
        # Iterating a string would silently misparse "16" as (1.0, 6.0).
        raise SpecError(f"{name} must be a sequence of numbers, got {values!r}")
    try:
        return tuple(float(value) for value in values)
    except (TypeError, ValueError):
        raise SpecError(f"{name} must be a sequence of numbers, got {values!r}") from None


def _int_tuple(values: Any, name: str) -> Tuple[int, ...]:
    if isinstance(values, (str, Mapping)):
        raise SpecError(f"{name} must be a sequence of integers, got {values!r}")
    try:
        return tuple(int(value) for value in values)
    except (TypeError, ValueError):
        raise SpecError(f"{name} must be a sequence of integers, got {values!r}") from None


def _str_tuple(values: Any, name: str) -> Tuple[str, ...]:
    if isinstance(values, str):
        raise SpecError(f"{name} must be a sequence of strings, not a bare string")
    try:
        return tuple(str(value) for value in values)
    except TypeError:
        raise SpecError(f"{name} must be a sequence of strings, got {values!r}") from None


@dataclass(frozen=True)
class TechnologySpec:
    """Which technology node to build and at which overlay budget."""

    node: str = "n10"
    overlay_three_sigma_nm: float = 8.0

    def __post_init__(self) -> None:
        if self.node not in NODE_FACTORIES:
            raise SpecError(
                f"unknown technology node {self.node!r}; "
                f"available: {sorted(NODE_FACTORIES)}"
            )
        if not self.overlay_three_sigma_nm > 0.0:
            raise SpecError("overlay_three_sigma_nm must be positive")

    def build(self) -> TechnologyNode:
        """Instantiate the node this spec describes."""
        return NODE_FACTORIES[self.node](float(self.overlay_three_sigma_nm))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "overlay_three_sigma_nm": self.overlay_three_sigma_nm,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TechnologySpec":
        payload = _require_mapping(payload, "technology")
        _check_unknown(cls, payload)
        data = dict(payload)
        if "overlay_three_sigma_nm" in data:
            data["overlay_three_sigma_nm"] = _coerce_float(
                data["overlay_three_sigma_nm"], "technology.overlay_three_sigma_nm"
            )
        return cls(**data)


@dataclass(frozen=True)
class ArraySpec:
    """The DOE grid: array sizes, patterning options, word length, overlay sweep."""

    sizes: Tuple[int, ...] = (16, 64, 256, 1024)
    options: Tuple[str, ...] = ("LELELE", "SADP", "EUV")
    n_bitline_pairs: int = 10
    overlay_budgets_nm: Tuple[float, ...] = (3.0, 5.0, 7.0, 8.0)

    def __post_init__(self) -> None:
        # StudyDOE owns the grid invariants; surface its complaints as
        # spec errors so callers see one error type for one bad document.
        try:
            self.to_doe()
        except DOEError as exc:
            raise SpecError(str(exc)) from None

    def to_doe(self) -> StudyDOE:
        return StudyDOE(
            array_sizes=self.sizes,
            option_names=self.options,
            n_bitline_pairs=self.n_bitline_pairs,
            overlay_budgets_nm=self.overlay_budgets_nm,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sizes": list(self.sizes),
            "options": list(self.options),
            "n_bitline_pairs": self.n_bitline_pairs,
            "overlay_budgets_nm": list(self.overlay_budgets_nm),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArraySpec":
        payload = _require_mapping(payload, "array")
        _check_unknown(cls, payload)
        data = dict(payload)
        if "sizes" in data:
            data["sizes"] = _int_tuple(data["sizes"], "array.sizes")
        if "options" in data:
            data["options"] = _str_tuple(data["options"], "array.options")
        if "n_bitline_pairs" in data:
            data["n_bitline_pairs"] = _coerce_int(
                data["n_bitline_pairs"], "array.n_bitline_pairs"
            )
        if "overlay_budgets_nm" in data:
            data["overlay_budgets_nm"] = _float_tuple(
                data["overlay_budgets_nm"], "array.overlay_budgets_nm"
            )
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One campaign scenario — the serialisable twin of
    :class:`~repro.core.campaign.CampaignScenario`."""

    label: str = "paper"
    operation: str = "read"
    overlay_three_sigma_nm: Optional[float] = None
    stored_value: int = 0
    vss_strap_interval_cells: int = 256
    method: str = "backward-euler"

    def __post_init__(self) -> None:
        ensure_operation(self.operation, error=SpecError)
        if not self.label or not all(ch.isalnum() or ch in "._-" for ch in self.label):
            raise SpecError(
                f"scenario label {self.label!r} must be non-empty and use only "
                "letters, digits, '.', '_' or '-'"
            )
        if self.overlay_three_sigma_nm is not None and not self.overlay_three_sigma_nm > 0.0:
            raise SpecError("scenario overlay_three_sigma_nm must be positive")
        if self.stored_value not in (0, 1):
            raise SpecError("scenario stored_value must be 0 or 1")
        if self.vss_strap_interval_cells < 1:
            raise SpecError("scenario vss_strap_interval_cells must be at least 1")
        if self.method not in CAMPAIGN_METHODS:
            raise SpecError(f"scenario method must be one of {CAMPAIGN_METHODS}")

    def to_scenario(self) -> CampaignScenario:
        return CampaignScenario(
            label=self.label,
            overlay_three_sigma_nm=self.overlay_three_sigma_nm,
            stored_value=self.stored_value,
            vss_strap_interval_cells=self.vss_strap_interval_cells,
            method=self.method,
            operation=self.operation,
        )

    @classmethod
    def from_scenario(cls, scenario: CampaignScenario) -> "ScenarioSpec":
        return cls(
            label=scenario.label,
            operation=scenario.operation,
            overlay_three_sigma_nm=scenario.overlay_three_sigma_nm,
            stored_value=scenario.stored_value,
            vss_strap_interval_cells=scenario.vss_strap_interval_cells,
            method=scenario.method,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "operation": self.operation,
            "overlay_three_sigma_nm": self.overlay_three_sigma_nm,
            "stored_value": self.stored_value,
            "vss_strap_interval_cells": self.vss_strap_interval_cells,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        payload = _require_mapping(payload, "scenario")
        _check_unknown(cls, payload)
        data = dict(payload)
        if data.get("overlay_three_sigma_nm") is not None:
            data["overlay_three_sigma_nm"] = _coerce_float(
                data["overlay_three_sigma_nm"], "scenario.overlay_three_sigma_nm"
            )
        for name in ("stored_value", "vss_strap_interval_cells"):
            if name in data:
                data[name] = _coerce_int(data[name], f"scenario.{name}")
        return cls(**data)


@dataclass(frozen=True)
class OperationSpec:
    """Measurement settings of the operation, Monte-Carlo and yield layers.

    ``operations`` selects which SRAM operations an ``operations`` or
    ``monte_carlo`` experiment measures; ``samples``/``n_wordlines``
    parameterise the Monte-Carlo engine; ``mc_sigma`` adds the
    Monte-Carlo σ tables to an ``operations`` experiment; and
    ``budget_percent``/``target_ppm`` are the ``yield`` experiment's
    spec-compliance knobs.
    """

    operations: Tuple[str, ...] = ("read",)
    samples: int = 500
    n_wordlines: int = 64
    mc_sigma: bool = False
    budget_percent: float = 10.0
    target_ppm: float = 100.0

    def __post_init__(self) -> None:
        if not self.operations:
            raise SpecError("operation.operations needs at least one operation")
        for name in self.operations:
            ensure_operation(name, error=SpecError)
        if len(set(self.operations)) != len(self.operations):
            raise SpecError(f"operation.operations must be unique, got {self.operations}")
        if self.samples < 2:
            raise SpecError("operation.samples must be at least 2")
        if self.n_wordlines < 1:
            raise SpecError("operation.n_wordlines must be positive")
        if not self.budget_percent > 0.0:
            raise SpecError("operation.budget_percent must be positive")
        if not self.target_ppm > 0.0:
            raise SpecError("operation.target_ppm must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operations": list(self.operations),
            "samples": self.samples,
            "n_wordlines": self.n_wordlines,
            "mc_sigma": self.mc_sigma,
            "budget_percent": self.budget_percent,
            "target_ppm": self.target_ppm,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OperationSpec":
        payload = _require_mapping(payload, "operation")
        _check_unknown(cls, payload)
        data = dict(payload)
        if "operations" in data:
            data["operations"] = _str_tuple(data["operations"], "operation.operations")
        for name in ("samples", "n_wordlines"):
            if name in data:
                data[name] = _coerce_int(data[name], f"operation.{name}")
        for name in ("budget_percent", "target_ppm"):
            if name in data:
                data[name] = _coerce_float(data[name], f"operation.{name}")
        if "mc_sigma" in data:
            data["mc_sigma"] = bool(data["mc_sigma"])
        return cls(**data)


@dataclass(frozen=True)
class HighSigmaSpec:
    """Settings of the ``yield_hs`` high-sigma yield experiment.

    ``sigma_levels`` name the tail depths to estimate (thresholds are
    ``mean ± level·std`` of the metric's corner distribution unless
    ``threshold_percent`` pins one absolute threshold); ``proposals`` is
    the importance-sampling draw count per level; ``max_calls`` caps the
    real metric evaluations (surrogate fit + promoted solves) per
    corner; ``mc_samples``/``mc_max_sigma`` steer the brute-force
    Monte-Carlo cross-check that serves as the parity oracle at low
    sigma.
    """

    operation: str = "read"
    model: str = "analytical"
    sigma_levels: Tuple[float, ...] = (3.0, 6.0)
    threshold_percent: Optional[float] = None
    proposals: int = 4000
    pilot_samples: int = 512
    surrogate_initial: int = 32
    band_sigma: float = 2.0
    mc_samples: int = 20000
    mc_max_sigma: float = 3.5
    max_calls: int = 100000
    confidence: float = 0.95

    def __post_init__(self) -> None:
        ensure_operation(self.operation, error=SpecError)
        if self.model not in HIGH_SIGMA_MODELS:
            raise SpecError(
                f"high_sigma.model must be one of {HIGH_SIGMA_MODELS}, "
                f"got {self.model!r}"
            )
        if self.model == "analytical" and self.operation != "read":
            raise SpecError(
                "high_sigma.model 'analytical' only covers the read "
                "operation; use 'surface' or 'circuit' for "
                f"{self.operation!r}"
            )
        if not self.sigma_levels:
            raise SpecError("high_sigma.sigma_levels needs at least one level")
        if any(level <= 0.0 for level in self.sigma_levels):
            raise SpecError("high_sigma.sigma_levels must be positive")
        if len(set(self.sigma_levels)) != len(self.sigma_levels):
            raise SpecError(
                f"high_sigma.sigma_levels must be unique, got {self.sigma_levels}"
            )
        if self.proposals < 100:
            raise SpecError("high_sigma.proposals must be at least 100")
        if self.pilot_samples < 2:
            raise SpecError("high_sigma.pilot_samples must be at least 2")
        if self.surrogate_initial < 1:
            raise SpecError("high_sigma.surrogate_initial must be positive")
        if not self.band_sigma >= 0.0:
            raise SpecError("high_sigma.band_sigma must be non-negative")
        if self.mc_samples < 2:
            raise SpecError("high_sigma.mc_samples must be at least 2")
        if not self.mc_max_sigma >= 0.0:
            raise SpecError("high_sigma.mc_max_sigma must be non-negative")
        if self.max_calls < 1:
            raise SpecError("high_sigma.max_calls must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise SpecError("high_sigma.confidence must be within (0, 1)")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operation": self.operation,
            "model": self.model,
            "sigma_levels": list(self.sigma_levels),
            "threshold_percent": self.threshold_percent,
            "proposals": self.proposals,
            "pilot_samples": self.pilot_samples,
            "surrogate_initial": self.surrogate_initial,
            "band_sigma": self.band_sigma,
            "mc_samples": self.mc_samples,
            "mc_max_sigma": self.mc_max_sigma,
            "max_calls": self.max_calls,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HighSigmaSpec":
        payload = _require_mapping(payload, "high_sigma")
        _check_unknown(cls, payload)
        data = dict(payload)
        if "sigma_levels" in data:
            data["sigma_levels"] = _float_tuple(
                data["sigma_levels"], "high_sigma.sigma_levels"
            )
        if data.get("threshold_percent") is not None:
            data["threshold_percent"] = _coerce_float(
                data["threshold_percent"], "high_sigma.threshold_percent"
            )
        for name in ("proposals", "pilot_samples", "surrogate_initial", "mc_samples", "max_calls"):
            if name in data:
                data[name] = _coerce_int(data[name], f"high_sigma.{name}")
        for name in ("band_sigma", "mc_max_sigma", "confidence"):
            if name in data:
                data[name] = _coerce_float(data[name], f"high_sigma.{name}")
        return cls(**data)


@dataclass(frozen=True)
class ExecutionSpec:
    """How to execute: backend, worker count, seed, store, ladder resolution.

    ``backend`` selects the executor (see :data:`EXECUTION_BACKENDS`):
    ``serial`` runs in-process, ``process`` fans work out over
    ``workers`` processes through the campaign's chunked pool, and
    ``auto`` sizes the pool to the CPUs the process may run on.  Seeding
    stays crc32-per-item regardless of the backend, so results are
    bit-identical across all three.
    """

    backend: str = "serial"
    workers: int = 1
    seed: int = 2015
    store_dir: Optional[str] = None
    max_segments: int = 64
    #: Per-item failure policy (see :data:`FAILURE_POLICIES`): fail_fast
    #: aborts on the first failed item, skip records it as a typed error
    #: row, retry re-attempts with backoff + rescue escalation first.
    failure_policy: str = "fail_fast"
    #: Extra attempts per item under ``failure_policy="retry"``.
    max_retries: int = 2
    #: Optional wall-clock deadline per item attempt, in seconds.
    timeout_s: Optional[float] = None
    #: Solver tier (see :data:`EXECUTION_SOLVERS`): ``batched`` jointly
    #: vectorizes same-topology work across items, ``scalar`` is the
    #: one-item-at-a-time oracle.  Bit-identical records either way.
    solver: str = "batched"

    def __post_init__(self) -> None:
        if self.backend not in EXECUTION_BACKENDS:
            raise SpecError(
                f"execution.backend must be one of {EXECUTION_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.workers < 1:
            raise SpecError("execution.workers must be at least 1")
        if self.max_segments < 1:
            raise SpecError("execution.max_segments must be positive")
        if self.failure_policy not in FAILURE_POLICIES:
            raise SpecError(
                f"execution.failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}"
            )
        if self.max_retries < 0:
            raise SpecError("execution.max_retries must be non-negative")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise SpecError("execution.timeout_s must be positive when set")
        if self.solver not in EXECUTION_SOLVERS:
            raise SpecError(
                f"execution.solver must be one of {EXECUTION_SOLVERS}, "
                f"got {self.solver!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "seed": self.seed,
            "store_dir": self.store_dir,
            "max_segments": self.max_segments,
            "failure_policy": self.failure_policy,
            "max_retries": self.max_retries,
            "timeout_s": self.timeout_s,
            "solver": self.solver,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionSpec":
        payload = _require_mapping(payload, "execution")
        _check_unknown(cls, payload)
        data = dict(payload)
        for name in ("workers", "seed", "max_segments", "max_retries"):
            if name in data:
                data[name] = _coerce_int(data[name], f"execution.{name}")
        if data.get("timeout_s") is not None:
            data["timeout_s"] = _coerce_float(data["timeout_s"], "execution.timeout_s")
        if data.get("store_dir") is not None:
            data["store_dir"] = str(data["store_dir"])
        return cls(**data)


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, serialisable experiment description.

    ``kind`` selects the engine :func:`repro.api.run` dispatches to:

    =============  =====================================================
    kind           what runs
    =============  =====================================================
    campaign       the batched scenario × DOE simulation campaign
    worst_case     the ±3σ corner search (Table I records)
    operations     worst-case impact tables of one or more operations
                   (read = Fig. 4, write, hold_snm, read_snm), plus
                   optional Monte-Carlo σ tables (``mc_sigma``)
    monte_carlo    Monte-Carlo σ of the per-operation impact (Table IV)
    yield          spec-compliance / overlay-requirement analysis
    yield_hs       high-sigma yield: surrogate-screened importance
                   sampling with a brute-force cross-check at low sigma
    =============  =====================================================
    """

    kind: str = "campaign"
    schema_version: int = SCHEMA_VERSION
    technology: TechnologySpec = field(default_factory=TechnologySpec)
    array: ArraySpec = field(default_factory=ArraySpec)
    scenarios: Tuple[ScenarioSpec, ...] = field(default_factory=lambda: (ScenarioSpec(),))
    operation: OperationSpec = field(default_factory=OperationSpec)
    high_sigma: HighSigmaSpec = field(default_factory=HighSigmaSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)

    def __post_init__(self) -> None:
        if self.kind not in EXPERIMENT_KINDS:
            raise SpecError(
                f"kind must be one of {EXPERIMENT_KINDS}, got {self.kind!r}"
            )
        if self.schema_version != SCHEMA_VERSION:
            raise SpecError(
                f"schema_version {self.schema_version!r} is not supported by this "
                f"version of repro (expected {SCHEMA_VERSION}); regenerate the spec "
                "with `repro spec dump` or migrate it"
            )
        if not isinstance(self.scenarios, tuple):
            object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise SpecError("the spec needs at least one scenario")
        labels = [scenario.label for scenario in self.scenarios]
        if len(set(labels)) != len(labels):
            raise SpecError(f"scenario labels must be unique, got {labels}")

    # -- serialisation ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "technology": self.technology.to_dict(),
            "array": self.array.to_dict(),
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "operation": self.operation.to_dict(),
            "high_sigma": self.high_sigma.to_dict(),
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        payload = _require_mapping(payload, "experiment spec")
        _check_unknown(cls, payload)
        data = dict(payload)
        if "schema_version" in data:
            data["schema_version"] = _coerce_int(data["schema_version"], "schema_version")
        if "technology" in data:
            data["technology"] = TechnologySpec.from_dict(data["technology"])
        if "array" in data:
            data["array"] = ArraySpec.from_dict(data["array"])
        if "scenarios" in data:
            scenarios = data["scenarios"]
            if isinstance(scenarios, (str, Mapping)):
                raise SpecError("scenarios must be a list of scenario objects")
            data["scenarios"] = tuple(
                ScenarioSpec.from_dict(scenario) for scenario in scenarios
            )
        if "operation" in data:
            data["operation"] = OperationSpec.from_dict(data["operation"])
        if "high_sigma" in data:
            data["high_sigma"] = HighSigmaSpec.from_dict(data["high_sigma"])
        if "execution" in data:
            data["execution"] = ExecutionSpec.from_dict(data["execution"])
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    # -- content addressing -------------------------------------------------------------

    def canonical_dict(self) -> Dict[str, Any]:
        """The fingerprint payload: ``to_dict()`` minus result-neutral keys.

        ``schema_version`` stays in, so a schema bump re-addresses every
        experiment; the execution fields in
        :data:`FINGERPRINT_NEUTRAL_EXECUTION_FIELDS` drop out, so the
        same study run serially or on eight workers hits the same cache
        entry.  The ``high_sigma`` section only participates for
        ``yield_hs`` experiments — no other kind reads it, so keeping it
        out preserves every pre-existing fingerprint (and hence every
        cached result) across the schema's growth.
        """
        payload = self.to_dict()
        for name in FINGERPRINT_NEUTRAL_EXECUTION_FIELDS:
            payload["execution"].pop(name)
        if self.kind != "yield_hs":
            payload.pop("high_sigma")
        return payload

    def fingerprint(self) -> str:
        """Content address of this experiment (hex SHA-256).

        Hashes the canonical JSON (sorted keys, minimal separators) of
        :meth:`canonical_dict`; equal experiments — however their spec
        documents were formatted or which executor they name — share one
        fingerprint.
        """
        text = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- construction helpers -----------------------------------------------------------

    def with_scenarios(self, scenarios: Sequence[ScenarioSpec]) -> "ExperimentSpec":
        """A copy of this spec with the scenario list replaced."""
        from dataclasses import replace

        return replace(self, scenarios=tuple(scenarios))

    def with_execution(self, execution: ExecutionSpec) -> "ExperimentSpec":
        """A copy of this spec with the execution section replaced."""
        from dataclasses import replace

        return replace(self, execution=execution)

    def describe(self) -> str:
        """One human line: kind, grid shape and execution settings."""
        return (
            f"{self.kind} spec (schema v{self.schema_version}): "
            f"node={self.technology.node}"
            f"@OL{self.technology.overlay_three_sigma_nm:g}nm, "
            f"sizes={list(self.array.sizes)}, "
            f"options={list(self.array.options)}, "
            f"scenarios={[scenario.label for scenario in self.scenarios]}, "
            f"operations={list(self.operation.operations)}, "
            f"backend={self.execution.backend}/{self.execution.workers}w, "
            f"seed={self.execution.seed}"
        )


def spec_fingerprint(spec: "ExperimentSpec") -> str:
    """Module-level alias of :meth:`ExperimentSpec.fingerprint`."""
    return spec.fingerprint()


def scenario_spec_grid(
    overlay_budgets_nm: Sequence[Optional[float]] = (None,),
    stored_values: Sequence[int] = (0,),
    strap_intervals: Sequence[int] = (256,),
    methods: Sequence[str] = ("backward-euler",),
    operations: Sequence[str] = ("read",),
) -> Tuple[ScenarioSpec, ...]:
    """Cross scenario axes into :class:`ScenarioSpec` tuples.

    The serialisable twin of
    :func:`~repro.core.campaign.scenario_grid` — same axes, same
    self-describing labels — so spec documents and in-memory campaigns
    name their scenarios identically.
    """
    from .campaign import scenario_grid

    return tuple(
        ScenarioSpec.from_scenario(scenario)
        for scenario in scenario_grid(
            overlay_budgets_nm=overlay_budgets_nm,
            stored_values=stored_values,
            strap_intervals=strap_intervals,
            methods=methods,
            operations=operations,
        )
    )
