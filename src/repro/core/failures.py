"""Typed failure records and solver-error classification.

One ``ConvergenceError`` in one work item used to abort a whole campaign.
This module is the vocabulary of the fault-tolerance layer that fixes
that: a solver error is *classified* into a stable category string,
wrapped in a typed, JSON-ready :class:`ItemFailure` record, and — under
the ``skip`` and ``retry`` failure policies — becomes an error row in a
partial result set instead of an exception.

Classification is message/type based on purpose: the solver tier raises
one exception family (:class:`~repro.circuit.dc.ConvergenceError`) for
many distinct causes, and the cause determines whether a retry is worth
anything (a step-budget exhaustion often converges with an escalated
budget; a structurally singular system never will).

=================  ======================================================
category           meaning
=================  ======================================================
step_budget        transient exceeded its accepted-step budget
step_underflow     transient step size collapsed below ``dt_min_s``
singular_jacobian  an exactly singular Jacobian / MNA system
dc_convergence     the DC rescue ladder (gmin, source stepping,
                   pseudo-transient) was exhausted
convergence        any other solver non-convergence
timeout            the per-item deadline expired (:func:`item_deadline`)
worker_crash       the item's pool worker died (possibly poison input)
injected           a fault-injection harness fault (testing only)
unexpected         anything else the execution wrapper caught
=================  ======================================================
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, Mapping, Optional

from ..circuit.dc import ConvergenceError
from ..circuit.mna import MNAError

__all__ = [
    "FAILURE_POLICIES",
    "ItemFailure",
    "ItemTimeoutError",
    "classify_error",
    "item_deadline",
]

#: Per-item failure policies of the campaign engine (and ``api.run``):
#: ``fail_fast`` re-raises the first failure (the pre-fault-tolerance
#: behaviour), ``skip`` records it and moves on, ``retry`` re-attempts
#: with capped exponential backoff and an escalated rescue ladder before
#: recording it.
FAILURE_POLICIES = ("fail_fast", "skip", "retry")


class ItemTimeoutError(RuntimeError):
    """Raised inside :func:`item_deadline` when a work item overruns."""


@dataclass(frozen=True)
class ItemFailure:
    """One failed work item, classified and JSON-ready.

    ``stage`` says where the failure surfaced (``solver`` for an
    exception inside the item's own computation, ``worker`` for a pool
    process that died while holding the item).  ``attempts`` counts every
    try, including the first.
    """

    key: str
    classification: str
    error_type: str
    message: str
    attempts: int = 1
    stage: str = "solver"

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ItemFailure":
        names = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown ItemFailure fields: {sorted(unknown)}")
        return cls(**dict(payload))  # type: ignore[arg-type]

    def to_record(self) -> Dict[str, object]:
        """The error row of this failure in a ``ResultSet`` (flat, with a
        ``record`` discriminator like every other record family)."""
        return {"record": "failure", **self.to_dict()}

    @classmethod
    def from_exception(
        cls,
        key: str,
        error: BaseException,
        attempts: int = 1,
        stage: str = "solver",
    ) -> "ItemFailure":
        return cls(
            key=key,
            classification=classify_error(error),
            error_type=type(error).__name__,
            message=str(error)[:500],
            attempts=attempts,
            stage=stage,
        )


def classify_error(error: BaseException) -> str:
    """Stable category string of a solver/execution error (see module doc)."""
    marker = getattr(error, "failure_classification", None)
    if isinstance(marker, str) and marker:
        return marker
    if isinstance(error, ItemTimeoutError):
        return "timeout"
    message = str(error)
    lowered = message.lower()
    if "singular" in lowered or isinstance(error, MNAError):
        return "singular_jacobian"
    if "accepted steps" in message:
        return "step_budget"
    if "minimum step size" in message:
        return "step_underflow"
    if isinstance(error, ConvergenceError):
        if "DC operating point" in message:
            return "dc_convergence"
        return "convergence"
    return "unexpected"


@contextmanager
def item_deadline(timeout_s: Optional[float]) -> Iterator[None]:
    """Raise :class:`ItemTimeoutError` if the body overruns ``timeout_s``.

    Implemented with ``SIGALRM``/``setitimer``, which can interrupt a
    NumPy/SciPy solve mid-flight — a cooperative check cannot, and a
    runaway Newton loop never reaches cooperative checkpoints.  The alarm
    only works on the main thread of a process (campaign pool workers and
    the serial CLI path); elsewhere — e.g. the experiment queue's worker
    threads, which enforce deadlines at the job tier instead — the guard
    degrades to a no-op rather than failing.
    """
    if (
        not timeout_s
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expire(signum, frame):  # pragma: no cover - exercised via alarm
        raise ItemTimeoutError(
            f"work item exceeded its {timeout_s:g} s deadline"
        )

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
