"""Patterning-option comparison and recommendation logic (Section IV).

The paper's conclusions, turned into code that operates on study results:

* in the worst case, LE3 costs up to ~20 % read time versus <3 % for SADP
  and EUV;
* statistically, the LE3 tdp σ at an 8 nm overlay budget is about twice
  the SADP σ, and the overlay budget is the decisive knob;
* LE3 only becomes competitive when the 3σ overlay error is tightened to
  about 3 nm; failing that — and as long as EUV is not manufacturable —
  SADP is the recommended option.

:class:`OptionComparison` evaluates these statements on actual study
output so the conclusion can be *recomputed* rather than restated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .results import TdpSigmaRow, WorstCaseTdRow


class ComparisonError(ValueError):
    """Raised when a comparison cannot be evaluated from the given results."""


@dataclass(frozen=True)
class OverlayRequirement:
    """The overlay budget a litho-etch option needs to match a reference σ."""

    option_name: str
    reference_option: str
    reference_sigma_percent: float
    required_overlay_nm: Optional[float]
    tolerance_percent: float

    @property
    def achievable(self) -> bool:
        return self.required_overlay_nm is not None


@dataclass(frozen=True)
class ComparisonVerdict:
    """The overall recommendation derived from a study."""

    recommended_option: str
    worst_case_leader: str
    statistical_leader: str
    sigma_ratio_le3_over_sadp: Optional[float]
    overlay_requirement: Optional[OverlayRequirement]
    notes: Tuple[str, ...] = ()


class OptionComparison:
    """Compares patterning options from worst-case and Monte-Carlo results."""

    def __init__(
        self,
        figure4_rows: Sequence[WorstCaseTdRow],
        table4_rows: Sequence[TdpSigmaRow],
        litho_option: str = "LELELE",
        sadp_option: str = "SADP",
        euv_option: str = "EUV",
    ) -> None:
        if not figure4_rows and not table4_rows:
            raise ComparisonError("the comparison needs worst-case or Monte-Carlo results")
        self.figure4_rows = list(figure4_rows)
        self.table4_rows = list(table4_rows)
        self.litho_option = litho_option
        self.sadp_option = sadp_option
        self.euv_option = euv_option

    # -- worst-case view ----------------------------------------------------------------

    def max_worst_case_tdp_percent(self) -> Dict[str, float]:
        """Per-option maximum worst-case tdp across array sizes."""
        if not self.figure4_rows:
            raise ComparisonError("no worst-case rows available")
        maxima: Dict[str, float] = {}
        for row in self.figure4_rows:
            for option_name, value in row.tdp_percent_by_option.items():
                maxima[option_name] = max(maxima.get(option_name, float("-inf")), value)
        return maxima

    def worst_case_leader(self) -> str:
        """The option with the smallest maximum worst-case penalty."""
        maxima = self.max_worst_case_tdp_percent()
        return min(maxima, key=lambda option_name: maxima[option_name])

    # -- statistical view ----------------------------------------------------------------

    def sigma_for(
        self, option_name: str, overlay_nm: Optional[float] = None
    ) -> float:
        for row in self.table4_rows:
            if row.option_name != option_name:
                continue
            if overlay_nm is None and row.overlay_three_sigma_nm is None:
                return row.sigma_percent
            if (
                overlay_nm is not None
                and row.overlay_three_sigma_nm is not None
                and abs(row.overlay_three_sigma_nm - overlay_nm) < 1e-9
            ):
                return row.sigma_percent
        # Fall back: an option swept over overlay has no overlay-free row;
        # report its best (smallest-σ) entry when no budget is specified.
        candidates = [
            row.sigma_percent for row in self.table4_rows if row.option_name == option_name
        ]
        if candidates and overlay_nm is None:
            return min(candidates)
        raise ComparisonError(
            f"no Table IV row for option {option_name!r} at overlay {overlay_nm}"
        )

    def statistical_leader(self) -> str:
        """The option with the smallest tdp σ (litho options at their largest budget)."""
        if not self.table4_rows:
            raise ComparisonError("no Monte-Carlo σ rows available")
        worst_sigma_per_option: Dict[str, float] = {}
        for row in self.table4_rows:
            current = worst_sigma_per_option.get(row.option_name, float("-inf"))
            worst_sigma_per_option[row.option_name] = max(current, row.sigma_percent)
        return min(worst_sigma_per_option, key=lambda name: worst_sigma_per_option[name])

    def sigma_ratio_le3_over_sadp(self, overlay_nm: float = 8.0) -> float:
        """The paper's headline ratio: σ(LE3 @ overlay) / σ(SADP)."""
        le3_sigma = self.sigma_for(self.litho_option, overlay_nm)
        sadp_sigma = self.sigma_for(self.sadp_option, None)
        if sadp_sigma <= 0.0:
            raise ComparisonError("the SADP σ must be positive")
        return le3_sigma / sadp_sigma

    def required_overlay_for_parity(
        self, tolerance_percent: float = 25.0
    ) -> OverlayRequirement:
        """Largest overlay budget at which LE3's σ is within tolerance of SADP's.

        Reproduces the conclusion "limiting the 3σ OL error to ≤ 3 nm allows
        LE3 to reach comparable performance variations".
        """
        sadp_sigma = self.sigma_for(self.sadp_option, None)
        target = sadp_sigma * (1.0 + tolerance_percent / 100.0)
        litho_rows = sorted(
            (
                row
                for row in self.table4_rows
                if row.option_name == self.litho_option
                and row.overlay_three_sigma_nm is not None
            ),
            key=lambda row: row.overlay_three_sigma_nm,
        )
        if not litho_rows:
            raise ComparisonError(f"no overlay sweep found for {self.litho_option!r}")
        achievable = [
            row.overlay_three_sigma_nm
            for row in litho_rows
            if row.sigma_percent <= target
        ]
        return OverlayRequirement(
            option_name=self.litho_option,
            reference_option=self.sadp_option,
            reference_sigma_percent=sadp_sigma,
            required_overlay_nm=max(achievable) if achievable else None,
            tolerance_percent=tolerance_percent,
        )

    # -- overall verdict ----------------------------------------------------------------------

    def verdict(self, euv_manufacturable: bool = False) -> ComparisonVerdict:
        """The Section-IV recommendation, recomputed from the results.

        ``euv_manufacturable`` mirrors the paper's caveat that EUV was not
        yet a manufacturable option at the time; with it set to False the
        recommendation is restricted to the multiple-patterning options.
        """
        notes: List[str] = []
        worst_leader = (
            self.worst_case_leader() if self.figure4_rows else self.sadp_option
        )
        stat_leader = (
            self.statistical_leader() if self.table4_rows else worst_leader
        )

        sigma_ratio: Optional[float] = None
        requirement: Optional[OverlayRequirement] = None
        if self.table4_rows:
            try:
                sigma_ratio = self.sigma_ratio_le3_over_sadp()
            except ComparisonError:
                sigma_ratio = None
            try:
                requirement = self.required_overlay_for_parity()
            except ComparisonError:
                requirement = None

        candidates = {worst_leader, stat_leader}
        if not euv_manufacturable:
            candidates.discard(self.euv_option)
            notes.append(
                "EUV excluded from the recommendation (not manufacturable at study time)"
            )
        if not candidates:
            candidates = {self.sadp_option}
        # Prefer the statistical leader among the remaining candidates.
        recommended = stat_leader if stat_leader in candidates else sorted(candidates)[0]

        if sigma_ratio is not None and sigma_ratio > 1.5:
            notes.append(
                f"LE3 tdp sigma is {sigma_ratio:.2f}x the SADP sigma at the 8 nm overlay budget"
            )
        if requirement is not None:
            if requirement.achievable:
                notes.append(
                    f"LE3 reaches SADP-comparable sigma at a 3-sigma overlay budget of "
                    f"{requirement.required_overlay_nm:g} nm or tighter"
                )
            else:
                notes.append(
                    "LE3 does not reach SADP-comparable sigma within the studied overlay budgets"
                )

        return ComparisonVerdict(
            recommended_option=recommended,
            worst_case_leader=worst_leader,
            statistical_leader=stat_leader,
            sigma_ratio_le3_over_sadp=sigma_ratio,
            overlay_requirement=requirement,
            notes=tuple(notes),
        )
