"""Worst-case variability study (Section II: Table I, Fig. 2, Fig. 4).

The study enumerates every ±3σ corner of each patterning option's
parameters, extracts the printed layout at every corner and keeps the one
that maximises the bit-line capacitance — the paper's selection criterion,
since Cbl dominates the read time.  The winning corner then feeds:

* Table I — the ΔCbl / ΔRbl values of the worst corner;
* Fig. 2  — the printed-versus-drawn track geometry at that corner;
* Fig. 4  — worst-case td penalties from full read-path simulation across
  the DOE array sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..extraction.lpe import ParameterizedLPE, RCVariation
from ..layout.array import SRAMArrayLayout, generate_array_layout
from ..patterning import create_option
from ..patterning.base import PatterningOption
from ..patterning.sampler import enumerate_worst_case_corners
from ..sram.read_path import ReadPathSimulator
from ..technology.node import TechnologyNode
from ..variability.doe import StudyDOE, paper_doe
from .operations import OperationSimulators, create_operation
from .results import (
    LayoutDistortionRecord,
    OperationImpactRow,
    TrackDistortion,
    WorstCaseRCRow,
    WorstCaseTdRow,
)


class WorstCaseStudyError(RuntimeError):
    """Raised when the worst-case study cannot be evaluated."""


@dataclass(frozen=True)
class WorstCaseCorner:
    """The worst corner of one option: its parameters and RC variations."""

    option_name: str
    parameters: Dict[str, float]
    bitline_variation: RCVariation
    vss_variation: RCVariation

    @property
    def delta_cbl_percent(self) -> float:
        return self.bitline_variation.delta_c_percent

    @property
    def delta_rbl_percent(self) -> float:
        return self.bitline_variation.delta_r_percent

    @property
    def delta_rvss_percent(self) -> float:
        return self.vss_variation.delta_r_percent

    def as_table1_row(self) -> WorstCaseRCRow:
        return WorstCaseRCRow(
            option_name=self.option_name,
            corner_parameters=dict(self.parameters),
            delta_cbl_percent=self.delta_cbl_percent,
            delta_rbl_percent=self.delta_rbl_percent,
            delta_rvss_percent=self.delta_rvss_percent,
        )


class WorstCaseStudy:
    """Runs the worst-case variability analysis of Section II.

    Parameters
    ----------
    node:
        Technology node (its variation assumptions set the corner budgets;
        use :meth:`repro.technology.node.TechnologyNode.with_variations` or
        :func:`repro.technology.node.n10` with a different overlay budget
        to change them).
    doe:
        The experiment grid; defaults to the paper's DOE.
    reference_wordlines:
        Array size used for the corner search itself (per-cell RC ratios do
        not depend on the array size, so one reference extraction is
        enough).
    """

    def __init__(
        self,
        node: TechnologyNode,
        doe: Optional[StudyDOE] = None,
        reference_wordlines: int = 64,
    ) -> None:
        self.node = node
        self.doe = doe if doe is not None else paper_doe()
        self.reference_wordlines = reference_wordlines
        self._lpe = ParameterizedLPE(node)
        self._reference_layout: Optional[SRAMArrayLayout] = None
        self._worst_corner_cache: Dict[str, WorstCaseCorner] = {}

    @classmethod
    def from_spec(cls, spec) -> "WorstCaseStudy":
        """Build a worst-case study from an
        :class:`~repro.core.spec.ExperimentSpec`.  Prefer
        :func:`repro.api.run`; this hook exists for callers that need the
        study object itself."""
        return cls(spec.technology.build(), doe=spec.array.to_doe())

    # -- helpers ------------------------------------------------------------------------

    @property
    def reference_layout(self) -> SRAMArrayLayout:
        if self._reference_layout is None:
            self._reference_layout = generate_array_layout(
                n_wordlines=self.reference_wordlines,
                n_bitline_pairs=self.doe.n_bitline_pairs,
                node=self.node,
            )
        return self._reference_layout

    def _target_nets(self) -> Tuple[str, str]:
        """Central bit-line net and its VSS rail net."""
        bl_net, _blb, vss_net, _vdd = self.reference_layout.central_column_nets()
        return bl_net, vss_net

    def option(self, option_name: str) -> PatterningOption:
        """The :class:`PatterningOption` instance for ``option_name``."""
        return create_option(option_name)

    # -- worst-corner search (Table I) -----------------------------------------------------

    def find_worst_corner(self, option_name: str) -> WorstCaseCorner:
        """Exhaustively search the ±3σ corners for the maximum ΔCbl."""
        if option_name in self._worst_corner_cache:
            return self._worst_corner_cache[option_name]

        option = self.option(option_name)
        corners = enumerate_worst_case_corners(option, self.node.variations)
        layout = self.reference_layout
        bl_net, vss_net = self._target_nets()

        best: Optional[WorstCaseCorner] = None
        for corner in corners:
            parameters = corner.as_dict()
            extraction = self._lpe.extract_with_patterning(
                layout.metal1_pattern, option, parameters
            )
            bitline_variation = extraction.variation_for(bl_net)
            vss_variation = extraction.variation_for(vss_net)
            candidate = WorstCaseCorner(
                option_name=option.name,
                parameters=parameters,
                bitline_variation=bitline_variation,
                vss_variation=vss_variation,
            )
            if best is None or candidate.bitline_variation.cvar > best.bitline_variation.cvar:
                best = candidate
        if best is None:  # pragma: no cover - enumerate always yields corners
            raise WorstCaseStudyError(f"no corners found for option {option_name!r}")
        self._worst_corner_cache[option_name] = best
        return best

    def table1(self, option_names: Optional[Sequence[str]] = None) -> List[WorstCaseRCRow]:
        """Table I: worst-case ΔCbl / ΔRbl per patterning option."""
        names = list(option_names) if option_names is not None else list(self.doe.option_names)
        return [self.find_worst_corner(name).as_table1_row() for name in names]

    # -- layout distortion (Fig. 2) -----------------------------------------------------------

    def layout_distortion(
        self, option_name: str, nets: Optional[Sequence[str]] = None
    ) -> LayoutDistortionRecord:
        """Printed-versus-drawn track geometry at the option's worst corner.

        By default the tracks of the central column (VSS, BL, VDD, BLB) are
        reported — the cell-level view of Fig. 2.
        """
        corner = self.find_worst_corner(option_name)
        option = self.option(option_name)
        layout = self.reference_layout
        patterned = option.apply(layout.metal1_pattern, corner.parameters)

        if nets is None:
            bl_net, blb_net, vss_net, vdd_net = layout.central_column_nets()
            nets = [vss_net, bl_net, vdd_net, blb_net]

        tracks = []
        for net in nets:
            drawn = patterned.nominal.track_for(net)
            printed = patterned.printed.track_for(net)
            tracks.append(
                TrackDistortion(
                    net=net,
                    mask=printed.mask,
                    drawn_left_nm=drawn.left_edge_nm,
                    drawn_right_nm=drawn.right_edge_nm,
                    printed_left_nm=printed.left_edge_nm,
                    printed_right_nm=printed.right_edge_nm,
                )
            )
        return LayoutDistortionRecord(
            option_name=corner.option_name,
            corner_parameters=dict(corner.parameters),
            tracks=tuple(tracks),
        )

    def figure2(self) -> List[LayoutDistortionRecord]:
        return [self.layout_distortion(name) for name in self.doe.option_names]

    # -- worst-case td penalties (Fig. 4) ---------------------------------------------------------

    def figure4(
        self,
        simulator: Optional[ReadPathSimulator] = None,
        array_sizes: Optional[Sequence[int]] = None,
    ) -> List[WorstCaseTdRow]:
        """Fig. 4: nominal td and worst-case td penalty per option and array size.

        Each option's worst corner (from the Table I search) is re-applied
        to every array size and simulated with the full read-path circuit.
        """
        chosen_simulator = simulator if simulator is not None else ReadPathSimulator(
            self.node, n_bitline_pairs=self.doe.n_bitline_pairs
        )
        sizes = list(array_sizes) if array_sizes is not None else list(self.doe.array_sizes)

        rows: List[WorstCaseTdRow] = []
        for size in sizes:
            nominal = chosen_simulator.measure_nominal(size)
            penalties: Dict[str, float] = {}
            for option_name in self.doe.option_names:
                corner = self.find_worst_corner(option_name)
                option = self.option(option_name)
                varied = chosen_simulator.measure_with_patterning(
                    size, option, corner.parameters
                )
                penalties[option_name] = varied.penalty_percent_vs(nominal)
            rows.append(
                WorstCaseTdRow(
                    array_label=f"{self.doe.n_bitline_pairs}x{size}",
                    n_wordlines=size,
                    nominal_td_ps=nominal.td_ps,
                    tdp_percent_by_option=penalties,
                )
            )
        return rows

    # -- operation-suite worst-case impacts ---------------------------------------------

    def operation_rows(
        self,
        operation_name: str,
        simulators: Optional[OperationSimulators] = None,
        array_sizes: Optional[Sequence[int]] = None,
    ) -> List[OperationImpactRow]:
        """Worst-case impact of every option on one operation's figure of merit.

        The write/margin twin of :meth:`figure4`: each option's Table I
        worst corner is re-applied to every array size and the operation
        (write delay, hold/read SNM — or read, reproducing Fig. 4) is
        measured on the printed column.  This sequential path is also the
        parity oracle for the campaign engine's operation axis.
        """
        operation = create_operation(operation_name)
        sims = (
            simulators
            if simulators is not None
            else OperationSimulators(self.node, n_bitline_pairs=self.doe.n_bitline_pairs)
        )
        sizes = list(array_sizes) if array_sizes is not None else list(self.doe.array_sizes)

        rows: List[OperationImpactRow] = []
        for size in sizes:
            nominal = operation.measure_nominal(sims, size)
            deltas: Dict[str, float] = {}
            for option_name in self.doe.option_names:
                corner = self.find_worst_corner(option_name)
                varied = operation.measure_with_patterning(
                    sims, size, self.option(option_name), corner.parameters
                )
                deltas[option_name] = varied.change_percent_vs(nominal)
            rows.append(
                OperationImpactRow(
                    operation=operation.name,
                    array_label=f"{self.doe.n_bitline_pairs}x{size}",
                    n_wordlines=size,
                    nominal_value=nominal.value,
                    unit=nominal.unit,
                    delta_percent_by_option=deltas,
                )
            )
        return rows
