"""Variance attribution: which patterning parameter drives the tdp spread?

The paper states that "the OL error plays a decisive role in LE3
performance impact distribution" but does not quantify it.  This module
does, using the same Monte-Carlo machinery: every LPE Monte-Carlo sample
carries the parameter vector that produced it, so the first-order variance
contribution of each parameter can be estimated directly from the sample
set (squared Pearson correlation between the parameter and the resulting
tdp — exact for an additive linear response, a good screening metric for
the mildly non-linear one here).

Typical questions it answers:

* at an 8 nm overlay budget, what fraction of the LE3 tdp variance comes
  from the two overlay errors versus the three CD errors?
* once the budget is tightened to 3 nm, does CD take over as the limiter?
* for SADP, is it the core CD or the spacer deposition that matters?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..extraction.lpe import RCVariation
from ..variability.doe import DOEPoint
from .analytical import AnalyticalDelayModel
from .montecarlo import MonteCarloTdpStudy


class AttributionError(ValueError):
    """Raised for ill-posed attribution requests."""


@dataclass(frozen=True)
class ParameterContribution:
    """First-order variance contribution of one patterning parameter."""

    parameter: str
    correlation: float
    variance_share: float

    @property
    def variance_share_percent(self) -> float:
        return self.variance_share * 100.0


@dataclass(frozen=True)
class AttributionResult:
    """Variance attribution of one study point."""

    option_name: str
    overlay_three_sigma_nm: Optional[float]
    n_wordlines: int
    n_samples: int
    total_sigma_percent: float
    contributions: Tuple[ParameterContribution, ...]

    def share_of(self, parameter: str) -> float:
        for contribution in self.contributions:
            if contribution.parameter == parameter:
                return contribution.variance_share
        raise AttributionError(
            f"no contribution recorded for parameter {parameter!r}; "
            f"parameters: {[c.parameter for c in self.contributions]}"
        )

    def grouped_share(self, prefix: str) -> float:
        """Summed variance share of every parameter whose name starts with ``prefix``.

        ``grouped_share("ol:")`` gives the total overlay contribution,
        ``grouped_share("cd:")`` the total CD contribution.
        """
        return sum(
            contribution.variance_share
            for contribution in self.contributions
            if contribution.parameter.startswith(prefix)
        )

    def dominant_parameter(self) -> str:
        if not self.contributions:
            raise AttributionError("no contributions recorded")
        return max(self.contributions, key=lambda c: c.variance_share).parameter

    @property
    def explained_fraction(self) -> float:
        """Sum of first-order shares (≈1 for an additive response)."""
        return sum(contribution.variance_share for contribution in self.contributions)


def attribute_from_variations(
    variations: Sequence[RCVariation],
    model: AnalyticalDelayModel,
    n_wordlines: int,
    option_name: str,
    overlay_three_sigma_nm: Optional[float] = None,
) -> AttributionResult:
    """Compute the attribution from an existing list of RC-variation samples."""
    if len(variations) < 10:
        raise AttributionError("variance attribution needs at least 10 samples")
    parameter_names = sorted(variations[0].parameters)
    if not parameter_names:
        raise AttributionError("the variation samples carry no parameter values")

    tdp = np.array(
        [
            model.tdp_percent(n_wordlines, variation.rvar, variation.cvar)
            for variation in variations
        ]
    )
    total_sigma = float(np.std(tdp, ddof=1))

    contributions: List[ParameterContribution] = []
    for name in parameter_names:
        values = np.array([variation.parameters.get(name, 0.0) for variation in variations])
        if np.std(values) == 0.0 or total_sigma == 0.0:
            correlation = 0.0
        else:
            correlation = float(np.corrcoef(values, tdp)[0, 1])
        contributions.append(
            ParameterContribution(
                parameter=name,
                correlation=correlation,
                variance_share=correlation * correlation,
            )
        )
    contributions.sort(key=lambda c: c.variance_share, reverse=True)
    return AttributionResult(
        option_name=option_name,
        overlay_three_sigma_nm=overlay_three_sigma_nm,
        n_wordlines=n_wordlines,
        n_samples=len(variations),
        total_sigma_percent=total_sigma,
        contributions=tuple(contributions),
    )


class VarianceAttribution:
    """Runs the attribution for the study points of a Monte-Carlo study."""

    def __init__(self, study: MonteCarloTdpStudy) -> None:
        self.study = study

    def attribute(self, point: DOEPoint) -> AttributionResult:
        variations = self.study.rc_variation_samples(point)
        return attribute_from_variations(
            variations,
            self.study.model,
            n_wordlines=point.n_wordlines,
            option_name=point.option_name,
            overlay_three_sigma_nm=point.overlay_three_sigma_nm,
        )

    def overlay_versus_cd(
        self,
        option_name: str = "LELELE",
        n_wordlines: int = 64,
    ) -> Dict[float, Tuple[float, float]]:
        """Overlay-versus-CD variance split across the overlay sweep.

        Returns ``{overlay_budget: (overlay_share, cd_share)}`` — the data
        behind the paper's "tight OL control is required" conclusion.
        """
        result: Dict[float, Tuple[float, float]] = {}
        for budget in self.study.doe.overlay_budgets_nm:
            point = DOEPoint(
                n_wordlines=n_wordlines,
                option_name=option_name,
                overlay_three_sigma_nm=budget,
            )
            attribution = self.attribute(point)
            result[budget] = (
                attribution.grouped_share("ol:"),
                attribution.grouped_share("cd:"),
            )
        return result
