"""The SRAM operation suite: one registry over read / write / margin analyses.

The paper's pipeline measures a single figure of merit (the read time td);
this module generalises it into a family of *operations* that share one
layout → patterning → extraction → circuit stack:

========== ======================================== ======= =========
name       measurement                              metric  unit
========== ======================================== ======= =========
read       word-line assert → sense-amp fire        delay   seconds
write      word-line assert → internal q/qb flip    delay   seconds
hold_snm   hold static noise margin (butterfly)     margin  volts
read_snm   read static noise margin (butterfly)     margin  volts
========== ======================================== ======= =========

Every operation implements the small :class:`Operation` interface
(nominal / printed-corner / scaled-variation measurements returning a
uniform :class:`OperationMeasurement`), so the campaign engine, the
worst-case study and the Monte-Carlo layer can iterate over operations
the same way they iterate over patterning options and array sizes.

:class:`OperationSimulators` bundles the three simulators behind one
shared geometry stack — layouts, nominal and printed extractions are
computed once per column no matter how many operations visit it.

:class:`OperationResponseSurface` is the analytical layer's hook for the
Monte-Carlo twins: a first-order response surface in (Rvar, Cvar),
calibrated from a handful of full simulations, maps a whole batch of
extracted variation samples to per-operation impacts in one vectorised
evaluation (the same trick the paper plays with eq. 4 for the read time).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..circuit.batch import PreparedWork
from ..patterning.base import ParameterValues, PatterningOption
from ..sram.margins import SRAMMarginAnalyzer
from ..sram.read_path import ReadPathSimulator
from ..sram.write_path import WritePathSimulator
from ..technology.node import TechnologyNode

#: Operation names in registry order.
OPERATION_NAMES = ("read", "write", "hold_snm", "read_snm")


class OperationError(RuntimeError):
    """Raised for unknown operations or inconsistent measurements."""


@dataclass(frozen=True)
class OperationMeasurement:
    """Uniform outcome of one operation measurement.

    ``value`` is the operation's primary scalar (a delay in seconds or a
    margin in volts, per ``unit``); the remaining fields carry whatever
    the underlying harness measured (zeros where not applicable, e.g. the
    DC margins have no transient timestamps).
    """

    operation: str
    n_cells: int
    label: str
    value: float
    unit: str
    td_s: float = 0.0
    wordline_time_s: float = 0.0
    sense_time_s: float = 0.0
    stop_reason: str = "dc"
    bitline_resistance_ohm: float = 0.0
    bitline_capacitance_f: float = 0.0
    vss_rail_resistance_ohm: float = 0.0

    def change_percent_vs(self, nominal: "OperationMeasurement") -> float:
        """Relative change of the primary value versus a nominal, percent.

        Positive means a larger value; whether that is good or bad depends
        on the metric (delays degrade upwards, margins downwards).
        """
        if nominal.value == 0.0:
            raise OperationError("nominal value must be nonzero")
        return (self.value / nominal.value - 1.0) * 100.0


class OperationSimulators:
    """The three column simulators behind one shared geometry stack.

    The read simulator owns the layout / extraction / parasitics caches;
    the write simulator and the margin analyzer compose it, so a campaign
    chunk mixing operations extracts each printed layout exactly once.
    Construction is lazy — a read-only workload never builds the others.
    """

    def __init__(
        self,
        node: TechnologyNode,
        n_bitline_pairs: int = 10,
        max_segments: int = 64,
        vss_strap_interval_cells: int = 256,
        transient_method: Optional[str] = None,
    ) -> None:
        self.node = node
        self.n_bitline_pairs = n_bitline_pairs
        self.max_segments = max_segments
        self.vss_strap_interval_cells = vss_strap_interval_cells
        self.transient_method = transient_method
        self._read: Optional[ReadPathSimulator] = None
        self._write: Optional[WritePathSimulator] = None
        self._margins: Optional[SRAMMarginAnalyzer] = None

    @property
    def read(self) -> ReadPathSimulator:
        if self._read is None:
            self._read = ReadPathSimulator(
                self.node,
                n_bitline_pairs=self.n_bitline_pairs,
                max_segments=self.max_segments,
                vss_strap_interval_cells=self.vss_strap_interval_cells,
                transient_method=self.transient_method,
            )
        return self._read

    @property
    def write(self) -> WritePathSimulator:
        if self._write is None:
            self._write = WritePathSimulator(
                self.node,
                n_bitline_pairs=self.n_bitline_pairs,
                max_segments=self.max_segments,
                vss_strap_interval_cells=self.vss_strap_interval_cells,
                transient_method=self.transient_method,
                geometry=self.read,
            )
        return self._write

    @property
    def margins(self) -> SRAMMarginAnalyzer:
        if self._margins is None:
            self._margins = SRAMMarginAnalyzer(
                self.node,
                n_bitline_pairs=self.n_bitline_pairs,
                vss_strap_interval_cells=self.vss_strap_interval_cells,
                geometry=self.read,
            )
        return self._margins

    def adopt_shared_caches(self, donor: "OperationSimulators") -> None:
        """Share the donor bundle's geometry caches (see ReadPathSimulator)."""
        self.read.adopt_shared_caches(donor.read)


class Operation(abc.ABC):
    """One SRAM operation: a named measurement over the shared stack."""

    #: Registry name (e.g. ``"write"``).
    name: str = ""
    #: ``"delay"`` (higher is worse) or ``"margin"`` (lower is worse).
    metric: str = "delay"
    #: Unit of the primary value (``"s"`` or ``"V"``).
    unit: str = "s"

    @abc.abstractmethod
    def measure_nominal(
        self, sims: OperationSimulators, n_cells: int, stored_value: int = 0
    ) -> OperationMeasurement:
        """The nominal (un-distorted) measurement for one column."""

    @abc.abstractmethod
    def measure_with_patterning(
        self,
        sims: OperationSimulators,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        stored_value: int = 0,
        label: Optional[str] = None,
    ) -> OperationMeasurement:
        """The measurement with the column printed by ``option``."""

    def prepare_nominal(
        self, sims: OperationSimulators, n_cells: int, stored_value: int = 0
    ) -> PreparedWork:
        """Nominal measurement as prepared work for the batched solver tier.

        The default carries no lanes and simply defers to the scalar
        :meth:`measure_nominal` at finish time, so custom operations stay
        correct (if unbatched) without overriding this.
        """
        return PreparedWork(
            lanes=[],
            finish=lambda _results: self.measure_nominal(
                sims, n_cells, stored_value=stored_value
            ),
        )

    def prepare_with_patterning(
        self,
        sims: OperationSimulators,
        n_cells: int,
        option: PatterningOption,
        parameters: ParameterValues,
        stored_value: int = 0,
        label: Optional[str] = None,
    ) -> PreparedWork:
        """Printed-corner measurement as prepared work (default: unbatched)."""
        return PreparedWork(
            lanes=[],
            finish=lambda _results: self.measure_with_patterning(
                sims,
                n_cells,
                option,
                parameters,
                stored_value=stored_value,
                label=label,
            ),
        )

    @abc.abstractmethod
    def value_with_variation(
        self,
        sims: OperationSimulators,
        n_cells: int,
        rvar: float,
        cvar: float,
        rail_rvar: float = 1.0,
    ) -> float:
        """Primary value with the nominal column scaled by explicit ratios.

        ``rvar``/``cvar`` scale the bit-line wire parasitics, ``rail_rvar``
        the supply-rail resistances.  The response-surface calibration uses
        this fast path (no printing, no extraction).
        """

    def prepare_value_with_variation(
        self,
        sims: OperationSimulators,
        n_cells: int,
        rvar: float,
        cvar: float,
        rail_rvar: float = 1.0,
    ) -> PreparedWork:
        """Ratio-scaled primary value as prepared work.

        The high-sigma engine stacks many of these into one batched solve
        when it promotes surrogate-uncertain samples.  The default defers
        to the scalar :meth:`value_with_variation` (zero lanes), so custom
        operations stay correct without overriding it.
        """
        return PreparedWork(
            lanes=[],
            finish=lambda _results: self.value_with_variation(
                sims, n_cells, rvar, cvar, rail_rvar=rail_rvar
            ),
        )


class ReadOperation(Operation):
    """The paper's read-time measurement, wrapped as an operation."""

    name = "read"
    metric = "delay"
    unit = "s"

    @staticmethod
    def _wrap(measurement) -> OperationMeasurement:
        return OperationMeasurement(
            operation="read",
            n_cells=measurement.n_cells,
            label=measurement.label,
            value=measurement.td_s,
            unit="s",
            td_s=measurement.td_s,
            wordline_time_s=measurement.wordline_time_s,
            sense_time_s=measurement.sense_time_s,
            stop_reason=measurement.stop_reason,
            bitline_resistance_ohm=measurement.bitline_resistance_ohm,
            bitline_capacitance_f=measurement.bitline_capacitance_f,
            vss_rail_resistance_ohm=measurement.vss_rail_resistance_ohm,
        )

    def measure_nominal(self, sims, n_cells, stored_value=0):
        return self._wrap(sims.read.measure_nominal(n_cells, stored_value=stored_value))

    def measure_with_patterning(
        self, sims, n_cells, option, parameters, stored_value=0, label=None
    ):
        return self._wrap(
            sims.read.measure_with_patterning(
                n_cells, option, parameters, label=label, stored_value=stored_value
            )
        )

    def prepare_nominal(self, sims, n_cells, stored_value=0):
        return sims.read.prepare_nominal(
            n_cells, stored_value=stored_value
        ).mapped(self._wrap)

    def prepare_with_patterning(
        self, sims, n_cells, option, parameters, stored_value=0, label=None
    ):
        return sims.read.prepare_with_patterning(
            n_cells, option, parameters, label=label, stored_value=stored_value
        ).mapped(self._wrap)

    def value_with_variation(self, sims, n_cells, rvar, cvar, rail_rvar=1.0):
        return sims.read.measure_with_variation(
            n_cells, rvar, cvar, vss_rvar=rail_rvar
        ).td_s

    def prepare_value_with_variation(self, sims, n_cells, rvar, cvar, rail_rvar=1.0):
        return sims.read.prepare_with_variation(
            n_cells, rvar, cvar, vss_rvar=rail_rvar
        ).mapped(lambda measurement: measurement.td_s)


class WriteOperation(Operation):
    """Write delay: word-line assert to the internal q/qb flip."""

    name = "write"
    metric = "delay"
    unit = "s"

    @staticmethod
    def _wrap(measurement) -> OperationMeasurement:
        return OperationMeasurement(
            operation="write",
            n_cells=measurement.n_cells,
            label=measurement.label,
            value=measurement.write_delay_s,
            unit="s",
            td_s=measurement.write_delay_s,
            wordline_time_s=measurement.wordline_time_s,
            sense_time_s=measurement.flip_time_s,
            stop_reason=measurement.stop_reason,
            bitline_resistance_ohm=measurement.bitline_resistance_ohm,
            bitline_capacitance_f=measurement.bitline_capacitance_f,
            vss_rail_resistance_ohm=measurement.vss_rail_resistance_ohm,
        )

    def measure_nominal(self, sims, n_cells, stored_value=0):
        return self._wrap(sims.write.measure_nominal(n_cells, write_value=stored_value))

    def measure_with_patterning(
        self, sims, n_cells, option, parameters, stored_value=0, label=None
    ):
        return self._wrap(
            sims.write.measure_with_patterning(
                n_cells, option, parameters, label=label, write_value=stored_value
            )
        )

    def prepare_nominal(self, sims, n_cells, stored_value=0):
        return sims.write.prepare_nominal(
            n_cells, write_value=stored_value
        ).mapped(self._wrap)

    def prepare_with_patterning(
        self, sims, n_cells, option, parameters, stored_value=0, label=None
    ):
        return sims.write.prepare_with_patterning(
            n_cells, option, parameters, label=label, write_value=stored_value
        ).mapped(self._wrap)

    def value_with_variation(self, sims, n_cells, rvar, cvar, rail_rvar=1.0):
        return sims.write.measure_with_variation(
            n_cells, rvar, cvar, vss_rvar=rail_rvar
        ).write_delay_s

    def prepare_value_with_variation(self, sims, n_cells, rvar, cvar, rail_rvar=1.0):
        return sims.write.prepare_with_variation(
            n_cells, rvar, cvar, vss_rvar=rail_rvar
        ).mapped(lambda measurement: measurement.write_delay_s)


class _SnmOperation(Operation):
    """Shared implementation of the two butterfly-curve margins."""

    metric = "margin"
    unit = "V"
    mode = "hold"

    def _wrap(self, measurement) -> OperationMeasurement:
        return OperationMeasurement(
            operation=self.name,
            n_cells=measurement.n_cells,
            label=measurement.label,
            value=measurement.snm_v,
            unit="V",
            stop_reason="dc",
            bitline_resistance_ohm=measurement.bitline_resistance_ohm,
            vss_rail_resistance_ohm=measurement.vss_rail_resistance_ohm,
        )

    def measure_nominal(self, sims, n_cells, stored_value=0):
        # The butterfly breaks the loop symmetrically; the stored value has
        # no meaning for a static margin and is deliberately ignored.
        return self._wrap(sims.margins.measure_nominal(n_cells, mode=self.mode))

    def measure_with_patterning(
        self, sims, n_cells, option, parameters, stored_value=0, label=None
    ):
        return self._wrap(
            sims.margins.measure_with_patterning(
                n_cells, option, parameters, mode=self.mode, label=label
            )
        )

    def prepare_nominal(self, sims, n_cells, stored_value=0):
        return sims.margins.prepare_nominal(n_cells, mode=self.mode).mapped(self._wrap)

    def prepare_with_patterning(
        self, sims, n_cells, option, parameters, stored_value=0, label=None
    ):
        return sims.margins.prepare_with_patterning(
            n_cells, option, parameters, mode=self.mode, label=label
        ).mapped(self._wrap)

    def value_with_variation(self, sims, n_cells, rvar, cvar, rail_rvar=1.0):
        return sims.margins.measure_with_variation(
            n_cells, rvar, cvar, vss_rvar=rail_rvar, mode=self.mode
        ).snm_v

    def prepare_value_with_variation(self, sims, n_cells, rvar, cvar, rail_rvar=1.0):
        return sims.margins.prepare_with_variation(
            n_cells, rvar, cvar, vss_rvar=rail_rvar, mode=self.mode
        ).mapped(lambda measurement: measurement.snm_v)


class HoldSnmOperation(_SnmOperation):
    name = "hold_snm"
    mode = "hold"


class ReadSnmOperation(_SnmOperation):
    name = "read_snm"
    mode = "read"


_REGISTRY: Dict[str, Operation] = {
    op.name: op
    for op in (ReadOperation(), WriteOperation(), HoldSnmOperation(), ReadSnmOperation())
}


def ensure_operation(name: str, error: type = OperationError) -> str:
    """Validate an operation name, raising ``error`` when unknown.

    Single source of the unknown-operation complaint, shared by the
    registry lookup and the declarative spec layer (which raises
    :class:`~repro.core.spec.SpecError` instead).
    """
    if name not in _REGISTRY:
        raise error(f"unknown operation {name!r}; available: {OPERATION_NAMES}")
    return name


def create_operation(name: str) -> Operation:
    """Look an operation up by registry name."""
    return _REGISTRY[ensure_operation(name)]


ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class OperationResponseSurface:
    """First-order response surface of one operation in (Rvar, Cvar, rail Rvar).

    ``value ≈ base + d_rvar·(rvar−1) + d_cvar·(cvar−1) + d_rail·(rail−1)``
    with the partial derivatives calibrated by central differences on the
    full simulator.  This is the operation suite's analogue of the paper's
    analytical read-time formula: it turns a batch of extracted variation
    samples into per-sample impacts without one circuit solve per sample.
    The rail axis matters for the margins — the hold SNM couples to the
    supply rails, not to the bit-line wire parasitics.
    """

    operation: str
    n_cells: int
    base_value: float
    unit: str
    d_rvar: float
    d_cvar: float
    d_rail_rvar: float
    delta: float

    def values(
        self, rvar: ArrayLike, cvar: ArrayLike, rail_rvar: ArrayLike = 1.0
    ) -> ArrayLike:
        return (
            self.base_value
            + self.d_rvar * (np.asarray(rvar) - 1.0)
            + self.d_cvar * (np.asarray(cvar) - 1.0)
            + self.d_rail_rvar * (np.asarray(rail_rvar) - 1.0)
        )

    def change_percent(
        self, rvar: ArrayLike, cvar: ArrayLike, rail_rvar: ArrayLike = 1.0
    ) -> ArrayLike:
        """Relative change of the value versus nominal, in percent."""
        if self.base_value == 0.0:
            raise OperationError("the response surface base value must be nonzero")
        return (self.values(rvar, cvar, rail_rvar) / self.base_value - 1.0) * 100.0


def calibrate_response_surface(
    operation: Operation,
    sims: OperationSimulators,
    n_cells: int,
    delta: float = 0.05,
) -> OperationResponseSurface:
    """Fit the first-order surface with seven full simulations.

    One nominal plus two central-difference points at ``1 ± delta`` on
    each of the three axes; the result is deterministic, so callers can
    cache it per (operation, array size).
    """
    if not 0.0 < delta < 1.0:
        raise OperationError("the calibration delta must be within (0, 1)")
    base = operation.measure_nominal(sims, n_cells).value
    r_hi = operation.value_with_variation(sims, n_cells, 1.0 + delta, 1.0)
    r_lo = operation.value_with_variation(sims, n_cells, 1.0 - delta, 1.0)
    c_hi = operation.value_with_variation(sims, n_cells, 1.0, 1.0 + delta)
    c_lo = operation.value_with_variation(sims, n_cells, 1.0, 1.0 - delta)
    v_hi = operation.value_with_variation(sims, n_cells, 1.0, 1.0, 1.0 + delta)
    v_lo = operation.value_with_variation(sims, n_cells, 1.0, 1.0, 1.0 - delta)
    return OperationResponseSurface(
        operation=operation.name,
        n_cells=n_cells,
        base_value=base,
        unit=operation.unit,
        d_rvar=(r_hi - r_lo) / (2.0 * delta),
        d_cvar=(c_hi - c_lo) / (2.0 * delta),
        d_rail_rvar=(v_hi - v_lo) / (2.0 * delta),
        delta=delta,
    )
