"""Top-level study orchestration.

:class:`MultiPatterningSRAMStudy` runs the complete evaluation of the
paper — every table and every figure — from a single technology node, and
collects the results into a :class:`~repro.core.results.StudyReport`.  It
is the object the examples and benches drive, and the quickest way for a
downstream user to reproduce the whole paper:

>>> from repro import MultiPatterningSRAMStudy
>>> from repro.technology import n10
>>> study = MultiPatterningSRAMStudy(n10())
>>> report = study.run(monte_carlo_samples=200)     # doctest: +SKIP
>>> report.is_complete()                            # doctest: +SKIP
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..sram.read_path import ReadPathSimulator
from ..technology.node import TechnologyNode
from ..variability.doe import StudyDOE, paper_doe
from .analytical import AnalyticalDelayModel, model_from_technology
from .campaign import CampaignScenario, SimulationCampaign, scenario_grid
from .comparison import ComparisonVerdict, OptionComparison
from .montecarlo import MonteCarloTdpStudy
from .results import StudyReport
from .spec import (
    ArraySpec,
    ExecutionSpec,
    ExperimentSpec,
    OperationSpec,
    TechnologySpec,
)
from .validation import FormulaValidation
from .worst_case import WorstCaseStudy


class StudyError(RuntimeError):
    """Raised when the study cannot be configured."""


@dataclass
class MultiPatterningSRAMStudy:
    """Full reproduction driver.

    Parameters
    ----------
    node:
        Technology node (defaults elsewhere to :func:`repro.technology.n10`).
    doe:
        Experiment grid; the paper's grid by default.  Pass
        :func:`repro.variability.doe.reduced_doe` for fast smoke runs.
    monte_carlo_samples:
        Samples per Monte-Carlo study point.
    seed:
        Base random seed for the Monte-Carlo study.
    """

    node: TechnologyNode
    doe: StudyDOE = field(default_factory=paper_doe)
    monte_carlo_samples: int = 1000
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.monte_carlo_samples < 2:
            raise StudyError("the study needs at least two Monte-Carlo samples")
        self._simulator = ReadPathSimulator(
            self.node, n_bitline_pairs=self.doe.n_bitline_pairs
        )
        self._model = model_from_technology(
            self.node, n_bitline_pairs=self.doe.n_bitline_pairs
        )
        self._worst_case = WorstCaseStudy(self.node, doe=self.doe)
        self._validation = FormulaValidation(
            self.node,
            doe=self.doe,
            model=self._model,
            simulator=self._simulator,
            worst_case=self._worst_case,
        )
        self._monte_carlo = MonteCarloTdpStudy(
            self.node,
            doe=self.doe,
            model=self._model,
            n_samples=self.monte_carlo_samples,
            seed=self.seed,
        )
        self._campaign: Optional[SimulationCampaign] = None
        self._operation_campaigns: Dict[tuple, SimulationCampaign] = {}

    # -- declarative bridge --------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: ExperimentSpec) -> "MultiPatterningSRAMStudy":
        """Build the study from a declarative :class:`ExperimentSpec`.

        The study is maintained as a compatibility front door; new code
        should describe experiments as specs and run them through
        :func:`repro.api.run`.
        """
        return cls(
            spec.technology.build(),
            doe=spec.array.to_doe(),
            monte_carlo_samples=spec.operation.samples,
            seed=spec.execution.seed,
        )

    def to_spec(self, kind: str = "campaign") -> ExperimentSpec:
        """The :class:`ExperimentSpec` equivalent of this study's settings.

        The returned document reproduces this study's node, DOE, sample
        count and seed, so ``repro.api.run(study.to_spec(kind))`` replays
        the corresponding experiment without the constructor.
        """
        return ExperimentSpec(
            kind=kind,
            technology=TechnologySpec(
                overlay_three_sigma_nm=(
                    self.node.variations.litho_etch.overlay.three_sigma_nm
                )
            ),
            array=ArraySpec(
                sizes=tuple(self.doe.array_sizes),
                options=tuple(self.doe.option_names),
                n_bitline_pairs=self.doe.n_bitline_pairs,
                overlay_budgets_nm=tuple(self.doe.overlay_budgets_nm),
            ),
            operation=OperationSpec(samples=self.monte_carlo_samples),
            execution=ExecutionSpec(seed=self.seed),
        )

    # -- component access ------------------------------------------------------------------

    @property
    def analytical_model(self) -> AnalyticalDelayModel:
        return self._model

    @property
    def simulator(self) -> ReadPathSimulator:
        return self._simulator

    @property
    def worst_case(self) -> WorstCaseStudy:
        return self._worst_case

    @property
    def validation(self) -> FormulaValidation:
        return self._validation

    @property
    def monte_carlo(self) -> MonteCarloTdpStudy:
        return self._monte_carlo

    # -- campaign plumbing -------------------------------------------------------------------

    def campaign(
        self,
        scenarios: Optional[Sequence[CampaignScenario]] = None,
        store_dir: Optional[Path] = None,
    ) -> SimulationCampaign:
        """A :class:`SimulationCampaign` over this study's node and DOE.

        The campaign shares the study's worst-case corner search, so corner
        discovery is never repeated between the sequential components and
        the campaign engine.
        """
        return SimulationCampaign(
            self.node,
            doe=self.doe,
            scenarios=scenarios,
            worst_case=self._worst_case,
            store_dir=store_dir,
            seed=self.seed,
        )

    def _campaign_for(
        self, array_sizes: Optional[Sequence[int]]
    ) -> SimulationCampaign:
        """The shared default campaign, or an ad-hoc one for a size subset.

        The shared instance memoizes records, so Fig. 4 / Table II /
        Table III (and repeated calls) simulate each work item exactly
        once.
        """
        if array_sizes is None or tuple(array_sizes) == self.doe.array_sizes:
            if self._campaign is None:
                self._campaign = self.campaign()
            return self._campaign
        return SimulationCampaign(
            self.node,
            doe=replace(self.doe, array_sizes=tuple(array_sizes)),
            worst_case=self._worst_case,
            seed=self.seed,
        )

    def _operation_campaign_for(
        self,
        operations: tuple,
        array_sizes: Optional[Sequence[int]],
    ) -> SimulationCampaign:
        """A memoized campaign over one or more non-read operations."""
        scenarios = scenario_grid(operations=operations)
        if array_sizes is None or tuple(array_sizes) == self.doe.array_sizes:
            campaign = self._operation_campaigns.get(operations)
            if campaign is None:
                campaign = self.campaign(scenarios=scenarios)
                self._operation_campaigns[operations] = campaign
            return campaign
        return SimulationCampaign(
            self.node,
            doe=replace(self.doe, array_sizes=tuple(array_sizes)),
            scenarios=scenarios,
            worst_case=self._worst_case,
            seed=self.seed,
        )

    # -- individual experiments --------------------------------------------------------------

    def run_table1(self):
        """Worst-case ΔCbl/ΔRbl per option (Table I)."""
        return self._worst_case.table1()

    def run_figure2(self):
        """Worst-case layout distortion per option (Fig. 2)."""
        return self._worst_case.figure2()

    def run_figure4(
        self,
        array_sizes: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
    ):
        """Worst-case td penalties versus array size (Fig. 4).

        Runs through the campaign engine: identical numbers to the
        sequential :meth:`WorstCaseStudy.figure4` (the parity suite pins
        this), with memoized work items and optional multiprocessing.
        """
        campaign = self._campaign_for(array_sizes)
        return campaign.figure4_rows(campaign.run(workers=workers))

    def run_table2(
        self,
        array_sizes: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
    ):
        """Nominal td: formula versus simulation (Table II).

        Only the nominal items run — Table II needs no corner search and
        no corner simulations.
        """
        campaign = self._campaign_for(array_sizes)
        return campaign.table2_rows(
            campaign.run(workers=workers, kinds=("nominal",)), self._model
        )

    def run_table3(
        self,
        array_sizes: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
    ):
        """Worst-case tdp: formula versus simulation (Table III)."""
        campaign = self._campaign_for(array_sizes)
        return campaign.table3_rows(campaign.run(workers=workers), self._model)

    def run_operation(
        self,
        operation: str,
        array_sizes: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
    ):
        """Worst-case impact rows of one operation (the Fig. 4 twin).

        Runs through the campaign engine's operation axis; the numbers are
        pinned at ``rtol <= 1e-12`` against the sequential
        :meth:`WorstCaseStudy.operation_rows` path.
        """
        campaign = self._operation_campaign_for((operation,), array_sizes)
        results = campaign.run(workers=workers)
        return campaign.operation_rows(results, campaign.scenarios[0])

    def run_write(
        self,
        array_sizes: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
    ):
        """Worst-case write-delay impact per option and array size."""
        return self.run_operation("write", array_sizes=array_sizes, workers=workers)

    def run_margins(
        self,
        array_sizes: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
    ):
        """Hold and read SNM impact rows, keyed by operation name.

        One campaign carries both margin operations, so the two analyses
        share every layout, extraction and printed corner.
        """
        campaign = self._operation_campaign_for(("hold_snm", "read_snm"), array_sizes)
        results = campaign.run(workers=workers)
        return {
            scenario.operation: campaign.operation_rows(results, scenario)
            for scenario in campaign.scenarios
        }

    def run_operation_sigma(self, operation: str, n_wordlines: int = 64):
        """Monte-Carlo σ of one operation's impact (the Table IV twin)."""
        return self._monte_carlo.operation_sigma_rows(operation, n_wordlines=n_wordlines)

    def run_figure5(self, n_wordlines: int = 64, overlay_three_sigma_nm: float = 8.0):
        """Monte-Carlo tdp distributions (Fig. 5)."""
        return self._monte_carlo.figure5(
            n_wordlines=n_wordlines, overlay_three_sigma_nm=overlay_three_sigma_nm
        )

    def run_table4(self, n_wordlines: int = 64):
        """Monte-Carlo tdp σ per option and overlay budget (Table IV)."""
        return self._monte_carlo.table4(n_wordlines=n_wordlines)

    # -- the whole paper --------------------------------------------------------------------------

    def run(
        self,
        array_sizes: Optional[Sequence[int]] = None,
        monte_carlo_samples: Optional[int] = None,
        monte_carlo_wordlines: int = 64,
    ) -> StudyReport:
        """Run every experiment and return the collected report.

        Parameters
        ----------
        array_sizes:
            Restrict the simulated array sizes (Fig. 4 / Tables II-III);
            ``None`` runs the full DOE.
        monte_carlo_samples:
            Override the per-point Monte-Carlo sample count for this run.
        monte_carlo_wordlines:
            Array size of the Monte-Carlo study (the paper uses 64).
        """
        if monte_carlo_samples is not None:
            self._monte_carlo.n_samples = monte_carlo_samples

        report = StudyReport()
        report.table1 = self.run_table1()
        report.figure2 = self.run_figure2()
        report.figure4 = self.run_figure4(array_sizes=array_sizes)
        report.table2 = self.run_table2(array_sizes=array_sizes)
        report.table3 = self.run_table3(array_sizes=array_sizes)
        report.figure5 = self.run_figure5(n_wordlines=monte_carlo_wordlines)
        report.table4 = self.run_table4(n_wordlines=monte_carlo_wordlines)
        return report

    def verdict(self, report: Optional[StudyReport] = None) -> ComparisonVerdict:
        """The Section-IV recommendation computed from a report.

        When no report is given, the (cheaper) Fig. 4 and Table IV parts
        are computed on the fly.
        """
        if report is not None and report.figure4 and report.table4:
            figure4_rows = report.figure4
            table4_rows = report.table4
        else:
            figure4_rows = self.run_figure4()
            table4_rows = self.run_table4()
        comparison = OptionComparison(figure4_rows, table4_rows)
        return comparison.verdict()
