"""Core contribution: analytical td/tdp model, worst-case and Monte-Carlo studies.

This package implements the paper's actual contribution on top of the
substrates (layout, patterning, extraction, circuit, SRAM): the analytical
read-time formula of Section III, the worst-case variability analysis of
Section II, the Monte-Carlo tdp study, the formula-versus-simulation
validation and the option comparison / recommendation logic.
"""

from .analytical import (
    AnalyticalDelayModel,
    AnalyticalModelError,
    PolynomialCoefficients,
    discharge_constant,
    model_from_technology,
)
from .attribution import (
    AttributionError,
    AttributionResult,
    ParameterContribution,
    VarianceAttribution,
    attribute_from_variations,
)
from .campaign import (
    CampaignError,
    CampaignItem,
    CampaignRecord,
    CampaignResults,
    CampaignScenario,
    CampaignStore,
    SimulationCampaign,
    scenario_grid,
)
from .comparison import (
    ComparisonError,
    ComparisonVerdict,
    OptionComparison,
    OverlayRequirement,
)
from .failures import (
    FAILURE_POLICIES,
    ItemFailure,
    ItemTimeoutError,
    classify_error,
)
from .montecarlo import MonteCarloStudyError, MonteCarloTdpStudy
from .operations import (
    OPERATION_NAMES,
    Operation,
    OperationError,
    OperationMeasurement,
    OperationResponseSurface,
    OperationSimulators,
    calibrate_response_surface,
    create_operation,
    ensure_operation,
)
from .spec import (
    EXECUTION_BACKENDS,
    EXPERIMENT_KINDS,
    SCHEMA_VERSION,
    ArraySpec,
    ExecutionSpec,
    ExperimentSpec,
    OperationSpec,
    ScenarioSpec,
    SpecError,
    TechnologySpec,
    scenario_spec_grid,
)
from .results import (
    FormulaVsSimulationTdRow,
    FormulaVsSimulationTdpRow,
    LayoutDistortionRecord,
    MonteCarloTdpRecord,
    OperationImpactRow,
    OperationSigmaRow,
    StudyReport,
    TdpSigmaRow,
    TrackDistortion,
    WorstCaseRCRow,
    WorstCaseTdRow,
)
from .study import MultiPatterningSRAMStudy, StudyError
from .validation import FormulaValidation, ValidationError
from .worst_case import WorstCaseCorner, WorstCaseStudy, WorstCaseStudyError
from .yield_analysis import (
    ComplianceRow,
    OverlayYieldRequirement,
    ReadTimeYieldAnalysis,
    ViolationEstimate,
    YieldAnalysisError,
    array_yield_from_column_probability,
    violation_probability,
)

__all__ = [
    "ArraySpec",
    "EXECUTION_BACKENDS",
    "EXPERIMENT_KINDS",
    "ExecutionSpec",
    "ExperimentSpec",
    "OperationSpec",
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "SpecError",
    "TechnologySpec",
    "ensure_operation",
    "scenario_spec_grid",
    "AnalyticalDelayModel",
    "AnalyticalModelError",
    "CampaignError",
    "CampaignItem",
    "CampaignRecord",
    "CampaignResults",
    "CampaignScenario",
    "CampaignStore",
    "FAILURE_POLICIES",
    "ItemFailure",
    "ItemTimeoutError",
    "SimulationCampaign",
    "classify_error",
    "scenario_grid",
    "AttributionError",
    "AttributionResult",
    "ComparisonError",
    "ParameterContribution",
    "VarianceAttribution",
    "attribute_from_variations",
    "ComplianceRow",
    "OverlayYieldRequirement",
    "ReadTimeYieldAnalysis",
    "ViolationEstimate",
    "YieldAnalysisError",
    "array_yield_from_column_probability",
    "violation_probability",
    "ComparisonVerdict",
    "FormulaValidation",
    "FormulaVsSimulationTdRow",
    "FormulaVsSimulationTdpRow",
    "LayoutDistortionRecord",
    "MonteCarloStudyError",
    "MonteCarloTdpRecord",
    "MonteCarloTdpStudy",
    "MultiPatterningSRAMStudy",
    "OPERATION_NAMES",
    "Operation",
    "OperationError",
    "OperationImpactRow",
    "OperationMeasurement",
    "OperationResponseSurface",
    "OperationSigmaRow",
    "OperationSimulators",
    "OptionComparison",
    "OverlayRequirement",
    "calibrate_response_surface",
    "create_operation",
    "PolynomialCoefficients",
    "StudyError",
    "StudyReport",
    "TdpSigmaRow",
    "TrackDistortion",
    "ValidationError",
    "WorstCaseCorner",
    "WorstCaseRCRow",
    "WorstCaseStudy",
    "WorstCaseStudyError",
    "WorstCaseTdRow",
    "discharge_constant",
    "model_from_technology",
]
