"""Read-time yield analysis built on the Monte-Carlo tdp distributions.

The paper stops at the standard deviation of the read-time penalty
(Table IV); the obvious next question for a memory designer — and the
reason the paper bothers with full distributions at all — is *spec
compliance*: given a timing budget (say the sense clock has 10 % margin
over the nominal read), what fraction of bit lines violates it under each
patterning option, and how tight does the LE3 overlay budget have to be to
hit a parts-per-million target?

This module answers those questions from the same
:class:`~repro.core.montecarlo.MonteCarloTdpStudy` machinery:

* empirical and Gaussian-tail estimates of the violation probability of a
  tdp budget per option / overlay budget;
* per-array yield (every column of every word must meet the budget);
* the overlay budget required for a litho-etch option to reach a target
  violation probability, found by scanning the study's overlay sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..variability.doe import DOEPoint
from .montecarlo import MonteCarloTdpStudy
from .results import MonteCarloTdpRecord


class YieldAnalysisError(ValueError):
    """Raised for ill-posed yield questions."""


@dataclass(frozen=True)
class ViolationEstimate:
    """Probability that one bit line's tdp exceeds a budget.

    Two estimates are reported: the raw empirical fraction of Monte-Carlo
    samples above the budget, and a Gaussian-tail extrapolation fitted to
    the sample mean/σ (needed when the target probability is far below
    1/n_samples).
    """

    option_label: str
    budget_percent: float
    empirical_probability: float
    gaussian_probability: float
    n_samples: int
    sample_max: Optional[float] = None

    @property
    def method(self) -> str:
        """How :attr:`probability` was obtained.

        ``"empirical"`` when the raw Monte-Carlo fraction resolves the
        budget (at least three samples above it in expectation),
        ``"gaussian_tail"`` when the working estimate falls back to the
        fitted-normal extrapolation.
        """
        resolution = 1.0 / self.n_samples
        if self.empirical_probability >= 3.0 * resolution:
            return "empirical"
        return "gaussian_tail"

    @property
    def beyond_sampled_range(self) -> bool:
        """True when the Gaussian tail is queried past the largest sample.

        Out there nothing constrains the fit: the estimate is a pure
        extrapolation whose error grows with the distance, so consumers
        should treat the number as indicative only (or switch to the
        importance-sampling engine in :mod:`repro.highsigma`).
        """
        if self.method != "gaussian_tail" or self.sample_max is None:
            return False
        return self.budget_percent > self.sample_max

    @property
    def probability(self) -> float:
        """The working estimate: empirical when resolvable, Gaussian otherwise."""
        if self.method == "empirical":
            return self.empirical_probability
        return self.gaussian_probability

    @property
    def parts_per_million(self) -> float:
        return self.probability * 1e6


@dataclass(frozen=True)
class ComplianceRow:
    """Spec-compliance summary of one study point."""

    option_name: str
    overlay_three_sigma_nm: Optional[float]
    budget_percent: float
    violation: ViolationEstimate
    column_yield: float
    array_yield: float

    @property
    def label(self) -> str:
        if self.overlay_three_sigma_nm is None:
            return self.option_name
        return f"{self.option_name} {self.overlay_three_sigma_nm:g}nm OL"

    def to_record(self) -> Dict[str, object]:
        """Flat, JSON-ready view (the ``ResultSet`` record of this row)."""
        return {
            "record": "compliance",
            "option": self.option_name,
            "overlay_three_sigma_nm": self.overlay_three_sigma_nm,
            "budget_percent": self.budget_percent,
            "violation_probability": self.violation.probability,
            "violation_ppm": self.violation.parts_per_million,
            "method": self.violation.method,
            "beyond_sampled_range": self.violation.beyond_sampled_range,
            "empirical_probability": self.violation.empirical_probability,
            "gaussian_probability": self.violation.gaussian_probability,
            "column_yield": self.column_yield,
            "array_yield": self.array_yield,
        }


@dataclass(frozen=True)
class OverlayYieldRequirement:
    """Overlay budget needed to bring violations below a ppm target."""

    option_name: str
    budget_percent: float
    target_ppm: float
    required_overlay_nm: Optional[float]
    achieved_ppm_by_overlay: Dict[float, float] = field(default_factory=dict)

    @property
    def achievable(self) -> bool:
        return self.required_overlay_nm is not None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (embedded in ``ResultSet`` metadata)."""
        return {
            "option": self.option_name,
            "budget_percent": self.budget_percent,
            "target_ppm": self.target_ppm,
            "required_overlay_nm": self.required_overlay_nm,
            "achievable": self.achievable,
            "achieved_ppm_by_overlay": {
                f"{overlay:g}": ppm
                for overlay, ppm in sorted(self.achieved_ppm_by_overlay.items())
            },
        }


def violation_probability(
    record: MonteCarloTdpRecord, budget_percent: float
) -> ViolationEstimate:
    """Probability that the record's tdp exceeds ``budget_percent``."""
    if budget_percent <= 0.0:
        raise YieldAnalysisError("the tdp budget must be positive (in percent)")
    samples = np.asarray(record.tdp_percent_samples)
    empirical = float(np.mean(samples > budget_percent))
    sigma = record.summary.std
    if sigma <= 0.0:
        gaussian = 0.0 if record.summary.mean <= budget_percent else 1.0
    else:
        gaussian = float(stats.norm.sf(budget_percent, loc=record.summary.mean, scale=sigma))
    return ViolationEstimate(
        option_label=record.label,
        budget_percent=budget_percent,
        empirical_probability=empirical,
        gaussian_probability=gaussian,
        n_samples=record.n_samples,
        sample_max=float(samples.max()) if samples.size else None,
    )


def array_yield_from_column_probability(
    violation: float, n_columns: int, n_words: int = 1
) -> float:
    """Yield of an array whose every column (and word) must meet the budget.

    Columns are treated as independent samples of the interconnect
    variability — the standard assumption for uncorrelated local
    variations.  ``n_words`` allows modelling repeated column groups
    (banks); the default considers one column group.
    """
    if not 0.0 <= violation <= 1.0:
        raise YieldAnalysisError("the violation probability must be within [0, 1]")
    if n_columns < 1 or n_words < 1:
        raise YieldAnalysisError("column and word counts must be positive")
    survive = 1.0 - violation
    return float(survive ** (n_columns * n_words))


class ReadTimeYieldAnalysis:
    """Spec-compliance analysis on top of a Monte-Carlo tdp study."""

    def __init__(self, study: MonteCarloTdpStudy) -> None:
        self.study = study
        self._record_cache: Dict[str, MonteCarloTdpRecord] = {}

    # -- plumbing ------------------------------------------------------------------------

    def _record_for(self, point: DOEPoint) -> MonteCarloTdpRecord:
        if point.label not in self._record_cache:
            self._record_cache[point.label] = self.study.tdp_record(point)
        return self._record_cache[point.label]

    def prefetch(
        self,
        points: Optional[Sequence[DOEPoint]] = None,
        workers: Optional[int] = None,
    ) -> None:
        """Warm the record cache, optionally over a process pool.

        Defaults to the study DOE's Monte-Carlo grid; combined with the
        batched study path this turns a full compliance sweep into a few
        vectorised evaluations per worker.
        """
        chosen = list(points) if points is not None else self.study.doe.monte_carlo_points()
        missing = [point for point in chosen if point.label not in self._record_cache]
        if not missing:
            return
        for point, record in zip(
            missing, self.study.tdp_records(missing, workers=workers)
        ):
            self._record_cache[point.label] = record

    # -- per-option compliance -------------------------------------------------------------

    def compliance_table(
        self,
        budget_percent: float,
        n_wordlines: int = 64,
        n_columns: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> List[ComplianceRow]:
        """Violation probability and yield for every study point.

        Parameters
        ----------
        budget_percent:
            Allowed read-time penalty (e.g. ``10.0`` for a 10 % margin).
        n_wordlines:
            Array size of the underlying Monte-Carlo study.
        n_columns:
            Columns per array for the array-yield figure; defaults to the
            DOE's word length (10 bit-line pairs).
        workers:
            Optional process-pool width for computing the missing records.
        """
        columns = n_columns if n_columns is not None else self.study.doe.n_bitline_pairs
        points = self.study.doe.monte_carlo_points(n_wordlines=n_wordlines)
        self.prefetch(points, workers=workers)
        rows: List[ComplianceRow] = []
        for point in points:
            record = self._record_for(point)
            estimate = violation_probability(record, budget_percent)
            column_yield = 1.0 - estimate.probability
            rows.append(
                ComplianceRow(
                    option_name=point.option_name,
                    overlay_three_sigma_nm=point.overlay_three_sigma_nm,
                    budget_percent=budget_percent,
                    violation=estimate,
                    column_yield=column_yield,
                    array_yield=array_yield_from_column_probability(
                        estimate.probability, columns
                    ),
                )
            )
        return rows

    # -- overlay requirement -----------------------------------------------------------------

    def required_overlay_for_target(
        self,
        budget_percent: float,
        target_ppm: float,
        option_name: str = "LELELE",
        n_wordlines: int = 64,
    ) -> OverlayYieldRequirement:
        """Largest overlay budget that keeps violations below ``target_ppm``.

        Scans the DOE's overlay sweep (3/5/7/8 nm by default) and returns
        the loosest budget whose Gaussian-tail violation estimate is below
        the target, or ``None`` when even the tightest budget misses it.
        """
        if target_ppm <= 0.0:
            raise YieldAnalysisError("the ppm target must be positive")
        achieved: Dict[float, float] = {}
        acceptable: List[float] = []
        for overlay in self.study.doe.overlay_budgets_nm:
            point = DOEPoint(
                n_wordlines=n_wordlines,
                option_name=option_name,
                overlay_three_sigma_nm=overlay,
            )
            record = self._record_for(point)
            estimate = violation_probability(record, budget_percent)
            achieved[overlay] = estimate.parts_per_million
            if estimate.parts_per_million <= target_ppm:
                acceptable.append(overlay)
        return OverlayYieldRequirement(
            option_name=option_name,
            budget_percent=budget_percent,
            target_ppm=target_ppm,
            required_overlay_nm=max(acceptable) if acceptable else None,
            achieved_ppm_by_overlay=achieved,
        )

    # -- sweeps ---------------------------------------------------------------------------------

    def budget_sweep(
        self,
        budgets_percent: Sequence[float],
        option_name: str,
        overlay_three_sigma_nm: Optional[float] = None,
        n_wordlines: int = 64,
    ) -> List[Tuple[float, float]]:
        """(budget, violation probability) pairs for one option."""
        if not budgets_percent:
            raise YieldAnalysisError("at least one budget is required")
        point = DOEPoint(
            n_wordlines=n_wordlines,
            option_name=option_name,
            overlay_three_sigma_nm=overlay_three_sigma_nm,
        )
        record = self._record_for(point)
        pairs = []
        for budget in budgets_percent:
            estimate = violation_probability(record, budget)
            pairs.append((float(budget), estimate.probability))
        return pairs
