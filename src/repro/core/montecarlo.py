"""Monte-Carlo read-time-penalty study (Section III.B: Fig. 5, Table IV).

The paper's key methodological point: simulating full parasitic netlists
for thousands of samples is prohibitive, but the analytical formula of
Section III.A turns each sampled RC variation into a tdp value in
microseconds of CPU time.  The flow here follows the paper exactly:

1. the parameterized LPE tool samples the patterning parameters and
   extracts the bit-line ``(Rvar, Cvar)`` distribution (the expensive but
   still fast part — a quasi-2D extraction per sample);
2. the analytical formula maps every ``(Rvar, Cvar)`` sample to a tdp;
3. the tdp distribution (Fig. 5) and its standard deviation (Table IV) are
   reported per option and — for LE3 — per overlay budget.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..extraction.lpe import BatchRCVariation, ParameterizedLPE, RCVariation
from ..layout.array import SRAMArrayLayout, generate_array_layout
from ..patterning import create_option
from ..patterning.base import PatterningOption
from ..technology.node import TechnologyNode
from ..variability.doe import DOEPoint, StudyDOE, paper_doe
from ..variability.statistics import Histogram, SummaryStatistics
from .analytical import AnalyticalDelayModel, model_from_technology
from .results import MonteCarloTdpRecord, TdpSigmaRow


class MonteCarloStudyError(RuntimeError):
    """Raised when the Monte-Carlo study cannot be evaluated."""


#: Per-process study instance installed by the pool initializer, so the
#: study is pickled once per worker process instead of once per point and
#: each worker's layout/LPE caches amortise across its points.
_worker_study: Optional["MonteCarloTdpStudy"] = None


def _init_worker_study(study: "MonteCarloTdpStudy") -> None:
    global _worker_study
    _worker_study = study


def _tdp_record_worker(point: DOEPoint, bins: int):
    """Module-level worker so process pools can pickle the call."""
    return _worker_study.tdp_record(point, bins=bins)


class MonteCarloTdpStudy:
    """Monte-Carlo distribution of the read-time penalty.

    Parameters
    ----------
    node:
        Technology node; its variation assumptions provide the sampling
        budgets (the LE3 overlay budget is overridden per study point).
    doe:
        Experiment grid (options, overlay sweep, array sizes).
    model:
        Analytical delay model; derived from the node when omitted.
    n_samples:
        Monte-Carlo samples per study point.
    seed:
        Base random seed; each study point derives its own stream from it
        so points are independent yet reproducible.
    batch:
        When true (default) every study point runs through the vectorised
        sampling/printing/extraction path; ``batch=False`` keeps the
        scalar per-sample loop as the reference oracle.  Both paths use
        identical random streams, so they agree to round-off.
    """

    def __init__(
        self,
        node: TechnologyNode,
        doe: Optional[StudyDOE] = None,
        model: Optional[AnalyticalDelayModel] = None,
        n_samples: int = 1000,
        seed: int = 2015,
        batch: bool = True,
    ) -> None:
        if n_samples < 2:
            raise MonteCarloStudyError("the Monte-Carlo study needs at least two samples")
        self.node = node
        self.doe = doe if doe is not None else paper_doe()
        self.model = model if model is not None else model_from_technology(
            node, n_bitline_pairs=self.doe.n_bitline_pairs
        )
        self.n_samples = n_samples
        self.seed = seed
        self.batch = batch
        self._layout_cache: Dict[int, SRAMArrayLayout] = {}
        self._lpe_cache: Dict[Optional[float], ParameterizedLPE] = {}

    def __getstate__(self):
        # Ship a lean study to process-pool workers: the layout and LPE
        # caches are cheap to rebuild and expensive to serialise per point.
        state = self.__dict__.copy()
        state["_layout_cache"] = {}
        state["_lpe_cache"] = {}
        return state

    # -- plumbing -----------------------------------------------------------------------

    def _layout_for(self, n_wordlines: int) -> SRAMArrayLayout:
        if n_wordlines not in self._layout_cache:
            self._layout_cache[n_wordlines] = generate_array_layout(
                n_wordlines=n_wordlines,
                n_bitline_pairs=self.doe.n_bitline_pairs,
                node=self.node,
            )
        return self._layout_cache[n_wordlines]

    def _node_for_point(self, point: DOEPoint) -> TechnologyNode:
        if point.overlay_three_sigma_nm is None:
            return self.node
        return self.node.with_variations(
            self.node.variations.for_overlay(point.overlay_three_sigma_nm)
        )

    def _lpe_for_point(self, point: DOEPoint) -> ParameterizedLPE:
        """One LPE instance per overlay budget (the only node-varying knob).

        Sharing the instance across study points lets its nominal-extraction
        cache serve every repeated sweep over the same layouts.
        """
        key = point.overlay_three_sigma_nm
        if key not in self._lpe_cache:
            self._lpe_cache[key] = ParameterizedLPE(self._node_for_point(point))
        return self._lpe_cache[key]

    def _seed_for_point(self, point: DOEPoint) -> int:
        # crc32 rather than hash(): stable across interpreter invocations
        # and hash-seed randomisation, so process-pool workers and the
        # serial path derive identical per-point streams.
        return zlib.crc32(f"{self.seed}/{point.label}".encode()) % (2**31)

    # -- sampling ------------------------------------------------------------------------

    def rc_variation_samples(self, point: DOEPoint) -> List[RCVariation]:
        """The LPE Monte-Carlo loop: per-sample (Rvar, Cvar) of the bit line."""
        option = create_option(point.option_name)
        layout = self._layout_for(point.n_wordlines)
        bl_net, _ = layout.central_pair_nets()
        lpe = self._lpe_for_point(point)
        return lpe.monte_carlo_variations(
            layout.metal1_pattern,
            option,
            bl_net,
            n_samples=self.n_samples,
            seed=self._seed_for_point(point),
        )

    def rc_variation_samples_batch(self, point: DOEPoint) -> BatchRCVariation:
        """The vectorised LPE Monte-Carlo loop: (Rvar, Cvar) arrays."""
        option = create_option(point.option_name)
        layout = self._layout_for(point.n_wordlines)
        bl_net, _ = layout.central_pair_nets()
        lpe = self._lpe_for_point(point)
        return lpe.monte_carlo_variations_batch(
            layout.metal1_pattern,
            option,
            bl_net,
            n_samples=self.n_samples,
            seed=self._seed_for_point(point),
        )

    def tdp_record(self, point: DOEPoint, bins: int = 30) -> MonteCarloTdpRecord:
        """Fig. 5 record for one study point: tdp samples, summary, histogram."""
        if self.batch:
            variations = self.rc_variation_samples_batch(point)
            tdp_array = self.model.tdp_percent(
                point.n_wordlines, variations.rvar, variations.cvar
            )
            tdp_percent = tuple(float(value) for value in tdp_array)
        else:
            tdp_percent = tuple(
                self.model.tdp_percent(point.n_wordlines, variation.rvar, variation.cvar)
                for variation in self.rc_variation_samples(point)
            )
        summary = SummaryStatistics.from_samples(tdp_percent)
        histogram = Histogram.from_samples(tdp_percent, bins=bins)
        return MonteCarloTdpRecord(
            option_name=point.option_name,
            overlay_three_sigma_nm=point.overlay_three_sigma_nm,
            n_wordlines=point.n_wordlines,
            n_samples=self.n_samples,
            tdp_percent_samples=tdp_percent,
            summary=summary,
            histogram=histogram,
        )

    def tdp_records(
        self,
        points: Sequence[DOEPoint],
        bins: int = 30,
        workers: Optional[int] = None,
    ) -> List[MonteCarloTdpRecord]:
        """Fig. 5 records for several study points, optionally in parallel.

        ``workers`` > 1 fans the per-point work (layout, printing,
        extraction, statistics) out over a process pool; the per-point
        seeds are derived with a process-stable hash, so the records are
        identical to the serial ones in any order.
        """
        if workers is not None and workers > 1 and len(points) > 1:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker_study,
                initargs=(self,),
            ) as pool:
                futures = [
                    pool.submit(_tdp_record_worker, point, bins) for point in points
                ]
                return [future.result() for future in futures]
        return [self.tdp_record(point, bins=bins) for point in points]

    # -- paper experiments ------------------------------------------------------------------

    def figure5(
        self,
        n_wordlines: int = 64,
        overlay_three_sigma_nm: float = 8.0,
        bins: int = 30,
        workers: Optional[int] = None,
    ) -> List[MonteCarloTdpRecord]:
        """Fig. 5: tdp distributions of the three options at 8 nm OL, n = 64."""
        points = []
        for option_name in self.doe.option_names:
            overlay = (
                overlay_three_sigma_nm if option_name.upper().startswith("LE") else None
            )
            points.append(
                DOEPoint(
                    n_wordlines=n_wordlines,
                    option_name=option_name,
                    overlay_three_sigma_nm=overlay,
                )
            )
        return self.tdp_records(points, bins=bins, workers=workers)

    def table4(
        self, n_wordlines: int = 64, workers: Optional[int] = None
    ) -> List[TdpSigmaRow]:
        """Table IV: tdp standard deviation per option and OL budget."""
        points = self.doe.monte_carlo_points(n_wordlines=n_wordlines)
        records = self.tdp_records(points, workers=workers)
        return [
            TdpSigmaRow(
                array_label=point.array_label,
                option_name=point.option_name,
                overlay_three_sigma_nm=point.overlay_three_sigma_nm,
                sigma_percent=record.sigma_percent,
            )
            for point, record in zip(points, records)
        ]

    def overlay_sensitivity(
        self,
        option_name: str = "LELELE",
        n_wordlines: int = 64,
        workers: Optional[int] = None,
    ) -> List[Tuple[float, float]]:
        """σ(tdp) versus overlay budget for one litho-etch option.

        The data behind the paper's conclusion that the OL budget is the
        decisive knob for LE3: returns ``(overlay_nm, sigma_percent)``
        pairs over the DOE's overlay sweep.
        """
        points = [
            DOEPoint(
                n_wordlines=n_wordlines,
                option_name=option_name,
                overlay_three_sigma_nm=budget,
            )
            for budget in self.doe.overlay_budgets_nm
        ]
        records = self.tdp_records(points, workers=workers)
        return [
            (point.overlay_three_sigma_nm, record.sigma_percent)
            for point, record in zip(points, records)
        ]
